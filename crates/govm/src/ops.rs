//! Instruction execution: one big `exec` over [`Op`].
//!
//! Blocking operations follow one of two protocols:
//!
//! - **retry**: the operation peeks its operands without popping, parks
//!   the goroutine, and is re-executed when woken (channel send/receive,
//!   mutex lock, wait-group wait);
//! - **completed-on-wake**: the operation's effect is performed by the
//!   *waking* goroutine, which installs a [`WakeAction`] (pops, pushes,
//!   clock acquisition, optional jump) on the parked one (rendezvous
//!   hand-offs, `select`, subtests).

use crate::bytecode::{Op, SelectCaseSpec};
use crate::lower::{CmpOp, Fused, Src, FUSED_WIDTH};
use crate::natives;
use crate::value::*;
use crate::vm::{Flow, ParkedCase, ParkedSelect, RunError, Status, Vm, WakeAction};
use rand::Rng;
use std::rc::Rc;

pub(crate) fn exec(vm: &mut Vm, gid: Gid, op: &Op) -> Flow {
    match op {
        Op::ConstInt(v) => {
            push(vm, gid, Value::Int(*v));
            Flow::Next
        }
        Op::ConstFloat(v) => {
            push(vm, gid, Value::Float(*v));
            Flow::Next
        }
        Op::ConstStr(id) => {
            let s = vm.const_str(*id);
            push(vm, gid, Value::Str(s));
            Flow::Next
        }
        Op::ConstBool(b) => {
            push(vm, gid, Value::Bool(*b));
            Flow::Next
        }
        Op::ConstNil => {
            push(vm, gid, Value::Nil);
            Flow::Next
        }
        Op::ConstFunc(f) => {
            push(vm, gid, Value::Func(*f));
            Flow::Next
        }
        Op::ConstBuiltin(b) => {
            push(vm, gid, Value::Builtin(*b));
            Flow::Next
        }
        Op::Pop => {
            pop(vm, gid);
            Flow::Next
        }
        Op::Dup => {
            let v = peek(vm, gid, 0).clone();
            push(vm, gid, v);
            Flow::Next
        }
        Op::Dup2 => {
            let b = peek(vm, gid, 0).clone();
            let a = peek(vm, gid, 1).clone();
            push(vm, gid, a);
            push(vm, gid, b);
            Flow::Next
        }

        Op::AllocLocal { slot, name } => {
            let v = pop(vm, gid);
            let addr = vm.heap.alloc_cell(v, *name);
            // The initialisation counts as a write by the allocator.
            vm.track_write(gid, addr);
            frame_mut(vm, gid).locals[*slot as usize] = addr;
            Flow::Next
        }
        Op::LoadLocal(slot) => match local_addr(vm, gid, *slot) {
            Some(a) => {
                let v = vm.read_cell(gid, a);
                push(vm, gid, v);
                Flow::Next
            }
            None => Flow::Panic("use of unbound local".into()),
        },
        Op::StoreLocal(slot) => match local_addr(vm, gid, *slot) {
            Some(a) => {
                let v = pop(vm, gid);
                vm.write_cell(gid, a, v);
                Flow::Next
            }
            None => Flow::Panic("store to unbound local".into()),
        },
        Op::RefLocal(slot) => match local_addr(vm, gid, *slot) {
            Some(a) => {
                push(vm, gid, Value::Ptr(a));
                Flow::Next
            }
            None => Flow::Panic("address of unbound local".into()),
        },
        Op::LoadUpval(i) => {
            let a = frame_mut(vm, gid).upvals[*i as usize];
            let v = vm.read_cell(gid, a);
            push(vm, gid, v);
            Flow::Next
        }
        Op::StoreUpval(i) => {
            let a = frame_mut(vm, gid).upvals[*i as usize];
            let v = pop(vm, gid);
            vm.write_cell(gid, a, v);
            Flow::Next
        }
        Op::RefUpval(i) => {
            let a = frame_mut(vm, gid).upvals[*i as usize];
            push(vm, gid, Value::Ptr(a));
            Flow::Next
        }
        Op::LoadGlobal(i) => {
            let a = vm.globals[*i as usize];
            let v = vm.read_cell(gid, a);
            push(vm, gid, v);
            Flow::Next
        }
        Op::StoreGlobal(i) => {
            let a = vm.globals[*i as usize];
            let v = pop(vm, gid);
            vm.write_cell(gid, a, v);
            Flow::Next
        }
        Op::RefGlobal(i) => {
            let a = vm.globals[*i as usize];
            push(vm, gid, Value::Ptr(a));
            Flow::Next
        }
        Op::LoadPtr => match pop(vm, gid) {
            Value::Ptr(a) => {
                let v = vm.read_cell(gid, a);
                // Go structs are value types: explicit `*p` produces a
                // shallow copy (`newConfig := *config` — the struct-copy
                // fix pattern relies on this).
                let v = shallow_copy_struct(vm, gid, v);
                push(vm, gid, v);
                Flow::Next
            }
            Value::Nil => Flow::Panic("nil pointer dereference".into()),
            // Dereferencing a bare struct reference copies it too.
            other @ Value::Struct(_) => {
                let v = shallow_copy_struct(vm, gid, other);
                push(vm, gid, v);
                Flow::Next
            }
            other @ (Value::Map(_) | Value::Slice(_)) => {
                push(vm, gid, other);
                Flow::Next
            }
            other => Flow::Panic(format!("cannot dereference {}", other.type_name())),
        },
        Op::StorePtr => {
            let v = pop(vm, gid);
            match pop(vm, gid) {
                Value::Ptr(a) => {
                    vm.write_cell(gid, a, v);
                    Flow::Next
                }
                Value::Nil => Flow::Panic("nil pointer dereference".into()),
                other => Flow::Panic(format!("cannot store through {}", other.type_name())),
            }
        }

        Op::MakeSliceLit { n, name } => {
            let mut elems = Vec::with_capacity(*n as usize);
            for _ in 0..*n {
                elems.push(pop(vm, gid));
            }
            elems.reverse();
            let v = vm.heap.alloc_slice(elems, *name);
            push(vm, gid, v);
            Flow::Next
        }
        Op::MakeMapLit { n, name } => {
            let name = *name;
            let mut pairs = Vec::with_capacity(*n as usize);
            for _ in 0..*n {
                let v = pop(vm, gid);
                let k = pop(vm, gid);
                pairs.push((k, v));
            }
            pairs.reverse();
            let mv = vm.heap.alloc_map(name);
            if let Value::Map(r) = mv {
                for (k, v) in pairs {
                    let Some(key) = MapKey::from_value(&k) else {
                        return Flow::Panic(format!("invalid map key {}", k.type_name()));
                    };
                    let cell = vm.heap.alloc_cell(v, name);
                    vm.heap.maps[r].entries.insert(key, cell);
                }
            }
            push(vm, gid, mv);
            Flow::Next
        }
        Op::MakeStructLit(spec) => {
            let spec = vm.prog.struct_lits[*spec as usize].clone();
            let mut values = Vec::with_capacity(spec.fields.len());
            for _ in 0..spec.fields.len() {
                values.push(pop(vm, gid));
            }
            values.reverse();
            let tname = vm.prog.str(spec.type_name).to_owned();
            let fields: Vec<(String, Value, u32)> = spec
                .fields
                .iter()
                .zip(values)
                .map(|(f, v)| (vm.prog.str(*f).to_owned(), v, *f))
                .collect();
            let v = vm.heap.alloc_struct_named(tname, fields);
            push(vm, gid, v);
            Flow::Next
        }
        Op::MakeZero(h) => {
            let hint = vm.prog.hints[*h as usize];
            let v = vm.zero_value(hint);
            push(vm, gid, v);
            Flow::Next
        }
        Op::MakeSliceN(h) => {
            let n = match pop(vm, gid) {
                Value::Int(n) if n >= 0 => n as usize,
                _ => return Flow::Panic("make: invalid length".into()),
            };
            let hint = vm.prog.hints[*h as usize];
            let mut elems = Vec::with_capacity(n);
            for _ in 0..n {
                let z = vm.zero_value(hint);
                elems.push(z);
            }
            let name = vm.intern("elem");
            let v = vm.heap.alloc_slice(elems, name);
            push(vm, gid, v);
            Flow::Next
        }
        Op::NewPtr(h) => {
            let hint = vm.prog.hints[*h as usize];
            let zero = vm.zero_value(hint);
            let name = vm.intern("new");
            let a = vm.heap.alloc_cell(zero, name);
            push(vm, gid, Value::Ptr(a));
            Flow::Next
        }
        Op::MakeChan { has_cap } => {
            let cap = if *has_cap {
                match pop(vm, gid) {
                    Value::Int(c) if c >= 0 => c as usize,
                    _ => return Flow::Panic("make: invalid channel capacity".into()),
                }
            } else {
                0
            };
            let v = vm.heap.alloc_chan(cap);
            push(vm, gid, v);
            Flow::Next
        }
        Op::MakeClosure(spec) => {
            let spec = vm.prog.closures[*spec as usize].clone();
            let frame = frame_mut(vm, gid);
            let upvals: Vec<Addr> = spec
                .captures
                .iter()
                .map(|c| match c {
                    crate::bytecode::UpvalSrc::Local(s) => frame.locals[*s as usize],
                    crate::bytecode::UpvalSrc::Upval(u) => frame.upvals[*u as usize],
                })
                .collect();
            let v = vm.heap.alloc_closure(spec.func, upvals);
            push(vm, gid, v);
            Flow::Next
        }

        Op::GetField(name) => {
            let obj = pop(vm, gid);
            match field_addr(vm, gid, &obj, *name, false) {
                Ok(a) => {
                    let v = vm.read_cell(gid, a);
                    push(vm, gid, v);
                    Flow::Next
                }
                Err(f) => f,
            }
        }
        Op::SetField(name) => {
            let v = pop(vm, gid);
            let obj = pop(vm, gid);
            match field_addr(vm, gid, &obj, *name, true) {
                Ok(a) => {
                    vm.write_cell(gid, a, v);
                    Flow::Next
                }
                Err(f) => f,
            }
        }
        Op::RefField(name) => {
            let obj = pop(vm, gid);
            match field_addr(vm, gid, &obj, *name, true) {
                Ok(a) => {
                    push(vm, gid, Value::Ptr(a));
                    Flow::Next
                }
                Err(f) => f,
            }
        }
        Op::BindMethod(name) => {
            let recv = pop(vm, gid);
            // Reuse a recycled receiver box when one is available: a
            // lock-heavy loop binds (and immediately consumes) two
            // method values per iteration, and the malloc/free pair per
            // bind showed up in sync-heavy profiles.
            let boxed = match vm.method_box_pool.pop() {
                Some(mut b) => {
                    *b = recv;
                    b
                }
                None => Box::new(recv),
            };
            push(
                vm,
                gid,
                Value::Method {
                    recv: boxed,
                    name: *name,
                },
            );
            Flow::Next
        }

        Op::Index { comma_ok } => {
            let idx = pop(vm, gid);
            let cont = pop(vm, gid);
            index_get(vm, gid, cont, idx, *comma_ok)
        }
        Op::SetIndex => {
            let v = pop(vm, gid);
            let idx = pop(vm, gid);
            let cont = pop(vm, gid);
            index_set(vm, gid, cont, idx, v)
        }
        Op::RefIndex => {
            let idx = pop(vm, gid);
            let cont = pop(vm, gid);
            match elem_addr(vm, gid, &cont, &idx, true) {
                Ok(a) => {
                    push(vm, gid, Value::Ptr(a));
                    Flow::Next
                }
                Err(f) => f,
            }
        }
        Op::SliceOp { has_lo, has_hi } => {
            let hi = if *has_hi { Some(pop(vm, gid)) } else { None };
            let lo = if *has_lo { Some(pop(vm, gid)) } else { None };
            let cont = pop(vm, gid);
            match cont {
                Value::Slice(r) => {
                    let header = vm.heap.slices[r].header;
                    let _ = vm.read_cell(gid, header);
                    let len = vm.heap.slices[r].elems.len();
                    let lo = lo.and_then(|v| v.as_int()).unwrap_or(0).max(0) as usize;
                    let hi = hi
                        .and_then(|v| v.as_int())
                        .map(|h| h.max(0) as usize)
                        .unwrap_or(len);
                    if lo > hi || hi > len {
                        return Flow::Panic("slice bounds out of range".into());
                    }
                    let sub: Vec<Addr> = vm.heap.slices[r].elems[lo..hi].to_vec();
                    let name = vm.heap.cell_name(header);
                    let new_header = vm.heap.alloc_cell(Value::Int((hi - lo) as i64), name);
                    vm.heap.slices.push(SliceObj {
                        header: new_header,
                        elems: sub,
                    });
                    push(vm, gid, Value::Slice(vm.heap.slices.len() - 1));
                    Flow::Next
                }
                Value::Str(s) => {
                    let lo = lo.and_then(|v| v.as_int()).unwrap_or(0).max(0) as usize;
                    let hi = hi
                        .and_then(|v| v.as_int())
                        .map(|h| h.max(0) as usize)
                        .unwrap_or(s.len());
                    if lo > hi || hi > s.len() {
                        return Flow::Panic("string slice out of range".into());
                    }
                    push(vm, gid, Value::str(&s[lo..hi]));
                    Flow::Next
                }
                other => Flow::Panic(format!("cannot slice {}", other.type_name())),
            }
        }
        Op::Append { n } => {
            let mut vals = Vec::with_capacity(*n as usize);
            for _ in 0..*n {
                vals.push(pop(vm, gid));
            }
            vals.reverse();
            let slice = pop(vm, gid);
            append_values(vm, gid, slice, vals)
        }
        Op::AppendSlice => {
            let src = pop(vm, gid);
            let dst = pop(vm, gid);
            let vals = match src {
                Value::Slice(r) => {
                    let header = vm.heap.slices[r].header;
                    let _ = vm.read_cell(gid, header);
                    let addrs = vm.heap.slices[r].elems.clone();
                    addrs.into_iter().map(|a| vm.read_cell(gid, a)).collect()
                }
                Value::Nil => Vec::new(),
                other => return Flow::Panic(format!("append spread of {}", other.type_name())),
            };
            append_values(vm, gid, dst, vals)
        }
        Op::StoreMulti(n) => {
            let n = *n as usize;
            let mut vals = Vec::with_capacity(n);
            for _ in 0..n {
                vals.push(pop(vm, gid));
            }
            vals.reverse();
            let mut ptrs = Vec::with_capacity(n);
            for _ in 0..n {
                ptrs.push(pop(vm, gid));
            }
            ptrs.reverse();
            for (p, v) in ptrs.into_iter().zip(vals) {
                match p {
                    Value::Ptr(a) => vm.write_cell(gid, a, v),
                    other => {
                        return Flow::Panic(format!("cannot assign through {}", other.type_name()))
                    }
                }
            }
            Flow::Next
        }
        Op::Len => {
            let cont = pop(vm, gid);
            let n = match cont {
                Value::Slice(r) => {
                    let header = vm.heap.slices[r].header;
                    let _ = vm.read_cell(gid, header);
                    vm.heap.slices[r].elems.len() as i64
                }
                Value::Map(r) => {
                    let header = vm.heap.maps[r].header;
                    let _ = vm.read_cell(gid, header);
                    vm.heap.maps[r].entries.len() as i64
                }
                Value::Str(s) => s.len() as i64,
                Value::Chan(r) => vm.heap.chans[r].queue.len() as i64,
                Value::Nil => 0,
                other => return Flow::Panic(format!("len of {}", other.type_name())),
            };
            push(vm, gid, Value::Int(n));
            Flow::Next
        }
        Op::Cap => {
            let cont = pop(vm, gid);
            let n = match cont {
                Value::Slice(r) => vm.heap.slices[r].elems.len() as i64,
                Value::Chan(r) => vm.heap.chans[r].cap as i64,
                Value::Nil => 0,
                other => return Flow::Panic(format!("cap of {}", other.type_name())),
            };
            push(vm, gid, Value::Int(n));
            Flow::Next
        }
        Op::DeleteKey => {
            let k = pop(vm, gid);
            let m = pop(vm, gid);
            match m {
                Value::Map(r) => {
                    let header = vm.heap.maps[r].header;
                    // Structural mutation: a write on the header.
                    vm.track_write(gid, header);
                    if let Some(key) = MapKey::from_value(&k) {
                        vm.heap.maps[r].entries.remove(&key);
                    }
                    Flow::Next
                }
                Value::Nil => Flow::Next,
                other => Flow::Panic(format!("delete on {}", other.type_name())),
            }
        }

        Op::Send => exec_send(vm, gid),
        Op::Recv { comma_ok } => exec_recv(vm, gid, *comma_ok),
        Op::CloseChan => {
            let c = pop(vm, gid);
            match c {
                Value::Chan(r) => {
                    if vm.heap.chans[r].closed {
                        return Flow::Panic("close of closed channel".into());
                    }
                    let clock = vm.det.release_snapshot(gid);
                    vm.heap.chans[r].closed = true;
                    vm.heap.chans[r].close_clock = Some(clock);
                    vm.wake_chan_waiters(r);
                    Flow::Next
                }
                Value::Nil => Flow::Panic("close of nil channel".into()),
                other => Flow::Panic(format!("close of {}", other.type_name())),
            }
        }

        Op::Call { argc } => exec_call(vm, gid, *argc),
        Op::Go { argc } => {
            let mut args = Vec::with_capacity(*argc as usize);
            for _ in 0..*argc {
                args.push(pop(vm, gid));
            }
            args.reverse();
            let callee = pop(vm, gid);
            match vm.spawn(Some(gid), callee, args) {
                Ok(_) => Flow::Next,
                Err(e) => Flow::Panic(e),
            }
        }
        Op::DeferCall { argc } => {
            let mut args = Vec::with_capacity(*argc as usize);
            for _ in 0..*argc {
                args.push(pop(vm, gid));
            }
            args.reverse();
            let callee = pop(vm, gid);
            frame_mut(vm, gid).defers.push((callee, args));
            Flow::Next
        }
        Op::Return { n } => {
            let v = match *n {
                0 => Value::Nil,
                1 => pop(vm, gid),
                n => {
                    let mut vals = Vec::with_capacity(n as usize);
                    for _ in 0..n {
                        vals.push(pop(vm, gid));
                    }
                    vals.reverse();
                    Value::Tuple(Rc::new(vals))
                }
            };
            Flow::Returned(v)
        }
        Op::Expand { n } => {
            let n = *n;
            let v = pop(vm, gid);
            if n == 1 {
                push(vm, gid, v);
                return Flow::Next;
            }
            match v {
                Value::Tuple(vs) if vs.len() == n as usize => {
                    for v in vs.iter() {
                        push(vm, gid, v.clone());
                    }
                    Flow::Next
                }
                other => Flow::Panic(format!("expected {} values, got {}", n, other.type_name())),
            }
        }

        Op::Jump(t) => Flow::Jump(*t as usize),
        Op::JumpIfFalse(t) => match pop(vm, gid) {
            Value::Bool(false) => Flow::Jump(*t as usize),
            Value::Bool(true) => Flow::Next,
            other => Flow::Panic(format!("non-bool condition: {}", other.type_name())),
        },
        Op::JumpIfTrue(t) => match pop(vm, gid) {
            Value::Bool(true) => Flow::Jump(*t as usize),
            Value::Bool(false) => Flow::Next,
            other => Flow::Panic(format!("non-bool condition: {}", other.type_name())),
        },

        Op::Neg => {
            let v = pop(vm, gid);
            match v {
                Value::Int(i) => {
                    push(vm, gid, Value::Int(-i));
                    Flow::Next
                }
                Value::Float(f) => {
                    push(vm, gid, Value::Float(-f));
                    Flow::Next
                }
                other => Flow::Panic(format!("cannot negate {}", other.type_name())),
            }
        }
        Op::Not => match pop(vm, gid) {
            Value::Bool(b) => {
                push(vm, gid, Value::Bool(!b));
                Flow::Next
            }
            other => Flow::Panic(format!("cannot negate {}", other.type_name())),
        },
        Op::BitNot => match pop(vm, gid) {
            Value::Int(i) => {
                push(vm, gid, Value::Int(!i));
                Flow::Next
            }
            other => Flow::Panic(format!("cannot complement {}", other.type_name())),
        },
        Op::Add
        | Op::Sub
        | Op::Mul
        | Op::Div
        | Op::Rem
        | Op::BitAnd
        | Op::BitOr
        | Op::BitXor
        | Op::Shl
        | Op::Shr => {
            let b = pop(vm, gid);
            let a = pop(vm, gid);
            match arith(op, a, b) {
                Ok(v) => {
                    push(vm, gid, v);
                    Flow::Next
                }
                Err(m) => Flow::Panic(m),
            }
        }
        Op::Eq | Op::Ne => {
            let b = pop(vm, gid);
            let a = pop(vm, gid);
            let eq = a.go_eq(&b);
            push(
                vm,
                gid,
                Value::Bool(if matches!(op, Op::Eq) { eq } else { !eq }),
            );
            Flow::Next
        }
        Op::Lt | Op::Le | Op::Gt | Op::Ge => {
            let b = pop(vm, gid);
            let a = pop(vm, gid);
            match compare(&a, &b) {
                Some(ord) => {
                    let r = match op {
                        Op::Lt => ord.is_lt(),
                        Op::Le => ord.is_le(),
                        Op::Gt => ord.is_gt(),
                        _ => ord.is_ge(),
                    };
                    push(vm, gid, Value::Bool(r));
                    Flow::Next
                }
                None => Flow::Panic(format!(
                    "cannot compare {} and {}",
                    a.type_name(),
                    b.type_name()
                )),
            }
        }

        Op::IterInit => {
            let cont = pop(vm, gid);
            let it = match cont {
                Value::Slice(r) => {
                    let header = vm.heap.slices[r].header;
                    let _ = vm.read_cell(gid, header);
                    IterObj::Slice {
                        obj: r,
                        len: vm.heap.slices[r].elems.len(),
                        idx: 0,
                    }
                }
                Value::Map(r) => {
                    let header = vm.heap.maps[r].header;
                    let _ = vm.read_cell(gid, header);
                    IterObj::Map {
                        obj: r,
                        keys: vm.heap.maps[r].entries.keys().cloned().collect(),
                        idx: 0,
                    }
                }
                Value::Nil => IterObj::Slice {
                    obj: usize::MAX,
                    len: 0,
                    idx: 0,
                },
                other => return Flow::Panic(format!("cannot range over {}", other.type_name())),
            };
            let v = vm.heap.alloc_iter(it);
            push(vm, gid, v);
            Flow::Next
        }
        Op::IterNext(done) => {
            let done = *done;
            let itv = pop(vm, gid);
            let Value::Iter(ir) = itv else {
                return Flow::Panic("range over non-iterator".into());
            };
            let state = vm.heap.iters[ir].clone();
            match state {
                IterObj::Slice { obj, len, idx } => {
                    if idx >= len || obj == usize::MAX {
                        return Flow::Jump(done as usize);
                    }
                    if idx >= vm.heap.slices[obj].elems.len() {
                        return Flow::Jump(done as usize);
                    }
                    let a = vm.heap.slices[obj].elems[idx];
                    let v = vm.read_cell(gid, a);
                    vm.heap.iters[ir] = IterObj::Slice {
                        obj,
                        len,
                        idx: idx + 1,
                    };
                    push(vm, gid, Value::Int(idx as i64));
                    push(vm, gid, v);
                    Flow::Next
                }
                IterObj::Map { obj, keys, mut idx } => {
                    // Skip keys deleted since the snapshot.
                    while idx < keys.len() {
                        if vm.heap.maps[obj].entries.contains_key(&keys[idx]) {
                            break;
                        }
                        idx += 1;
                    }
                    if idx >= keys.len() {
                        return Flow::Jump(done as usize);
                    }
                    let key = keys[idx].clone();
                    let a = vm.heap.maps[obj].entries[&key];
                    let v = vm.read_cell(gid, a);
                    vm.heap.iters[ir] = IterObj::Map {
                        obj,
                        keys,
                        idx: idx + 1,
                    };
                    push(vm, gid, key.to_value());
                    push(vm, gid, v);
                    Flow::Next
                }
            }
        }

        Op::Select(spec) => exec_select(vm, gid, *spec),

        Op::Panic => {
            let msg = pop(vm, gid);
            let rendered = msg.render(&vm.heap);
            Flow::Panic(rendered)
        }
        Op::Nop => Flow::Next,
    }
}

// ------------------------------------------------------------------ helpers

pub(crate) fn push(vm: &mut Vm, gid: Gid, v: Value) {
    vm.gos[gid].stack.push(v);
}

pub(crate) fn pop(vm: &mut Vm, gid: Gid) -> Value {
    match vm.gos[gid].stack.pop() {
        Some(v) => v,
        None => underflow(vm, gid),
    }
}

/// Operand-stack underflow is a compiler or VM bug, never a program
/// bug: flag it as a fatal [`RunError::Internal`] instead of silently
/// masking it as `Nil`. The quantum loops check `vm.fatal` per step, so
/// execution stops before the corrupted stack is interpreted further.
#[cold]
fn underflow(vm: &mut Vm, gid: Gid) -> Value {
    if vm.fatal.is_none() {
        vm.fatal = Some(RunError::Internal(format!(
            "operand stack underflow on goroutine {gid}"
        )));
    }
    Value::Nil
}

pub(crate) fn peek<'a>(vm: &'a Vm<'_>, gid: Gid, depth: usize) -> &'a Value {
    let s = &vm.gos[gid].stack;
    &s[s.len() - 1 - depth]
}

fn frame_mut<'a>(vm: &'a mut Vm, gid: Gid) -> &'a mut crate::vm::CallFrame {
    vm.gos[gid].frames.last_mut().expect("live frame")
}

fn local_addr(vm: &mut Vm, gid: Gid, slot: u16) -> Option<Addr> {
    let a = vm.gos[gid].frames.last()?.locals[slot as usize];
    if a == Addr::MAX {
        None
    } else {
        Some(a)
    }
}

/// Resolves a field cell on a struct (or pointer to struct); `create`
/// adds missing fields (used by `RefField` on loosely-typed externals).
fn field_addr(vm: &mut Vm, gid: Gid, obj: &Value, name: u32, create: bool) -> Result<Addr, Flow> {
    let sref = match obj {
        Value::Struct(r) => *r,
        Value::Ptr(a) => match &vm.heap.cells[*a as usize] {
            Value::Struct(r) => *r,
            Value::Nil => return Err(Flow::Panic("nil pointer dereference".into())),
            other => {
                return Err(Flow::Panic(format!(
                    "field access on {}",
                    other.type_name()
                )))
            }
        },
        Value::Nil => return Err(Flow::Panic("nil pointer dereference".into())),
        other => {
            return Err(Flow::Panic(format!(
                "field access on {}",
                other.type_name()
            )))
        }
    };
    let fname = vm.name(name).clone();
    if let Some(a) = vm.heap.structs[sref].field(&fname) {
        return Ok(a);
    }
    if create {
        let a = vm.heap.alloc_cell(Value::Nil, name);
        vm.heap.structs[sref].fields.push((fname.to_string(), a));
        let _ = gid;
        return Ok(a);
    }
    Err(Flow::Panic(format!(
        "struct {} has no field {}",
        vm.heap.structs[sref].type_name, fname
    )))
}

fn elem_addr(vm: &mut Vm, gid: Gid, cont: &Value, idx: &Value, create: bool) -> Result<Addr, Flow> {
    match cont {
        Value::Slice(r) => {
            let header = vm.heap.slices[r.to_owned()].header;
            let _ = vm.read_cell(gid, header);
            let i = idx
                .as_int()
                .ok_or_else(|| Flow::Panic("non-integer slice index".into()))?;
            let elems = &vm.heap.slices[*r].elems;
            if i < 0 || i as usize >= elems.len() {
                return Err(Flow::Panic(format!(
                    "index out of range [{i}] with length {}",
                    elems.len()
                )));
            }
            Ok(elems[i as usize])
        }
        Value::Map(r) => {
            let header = vm.heap.maps[*r].header;
            let key = MapKey::from_value(idx)
                .ok_or_else(|| Flow::Panic(format!("invalid map key {}", idx.type_name())))?;
            if let Some(&a) = vm.heap.maps[*r].entries.get(&key) {
                let _ = vm.read_cell(gid, header);
                return Ok(a);
            }
            if create {
                let name = vm.heap.cell_name(header);
                vm.track_write(gid, header);
                let a = vm.heap.alloc_cell(Value::Nil, name);
                vm.heap.maps[*r].entries.insert(key, a);
                return Ok(a);
            }
            Err(Flow::Panic("missing map key".into()))
        }
        Value::Nil => Err(Flow::Panic("index of nil container".into())),
        other => Err(Flow::Panic(format!("cannot index {}", other.type_name()))),
    }
}

fn index_get(vm: &mut Vm, gid: Gid, cont: Value, idx: Value, comma_ok: bool) -> Flow {
    match &cont {
        Value::Slice(_) => match elem_addr(vm, gid, &cont, &idx, false) {
            Ok(a) => {
                let v = vm.read_cell(gid, a);
                push(vm, gid, v);
                if comma_ok {
                    push(vm, gid, Value::Bool(true));
                }
                Flow::Next
            }
            Err(f) => f,
        },
        Value::Map(r) => {
            let header = vm.heap.maps[*r].header;
            let _ = vm.read_cell(gid, header);
            let Some(key) = MapKey::from_value(&idx) else {
                return Flow::Panic(format!("invalid map key {}", idx.type_name()));
            };
            match vm.heap.maps[*r].entries.get(&key).copied() {
                Some(a) => {
                    let v = vm.read_cell(gid, a);
                    push(vm, gid, v);
                    if comma_ok {
                        push(vm, gid, Value::Bool(true));
                    }
                }
                None => {
                    push(vm, gid, Value::Nil);
                    if comma_ok {
                        push(vm, gid, Value::Bool(false));
                    }
                }
            }
            Flow::Next
        }
        Value::Str(s) => {
            let Some(i) = idx.as_int() else {
                return Flow::Panic("non-integer string index".into());
            };
            if i < 0 || i as usize >= s.len() {
                return Flow::Panic("string index out of range".into());
            }
            push(vm, gid, Value::Int(s.as_bytes()[i as usize] as i64));
            if comma_ok {
                push(vm, gid, Value::Bool(true));
            }
            Flow::Next
        }
        Value::Nil => {
            // Reading a nil map yields the zero value.
            push(vm, gid, Value::Nil);
            if comma_ok {
                push(vm, gid, Value::Bool(false));
            }
            Flow::Next
        }
        other => Flow::Panic(format!("cannot index {}", other.type_name())),
    }
}

fn index_set(vm: &mut Vm, gid: Gid, cont: Value, idx: Value, v: Value) -> Flow {
    match &cont {
        Value::Slice(_) => match elem_addr(vm, gid, &cont, &idx, false) {
            Ok(a) => {
                vm.write_cell(gid, a, v);
                Flow::Next
            }
            Err(f) => f,
        },
        Value::Map(_) => match elem_addr(vm, gid, &cont, &idx, true) {
            Ok(a) => {
                vm.write_cell(gid, a, v);
                Flow::Next
            }
            Err(f) => f,
        },
        Value::Nil => Flow::Panic("assignment to entry in nil map".into()),
        other => Flow::Panic(format!("cannot index-assign {}", other.type_name())),
    }
}

fn append_values(vm: &mut Vm, gid: Gid, slice: Value, vals: Vec<Value>) -> Flow {
    let r = match slice {
        Value::Slice(r) => r,
        Value::Nil => {
            let name = vm.intern("elem");
            match vm.heap.alloc_slice(Vec::new(), name) {
                Value::Slice(r) => r,
                _ => unreachable!("alloc_slice returns a slice"),
            }
        }
        other => return Flow::Panic(format!("append to {}", other.type_name())),
    };
    // Growth mutates the slice header.
    let header = vm.heap.slices[r].header;
    let name = vm.heap.cell_name(header);
    vm.track_write(gid, header);
    let new_len = vm.heap.slices[r].elems.len() + vals.len();
    vm.heap.cells[header as usize] = Value::Int(new_len as i64);
    for v in vals {
        let a = vm.heap.alloc_cell(v, name);
        vm.heap.slices[r].elems.push(a);
    }
    push(vm, gid, Value::Slice(r));
    Flow::Next
}

/// Shallow-copies a struct value (fresh field cells, race-tracked reads
/// of the source fields). Non-struct values pass through.
fn shallow_copy_struct(vm: &mut Vm, gid: Gid, v: Value) -> Value {
    let Value::Struct(r) = v else { return v };
    let (tname, fields) = {
        let s = &vm.heap.structs[r];
        (s.type_name.clone(), s.fields.clone())
    };
    let copied: Vec<(String, Value, u32)> = fields
        .into_iter()
        .map(|(n, a)| {
            let v = vm.read_cell(gid, a);
            let id = vm.intern(&n);
            (n, v, id)
        })
        .collect();
    vm.heap.alloc_struct_named(tname, copied)
}

fn arith(op: &Op, a: Value, b: Value) -> Result<Value, String> {
    use Value::*;
    match (op, a, b) {
        (Op::Add, Int(a), Int(b)) => Ok(Int(a.wrapping_add(b))),
        (Op::Sub, Int(a), Int(b)) => Ok(Int(a.wrapping_sub(b))),
        (Op::Mul, Int(a), Int(b)) => Ok(Int(a.wrapping_mul(b))),
        (Op::Div, Int(_), Int(0)) => Err("integer divide by zero".into()),
        (Op::Div, Int(a), Int(b)) => Ok(Int(a.wrapping_div(b))),
        (Op::Rem, Int(_), Int(0)) => Err("integer divide by zero".into()),
        (Op::Rem, Int(a), Int(b)) => Ok(Int(a.wrapping_rem(b))),
        (Op::BitAnd, Int(a), Int(b)) => Ok(Int(a & b)),
        (Op::BitOr, Int(a), Int(b)) => Ok(Int(a | b)),
        (Op::BitXor, Int(a), Int(b)) => Ok(Int(a ^ b)),
        (Op::Shl, Int(a), Int(b)) => Ok(Int(a.wrapping_shl(b as u32))),
        (Op::Shr, Int(a), Int(b)) => Ok(Int(a.wrapping_shr(b as u32))),
        (Op::Add, Float(a), Float(b)) => Ok(Float(a + b)),
        (Op::Sub, Float(a), Float(b)) => Ok(Float(a - b)),
        (Op::Mul, Float(a), Float(b)) => Ok(Float(a * b)),
        (Op::Div, Float(a), Float(b)) => Ok(Float(a / b)),
        (Op::Add, Float(a), Int(b)) => Ok(Float(a + b as f64)),
        (Op::Add, Int(a), Float(b)) => Ok(Float(a as f64 + b)),
        (Op::Sub, Float(a), Int(b)) => Ok(Float(a - b as f64)),
        (Op::Sub, Int(a), Float(b)) => Ok(Float(a as f64 - b)),
        (Op::Mul, Float(a), Int(b)) => Ok(Float(a * b as f64)),
        (Op::Mul, Int(a), Float(b)) => Ok(Float(a as f64 * b)),
        (Op::Div, Float(a), Int(b)) => Ok(Float(a / b as f64)),
        (Op::Div, Int(a), Float(b)) => Ok(Float(a as f64 / b)),
        (Op::Add, Str(a), Str(b)) => Ok(Value::str(format!("{a}{b}"))),
        (op, a, b) => Err(format!(
            "invalid operation {:?} on {} and {}",
            op,
            a.type_name(),
            b.type_name()
        )),
    }
}

fn compare(a: &Value, b: &Value) -> Option<std::cmp::Ordering> {
    use Value::*;
    match (a, b) {
        (Int(a), Int(b)) => a.partial_cmp(b),
        (Float(a), Float(b)) => a.partial_cmp(b),
        (Int(a), Float(b)) => (*a as f64).partial_cmp(b),
        (Float(a), Int(b)) => a.partial_cmp(&(*b as f64)),
        (Str(a), Str(b)) => a.partial_cmp(b),
        _ => None,
    }
}

// ------------------------------------------------------------------- calls

/// The call shapes `exec_call` dispatches on, extracted from a
/// *borrowed* peek of the callee: cloning the callee value outright
/// would box-clone the receiver of every native method call (two heap
/// round-trips per `mu.Lock()`/`mu.Unlock()` pair in a lock-heavy
/// loop).
enum CallShape {
    Builtin(u16),
    /// Method name only — the receiver stays in its stacked box and is
    /// *taken* (not cloned) out of the callee slot at dispatch time.
    Method(u32),
    /// Plain function or closure value (cheap to copy).
    Callable(Value),
    Nil,
    Other(&'static str),
}

fn exec_call(vm: &mut Vm, gid: Gid, argc: u8) -> Flow {
    let shape = match peek(vm, gid, argc as usize) {
        Value::Builtin(b) => CallShape::Builtin(*b),
        Value::Method { name, .. } => CallShape::Method(*name),
        Value::Func(f) => CallShape::Callable(Value::Func(*f)),
        Value::Closure(c) => CallShape::Callable(Value::Closure(*c)),
        Value::Nil => CallShape::Nil,
        other => CallShape::Other(other.type_name()),
    };
    match shape {
        CallShape::Builtin(b) => {
            let mut args = Vec::with_capacity(argc as usize);
            for _ in 0..argc {
                args.push(pop(vm, gid));
            }
            args.reverse();
            pop(vm, gid); // callee
            match natives::call_builtin(vm, gid, b, args) {
                natives::BuiltinOutcome::Value(v) => {
                    push(vm, gid, v);
                    Flow::Next
                }
                natives::BuiltinOutcome::Sleep(until, v) => {
                    vm.gos[gid].sleep_until = Some(until);
                    vm.sleepers += 1;
                    vm.gos[gid].wake = Some(WakeAction {
                        pops: 0,
                        push: vec![v],
                        acquire: None,
                        jump_to: None,
                    });
                    Flow::Park("sleep")
                }
                natives::BuiltinOutcome::Error(e) => Flow::Panic(e),
            }
        }
        CallShape::Method(name) => {
            // Take the receiver box out of the stacked callee slot (the
            // slot temporarily holds `Nil`) so dispatch borrows `&Value`
            // without cloning the receiver. The box is restored on park
            // (the retry protocol re-executes this Call) and recycled on
            // completion.
            let slot = vm.gos[gid].stack.len() - 1 - argc as usize;
            let recv = match std::mem::replace(&mut vm.gos[gid].stack[slot], Value::Nil) {
                Value::Method { recv, .. } => recv,
                _ => unreachable!("peeked callee is a method"),
            };
            // User-declared methods first.
            if vm.method_func(&recv, name).is_some() {
                let mut args = Vec::with_capacity(argc as usize + 1);
                for _ in 0..argc {
                    args.push(pop(vm, gid));
                }
                args.reverse();
                pop(vm, gid); // callee placeholder
                match vm.push_call(gid, Value::Method { recv, name }, args) {
                    Ok(()) => Flow::Stay,
                    Err(e) => Flow::Panic(e),
                }
            } else {
                // Native method: peek args (retry protocol — only pop on
                // completion).
                let args: Vec<Value> = (0..argc as usize)
                    .map(|i| peek(vm, gid, argc as usize - 1 - i).clone())
                    .collect();
                let outcome = match vm.native_of(name) {
                    Some(m) => natives::dispatch_method(vm, gid, &recv, m, args),
                    None => natives::MethodOutcome::NotNative,
                };
                match outcome {
                    natives::MethodOutcome::Done(v) => {
                        for _ in 0..argc {
                            pop(vm, gid);
                        }
                        pop(vm, gid); // callee placeholder
                        let mut recv = recv;
                        if vm.method_box_pool.len() < 16 {
                            *recv = Value::Nil;
                            vm.method_box_pool.push(recv);
                        }
                        push(vm, gid, v);
                        Flow::Next
                    }
                    natives::MethodOutcome::Park(reason) => {
                        vm.gos[gid].stack[slot] = Value::Method { recv, name };
                        Flow::Park(reason)
                    }
                    natives::MethodOutcome::ParkArmed(reason) => {
                        // Wake action pre-installed by the native; its
                        // pops are relative to the unchanged layout, so
                        // restore the callee slot too.
                        vm.gos[gid].stack[slot] = Value::Method { recv, name };
                        Flow::Park(reason)
                    }
                    natives::MethodOutcome::NotNative => {
                        let msg =
                            format!("unknown method `{}` on {}", vm.name(name), recv.type_name());
                        vm.gos[gid].stack[slot] = Value::Method { recv, name };
                        Flow::Panic(msg)
                    }
                    natives::MethodOutcome::Error(e) => {
                        vm.gos[gid].stack[slot] = Value::Method { recv, name };
                        Flow::Panic(e)
                    }
                }
            }
        }
        CallShape::Callable(callee) => {
            let mut args = Vec::with_capacity(argc as usize);
            for _ in 0..argc {
                args.push(pop(vm, gid));
            }
            args.reverse();
            pop(vm, gid); // callee (already extracted from the peek)
            match vm.push_call(gid, callee, args) {
                Ok(()) => Flow::Stay,
                Err(e) => Flow::Panic(e),
            }
        }
        CallShape::Nil => Flow::Panic(
            "invalid memory address or nil pointer dereference (nil function call)".into(),
        ),
        CallShape::Other(ty) => Flow::Panic(format!("cannot call {ty}")),
    }
}

// ------------------------------------------------- fused (register tier)

/// Sets the current frame's pc to the *logical* sub-op position inside
/// a fused window, so detector-visible work (tracked loads/stores,
/// native dispatch) observes exactly the `(func, pc)` the stack tier
/// would.
fn set_pc(vm: &mut Vm, gid: Gid, pc: usize) {
    if let Some(f) = vm.gos[gid].frames.last_mut() {
        f.pc = pc;
    }
}

/// Resolves and reads a fused operand cell (race-tracked), mirroring
/// the corresponding `Load*` op including its panic message.
fn fused_load(vm: &mut Vm, gid: Gid, s: Src) -> Result<Value, Flow> {
    let a = match s {
        Src::Local(slot) => match local_addr(vm, gid, slot) {
            Some(a) => a,
            None => return Err(Flow::Panic("use of unbound local".into())),
        },
        Src::Upval(i) => frame_mut(vm, gid).upvals[i as usize],
        Src::Global(i) => vm.globals[i as usize],
    };
    Ok(vm.read_cell(gid, a))
}

/// Race-tracked store to a fused operand cell, mirroring `Store*`.
fn fused_store(vm: &mut Vm, gid: Gid, s: Src, v: Value) -> Result<(), Flow> {
    let a = match s {
        Src::Local(slot) => match local_addr(vm, gid, slot) {
            Some(a) => a,
            None => return Err(Flow::Panic("store to unbound local".into())),
        },
        Src::Upval(i) => frame_mut(vm, gid).upvals[i as usize],
        Src::Global(i) => vm.globals[i as usize],
    };
    vm.write_cell(gid, a, v);
    Ok(())
}

/// Evaluates a fused comparison with the single-op tier's exact
/// semantics: `Eq`/`Ne` via `go_eq` (total), the ordered forms via
/// `compare` with the same incomparable-types panic message.
fn fused_cmp(op: CmpOp, a: &Value, b: &Value) -> Result<bool, Flow> {
    match op {
        CmpOp::Eq => Ok(a.go_eq(b)),
        CmpOp::Ne => Ok(!a.go_eq(b)),
        _ => match compare(a, b) {
            Some(ord) => Ok(match op {
                CmpOp::Lt => ord.is_lt(),
                CmpOp::Le => ord.is_le(),
                CmpOp::Gt => ord.is_gt(),
                CmpOp::Ge => ord.is_ge(),
                CmpOp::Eq | CmpOp::Ne => unreachable!(),
            }),
            None => Err(Flow::Panic(format!(
                "cannot compare {} and {}",
                a.type_name(),
                b.type_name()
            ))),
        },
    }
}

/// Pushes a materialised method value (pooled receiver box), restoring
/// the exact stack-tier state at the `Call` op of a fused native-call
/// window — used when the window must bail out to single-op execution
/// (user-declared method, or park-and-retry).
fn materialize_method(vm: &mut Vm, gid: Gid, rv: Value, name: u32) {
    let boxed = match vm.method_box_pool.pop() {
        Some(mut b) => {
            *b = rv;
            b
        }
        None => Box::new(rv),
    };
    push(vm, gid, Value::Method { recv: boxed, name });
}

/// Executes the fused superinstruction at `pc`. The caller (the
/// register quantum loop) has verified the whole window fits its
/// remaining allowance and already charged the first sub-op's step.
///
/// Contract: returns `(extra, flow)` where `extra` counts the
/// *additional* steps charged here for sub-ops 2.. (`vm.steps` is
/// advanced before each sub-op, exactly like the quantum loop), and
/// `flow` is interpreted like a single op's — `Jump` on completion or
/// branch, `Stay`/`Park` after the handler has re-materialised the
/// operand stack and set the frame pc to the sub-op where the stack
/// tier would sit, so the bailed-to single op replays bit-identically.
pub(crate) fn exec_fused(vm: &mut Vm, gid: Gid, pc: usize, fu: Fused) -> (u64, Flow) {
    match fu {
        Fused::NativeCallStmt { recv, name } => {
            // Sub-op 1: the receiver load (tracked; pc is the window
            // start already).
            let rv = match fused_load(vm, gid, recv) {
                Ok(v) => v,
                Err(f) => return (0, f),
            };
            // Sub-op 2: BindMethod — pure operand traffic; the method
            // value is only materialised if the window bails out.
            vm.steps += 1;
            if vm.method_func(&rv, name).is_some() {
                // User-declared method: frame pushes don't fuse. Restore
                // the stack-tier state at the Call op and let the single
                // op run it.
                materialize_method(vm, gid, rv, name);
                set_pc(vm, gid, pc + 2);
                return (1, Flow::Stay);
            }
            // Sub-op 3: Call{argc: 0} — native dispatch at the Call's pc.
            vm.steps += 1;
            set_pc(vm, gid, pc + 2);
            let outcome = match vm.native_of(name) {
                Some(m) => natives::dispatch_method(vm, gid, &rv, m, Vec::new()),
                None => natives::MethodOutcome::NotNative,
            };
            match outcome {
                natives::MethodOutcome::Done(_) => {
                    // Sub-op 4: Pop of the discarded result — elided.
                    vm.steps += 1;
                    (3, Flow::Jump(pc + FUSED_WIDTH))
                }
                natives::MethodOutcome::Park(reason)
                | natives::MethodOutcome::ParkArmed(reason) => {
                    // Park at the Call with the method value stacked, so
                    // the wake retries it as a single op bit-identically
                    // (no fused window starts at a BindMethod+1 pc).
                    materialize_method(vm, gid, rv, name);
                    (2, Flow::Park(reason))
                }
                natives::MethodOutcome::NotNative => (
                    2,
                    Flow::Panic(format!(
                        "unknown method `{}` on {}",
                        vm.name(name),
                        rv.type_name()
                    )),
                ),
                natives::MethodOutcome::Error(e) => (2, Flow::Panic(e)),
            }
        }
        Fused::AddConstStore { a, k, dst } => {
            let av = match fused_load(vm, gid, a) {
                Ok(v) => v,
                Err(f) => return (0, f),
            };
            // Sub-ops 2-3: ConstInt + Add, register-only work.
            vm.steps += 2;
            let sum = match arith(&Op::Add, av, Value::Int(k)) {
                Ok(v) => v,
                Err(m) => return (2, Flow::Panic(m)),
            };
            // Sub-op 4: the tracked store at its own pc.
            vm.steps += 1;
            set_pc(vm, gid, pc + 3);
            match fused_store(vm, gid, dst, sum) {
                Ok(()) => (3, Flow::Jump(pc + FUSED_WIDTH)),
                Err(f) => (3, f),
            }
        }
        Fused::AddStore { a, b, dst } => {
            let av = match fused_load(vm, gid, a) {
                Ok(v) => v,
                Err(f) => return (0, f),
            };
            // Sub-op 2: second tracked load at its own pc.
            vm.steps += 1;
            set_pc(vm, gid, pc + 1);
            let bv = match fused_load(vm, gid, b) {
                Ok(v) => v,
                Err(f) => return (1, f),
            };
            vm.steps += 1; // sub-op 3: Add
            let sum = match arith(&Op::Add, av, bv) {
                Ok(v) => v,
                Err(m) => return (2, Flow::Panic(m)),
            };
            vm.steps += 1; // sub-op 4: Store
            set_pc(vm, gid, pc + 3);
            match fused_store(vm, gid, dst, sum) {
                Ok(()) => (3, Flow::Jump(pc + FUSED_WIDTH)),
                Err(f) => (3, f),
            }
        }
        Fused::CmpConstJump { a, k, op, target } => {
            let av = match fused_load(vm, gid, a) {
                Ok(v) => v,
                Err(f) => return (0, f),
            };
            vm.steps += 2; // sub-ops 2-3: ConstInt + compare
            let cond = match fused_cmp(op, &av, &Value::Int(k)) {
                Ok(c) => c,
                Err(f) => return (2, f),
            };
            vm.steps += 1; // sub-op 4: JumpIfFalse
            if cond {
                (3, Flow::Jump(pc + FUSED_WIDTH))
            } else {
                (3, Flow::Jump(target as usize))
            }
        }
        Fused::CmpJump { a, b, op, target } => {
            let av = match fused_load(vm, gid, a) {
                Ok(v) => v,
                Err(f) => return (0, f),
            };
            vm.steps += 1; // sub-op 2: second tracked load
            set_pc(vm, gid, pc + 1);
            let bv = match fused_load(vm, gid, b) {
                Ok(v) => v,
                Err(f) => return (1, f),
            };
            vm.steps += 1; // sub-op 3: compare
            let cond = match fused_cmp(op, &av, &bv) {
                Ok(c) => c,
                Err(f) => return (2, f),
            };
            vm.steps += 1; // sub-op 4: JumpIfFalse
            if cond {
                (3, Flow::Jump(pc + FUSED_WIDTH))
            } else {
                (3, Flow::Jump(target as usize))
            }
        }
    }
}

// ---------------------------------------------------------------- channels

fn exec_send(vm: &mut Vm, gid: Gid) -> Flow {
    let chan = peek(vm, gid, 1).clone();
    let r = match chan {
        Value::Chan(r) => r,
        Value::Nil => return Flow::Park("send on nil channel"),
        other => return Flow::Panic(format!("send on {}", other.type_name())),
    };
    if vm.heap.chans[r].closed {
        return Flow::Panic("send on closed channel".into());
    }
    let cap = vm.heap.chans[r].cap;
    let qlen = vm.heap.chans[r].queue.len();
    if cap > 0 && qlen < cap {
        let v = pop(vm, gid);
        pop(vm, gid); // chan
        vm.chan_send_commit(gid, r, v);
        return Flow::Next;
    }
    // Rendezvous (or full buffer): try direct hand-off to a receiver.
    if let Some(rgid) = take_recv_waiter(vm, r) {
        let v = pop(vm, gid);
        pop(vm, gid); // chan
        deliver_to_receiver(vm, gid, rgid, r, v);
        return Flow::Next;
    }
    // Park: register and wait.
    if !vm.heap.chans[r].send_waiters.contains(&gid) {
        vm.heap.chans[r].send_waiters.push(gid);
    }
    vm.gos[gid].parked_on = Some(r);
    Flow::Park("chan send")
}

fn exec_recv(vm: &mut Vm, gid: Gid, comma_ok: bool) -> Flow {
    let chan = peek(vm, gid, 0).clone();
    let r = match chan {
        Value::Chan(r) => r,
        Value::Nil => return Flow::Park("receive on nil channel"),
        other => return Flow::Panic(format!("receive from {}", other.type_name())),
    };
    if let Some((v, ok)) = vm.chan_try_recv(gid, r) {
        pop(vm, gid); // chan
        push(vm, gid, v);
        if comma_ok {
            push(vm, gid, Value::Bool(ok));
        }
        return Flow::Next;
    }
    // Unbuffered hand-off from a parked sender.
    if let Some((sgid, v)) = take_send_waiter(vm, r) {
        pop(vm, gid); // chan
                      // Sender's release edge → receiver.
        let sclock = vm.det.release_snapshot(sgid);
        vm.det.acquire_clock(gid, &sclock);
        // Receiver's release edge → sender ("receive happens before the
        // send completes").
        let rclock = vm.det.release_snapshot(gid);
        complete_sender(vm, sgid, rclock);
        push(vm, gid, v);
        if comma_ok {
            push(vm, gid, Value::Bool(true));
        }
        return Flow::Next;
    }
    if !vm.heap.chans[r].recv_waiters.contains(&gid) {
        vm.heap.chans[r].recv_waiters.push(gid);
    }
    vm.gos[gid].parked_on = Some(r);
    vm.gos[gid].parked_recv_comma_ok = comma_ok;
    Flow::Park("chan receive")
}

/// Pops a valid parked receiver from the channel's waiter list.
fn take_recv_waiter(vm: &mut Vm, ch: ObjRef) -> Option<Gid> {
    loop {
        let g = {
            let list = &mut vm.heap.chans[ch].recv_waiters;
            if list.is_empty() {
                return None;
            }
            list.remove(0)
        };
        let go = &vm.gos[g];
        let valid = go.status == Status::Blocked
            && (go.parked_on == Some(ch)
                || go
                    .select
                    .as_ref()
                    .map(|s| {
                        s.cases
                            .iter()
                            .any(|c| matches!(c, ParkedCase::Recv { chan, .. } if *chan == ch))
                    })
                    .unwrap_or(false));
        if valid {
            return Some(g);
        }
    }
}

/// Pops a valid parked sender; returns its value (taken from its parked
/// state or its stack).
fn take_send_waiter(vm: &mut Vm, ch: ObjRef) -> Option<(Gid, Value)> {
    loop {
        let g = {
            let list = &mut vm.heap.chans[ch].send_waiters;
            if list.is_empty() {
                return None;
            }
            list.remove(0)
        };
        if vm.gos[g].status != Status::Blocked {
            continue;
        }
        // Select-parked sender?
        if vm.gos[g].select.is_some() {
            let found = vm.gos[g].select.as_ref().and_then(|s| {
                s.cases.iter().enumerate().find_map(|(i, c)| match c {
                    ParkedCase::Send { chan, value, body } if *chan == ch => {
                        Some((i, value.clone(), *body))
                    }
                    _ => None,
                })
            });
            if let Some((_, value, body)) = found {
                // Complete the select: jump to the send body.
                vm.gos[g].select = None;
                vm.gos[g].status = Status::Runnable;
                vm.gos[g].wake = Some(WakeAction {
                    pops: 0,
                    push: Vec::new(),
                    acquire: None,
                    jump_to: Some(body),
                });
                return Some((g, value));
            }
            continue;
        }
        if vm.gos[g].parked_on == Some(ch) {
            // Plain sender: stack top is the value (chan below it).
            let v = vm.gos[g].stack.last().cloned().unwrap_or(Value::Nil);
            vm.gos[g].status = Status::Runnable;
            vm.gos[g].parked_on = None;
            vm.gos[g].wake = Some(WakeAction {
                pops: 2,
                push: Vec::new(),
                acquire: None,
                jump_to: None,
            });
            return Some((g, v));
        }
    }
}

/// Finishes a sender whose value was taken by a receiver: installs the
/// receiver's clock into its pending wake action.
fn complete_sender(vm: &mut Vm, sgid: Gid, rclock: racedet::VectorClock) {
    if let Some(w) = &mut vm.gos[sgid].wake {
        w.acquire = Some(rclock);
    }
}

/// Delivers `v` from a sender directly to a parked receiver.
fn deliver_to_receiver(vm: &mut Vm, sgid: Gid, rgid: Gid, ch: ObjRef, v: Value) {
    // HB edges both ways (unbuffered rendezvous).
    let sclock = vm.det.release_snapshot(sgid);
    let rclock = vm.det.release_snapshot(rgid);
    vm.det.acquire_clock(sgid, &rclock);

    if vm.gos[rgid].select.is_some() {
        let found = vm.gos[rgid].select.as_ref().and_then(|s| {
            s.cases.iter().find_map(|c| match c {
                ParkedCase::Recv {
                    chan,
                    body,
                    push_value,
                    push_ok,
                } if *chan == ch => Some((*body, *push_value, *push_ok)),
                _ => None,
            })
        });
        if let Some((body, push_value, push_ok)) = found {
            let mut pushes = Vec::new();
            if push_value {
                pushes.push(v);
                if push_ok {
                    pushes.push(Value::Bool(true));
                }
            }
            vm.gos[rgid].select = None;
            vm.gos[rgid].status = Status::Runnable;
            vm.gos[rgid].wake = Some(WakeAction {
                pops: 0,
                push: pushes,
                acquire: Some(sclock),
                jump_to: Some(body),
            });
        }
        return;
    }
    // Plain receiver parked at a Recv op (its chan operand still stacked).
    let comma_ok = vm.gos[rgid].parked_recv_comma_ok;
    let mut pushes = vec![v];
    if comma_ok {
        pushes.push(Value::Bool(true));
    }
    vm.gos[rgid].status = Status::Runnable;
    vm.gos[rgid].parked_on = None;
    vm.gos[rgid].wake = Some(WakeAction {
        pops: 1,
        push: pushes,
        acquire: Some(sclock),
        jump_to: None,
    });
}

// ------------------------------------------------------------------ select

fn exec_select(vm: &mut Vm, gid: Gid, spec_id: u32) -> Flow {
    let spec = vm.prog.selects[spec_id as usize].clone();
    // Pop case operands (pushed in case order → pop in reverse).
    let mut cases: Vec<ParkedCase> = Vec::with_capacity(spec.cases.len());
    let mut default_body = None;
    for case in spec.cases.iter().rev() {
        match case {
            SelectCaseSpec::Send { body } => {
                let value = pop(vm, gid);
                let chan = pop(vm, gid);
                let r = match chan {
                    Value::Chan(r) => r,
                    Value::Nil => usize::MAX,
                    other => return Flow::Panic(format!("select send on {}", other.type_name())),
                };
                cases.push(ParkedCase::Send {
                    chan: r,
                    value,
                    body: *body as usize,
                });
            }
            SelectCaseSpec::Recv {
                body,
                push_value,
                push_ok,
            } => {
                let chan = pop(vm, gid);
                let r = match chan {
                    Value::Chan(r) => r,
                    Value::Nil => usize::MAX,
                    other => {
                        return Flow::Panic(format!("select receive on {}", other.type_name()))
                    }
                };
                cases.push(ParkedCase::Recv {
                    chan: r,
                    body: *body as usize,
                    push_value: *push_value,
                    push_ok: *push_ok,
                });
            }
            SelectCaseSpec::Default { body } => {
                default_body = Some(*body as usize);
            }
        }
    }
    cases.reverse();

    match try_select(vm, gid, &cases) {
        Some(flow) => flow,
        None => match default_body {
            Some(b) => Flow::Jump(b),
            None => {
                park_select(vm, gid, cases);
                Flow::Park("select")
            }
        },
    }
}

/// Attempts each ready case (in seeded random order). Returns `None`
/// when nothing is ready.
pub(crate) fn try_select(vm: &mut Vm, gid: Gid, cases: &[ParkedCase]) -> Option<Flow> {
    let mut order: Vec<usize> = (0..cases.len()).collect();
    // Fisher–Yates with the VM's seeded RNG.
    for i in (1..order.len()).rev() {
        let j = vm.rng.gen_range(0..=i);
        order.swap(i, j);
    }
    for &i in &order {
        match &cases[i] {
            ParkedCase::Recv {
                chan,
                body,
                push_value,
                push_ok,
            } => {
                if *chan == usize::MAX {
                    continue; // nil channel: never ready
                }
                if let Some((v, ok)) = vm.chan_try_recv(gid, *chan) {
                    if *push_value {
                        push(vm, gid, v);
                        if *push_ok {
                            push(vm, gid, Value::Bool(ok));
                        }
                    }
                    return Some(Flow::Jump(*body));
                }
                if let Some((sgid, v)) = take_send_waiter(vm, *chan) {
                    let sclock = vm.det.release_snapshot(sgid);
                    vm.det.acquire_clock(gid, &sclock);
                    let rclock = vm.det.release_snapshot(gid);
                    complete_sender(vm, sgid, rclock);
                    if *push_value {
                        push(vm, gid, v);
                        if *push_ok {
                            push(vm, gid, Value::Bool(true));
                        }
                    }
                    return Some(Flow::Jump(*body));
                }
            }
            ParkedCase::Send { chan, value, body } => {
                if *chan == usize::MAX {
                    continue;
                }
                if vm.heap.chans[*chan].closed {
                    return Some(Flow::Panic("send on closed channel".into()));
                }
                let cap = vm.heap.chans[*chan].cap;
                let qlen = vm.heap.chans[*chan].queue.len();
                if cap > 0 && qlen < cap {
                    vm.chan_send_commit(gid, *chan, value.clone());
                    return Some(Flow::Jump(*body));
                }
                if let Some(rgid) = take_recv_waiter(vm, *chan) {
                    deliver_to_receiver(vm, gid, rgid, *chan, value.clone());
                    return Some(Flow::Jump(*body));
                }
            }
        }
    }
    None
}

fn park_select(vm: &mut Vm, gid: Gid, cases: Vec<ParkedCase>) {
    for c in &cases {
        match c {
            ParkedCase::Recv { chan, .. }
                if *chan != usize::MAX && !vm.heap.chans[*chan].recv_waiters.contains(&gid) =>
            {
                vm.heap.chans[*chan].recv_waiters.push(gid);
            }
            ParkedCase::Send { chan, .. }
                if *chan != usize::MAX && !vm.heap.chans[*chan].send_waiters.contains(&gid) =>
            {
                vm.heap.chans[*chan].send_waiters.push(gid);
            }
            _ => {}
        }
    }
    vm.gos[gid].select = Some(ParkedSelect { cases });
}

/// Re-parks a select after an unsuccessful retry (re-registers waiters).
pub(crate) fn repark_select(vm: &mut Vm, gid: Gid, sel: ParkedSelect) {
    park_select(vm, gid, sel.cases);
}
