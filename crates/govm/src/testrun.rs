//! Test harness: the `go test -race -count=N` substitute.
//!
//! Dr.Fix's validator (§4.4.1) builds the patched package and runs each
//! test many times, checking that the targeted race (identified by its
//! stable bug hash) no longer appears. [`run_test_many`] is that loop:
//! one compiled program, N seeded schedules — explored by the campaign's
//! [`SchedulePolicy`], deduplicated by schedule signature, and bounded
//! by an optional campaign-wide instruction budget.

use crate::compile::{compile_sources, CompileOptions};
use crate::sched::{SchedulePolicy, SeedStream};
use crate::value::Value;
use crate::vm::{ProgContext, RunCounters, RunError, RunResult, Vm, VmOptions};
use crate::Program;
use racedet::RaceReport;
use std::rc::Rc;

/// Configuration for a test campaign.
///
/// **Default-behaviour note:** per-run seeds default to
/// [`SeedStream::Split`] — a deliberate fix for the legacy `seed + i`
/// stream, under which campaigns with nearby base seeds re-explored
/// almost all of each other's schedules. Campaigns that must replay
/// historical (pre-`govm::sched`) results bit-for-bit should use
/// [`TestConfig::legacy`], which restores [`SeedStream::Sequential`]
/// and is pinned by golden tests.
#[derive(Debug, Clone)]
pub struct TestConfig {
    /// Number of seeded schedules to run.
    pub runs: u32,
    /// Base seed; run `i` uses `seed_stream.derive(seed, i)`.
    pub seed: u64,
    /// Per-run VM options (seed is overridden per run; the campaign
    /// [`policy`](TestConfig::policy) overrides `vm.policy`).
    pub vm: VmOptions,
    /// Stop after the first run that exposes a race (detection mode) —
    /// validation mode runs all schedules.
    pub stop_on_race: bool,
    /// Schedule-exploration policy for every run of the campaign.
    pub policy: SchedulePolicy,
    /// Per-run seed derivation. [`SeedStream::Split`] (the default)
    /// makes nearby base seeds explore disjoint schedule sets;
    /// [`SeedStream::Sequential`] replays the legacy `seed + i` stream.
    pub seed_stream: SeedStream,
    /// Campaign-wide instruction budget: once the summed steps of the
    /// completed runs reach it, the campaign stops early.
    pub max_total_steps: Option<u64>,
    /// Early exit on schedule saturation: stop after this many
    /// *consecutive* runs whose schedule signature was already explored
    /// (a replayed interleaving cannot surface anything new).
    pub dedup_streak: Option<u32>,
}

impl Default for TestConfig {
    fn default() -> Self {
        TestConfig {
            runs: 24,
            seed: 0,
            vm: VmOptions::default(),
            stop_on_race: false,
            policy: SchedulePolicy::Random,
            seed_stream: SeedStream::Split,
            max_total_steps: None,
            dedup_streak: None,
        }
    }
}

impl TestConfig {
    /// The pre-refactor campaign semantics: uniform-random policy,
    /// `seed + i` per-run seeds, no dedup and no step budget. A campaign
    /// built from this replays historical results bit-for-bit.
    pub fn legacy(runs: u32, seed: u64, stop_on_race: bool) -> Self {
        TestConfig {
            runs,
            seed,
            stop_on_race,
            policy: SchedulePolicy::Random,
            seed_stream: SeedStream::Sequential,
            ..TestConfig::default()
        }
    }
}

/// Why a campaign stopped executing schedules.
///
/// Validation-policy decisions hinge on the distinction: a
/// [`StopReason::DedupSaturated`] exit means the schedule space was
/// exhausted (replaying more duplicates could not surface anything
/// new), while [`StopReason::BudgetExhausted`] means the campaign ran
/// out of instructions with schedules still unexplored — a weaker
/// "clean" verdict.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum StopReason {
    /// Every configured run executed.
    Completed,
    /// `stop_on_race` was set and a race surfaced.
    RaceExposed,
    /// `dedup_streak` consecutive runs replayed already-explored
    /// schedule signatures.
    DedupSaturated,
    /// The campaign-wide `max_total_steps` instruction budget ran out
    /// before the configured runs finished.
    BudgetExhausted,
}

/// Aggregate outcome of running one test under many schedules.
#[derive(Debug, Clone)]
pub struct TestOutcome {
    /// Distinct races observed across all runs (deduped by bug hash).
    pub races: Vec<RaceReport>,
    /// First abnormal run error, if any.
    pub error: Option<RunError>,
    /// Test failures collected across runs (deduped).
    pub test_failures: Vec<String>,
    /// Schedules executed.
    pub runs: u32,
    /// Total instructions executed.
    pub steps: u64,
    /// Distinct schedule signatures among the executed runs.
    pub distinct_schedules: u32,
    /// Runs whose schedule signature had already been explored.
    pub duplicate_schedules: u32,
    /// Why the campaign stopped (early exits are distinguishable from
    /// completing all runs and from each other).
    pub stop: StopReason,
    /// Deterministic hot-path counters summed over the executed runs.
    pub counters: RunCounters,
    /// Fused superinstructions executed, summed over the executed runs
    /// (always 0 on the stack tier — the physical register-tier
    /// engagement gauge, deliberately outside [`RunCounters`]).
    pub fused_ops: u64,
}

impl TestOutcome {
    /// `true` when no race, error or test failure was observed.
    pub fn is_clean(&self) -> bool {
        self.races.is_empty() && self.error.is_none() && self.test_failures.is_empty()
    }

    /// `true` when a race with the given stable hash was observed.
    pub fn has_bug(&self, bug_hash: &str) -> bool {
        self.races.iter().any(|r| r.bug_hash() == bug_hash)
    }
}

/// Runs `test` once under one seed with the default (uniform-random)
/// policy.
pub fn run_test(prog: &Program, test: &str, seed: u64) -> RunResult {
    run_test_with(
        prog,
        test,
        VmOptions {
            seed,
            ..VmOptions::default()
        },
    )
}

/// Runs `test` once under explicit VM options (seed and policy).
pub fn run_test_with(prog: &Program, test: &str, opts: VmOptions) -> RunResult {
    let mut vm = Vm::new(prog, opts);
    let t = make_t(&mut vm, test);
    vm.run(test, vec![t])
}

/// Runs `test` under `cfg.runs` seeded schedules, aggregating results.
///
/// Each run's schedule signature is tracked: a campaign can stop early
/// once `cfg.dedup_streak` consecutive runs replay already-explored
/// interleavings, or once `cfg.max_total_steps` instructions have been
/// spent — both default to off.
pub fn run_test_many(prog: &Program, test: &str, cfg: &TestConfig) -> TestOutcome {
    let mut races: Vec<RaceReport> = Vec::new();
    let mut seen = std::collections::HashSet::new();
    let mut sigs = std::collections::HashSet::new();
    let mut error = None;
    let mut failures: Vec<String> = Vec::new();
    let mut steps = 0;
    let mut executed = 0;
    let mut distinct = 0u32;
    let mut duplicates = 0u32;
    let mut dup_streak = 0u32;
    let mut stop = StopReason::Completed;
    let mut counters = RunCounters::default();
    let mut fused_ops = 0u64;
    // One shared name-table context for the whole campaign: the per-run
    // VMs skip the pool re-interning that dominates short runs.
    let ctx = Rc::new(ProgContext::new(prog));
    for i in 0..cfg.runs {
        // The budget never cancels the first run: a campaign that
        // executes zero schedules would report vacuously clean, which a
        // validator would misread as "race gone".
        if let Some(budget) = cfg.max_total_steps {
            if executed > 0 && steps >= budget {
                stop = StopReason::BudgetExhausted;
                break;
            }
        }
        let mut vmo = cfg.vm.clone();
        vmo.seed = cfg.seed_stream.derive(cfg.seed, i as u64);
        vmo.policy = cfg.policy.clone();
        let mut vm = Vm::with_context(prog, vmo, ctx.clone());
        let t = make_t(&mut vm, test);
        let r = vm.run(test, vec![t]);
        executed += 1;
        steps += r.steps;
        counters.accumulate(&r.counters);
        fused_ops += r.fused_ops;
        // The saturation streak counts *consecutive* replays: any novel
        // signature resets it to zero, so a campaign only exits early
        // after `dedup_streak` duplicates in a row with nothing new in
        // between.
        if sigs.insert(r.schedule_sig) {
            distinct += 1;
            dup_streak = 0;
        } else {
            duplicates += 1;
            dup_streak += 1;
        }
        for race in r.races {
            if seen.insert(race.bug_hash()) {
                races.push(race);
            }
        }
        for f in r.test_failures {
            if !failures.contains(&f) {
                failures.push(f);
            }
        }
        if error.is_none() {
            error = r.error;
        }
        if cfg.stop_on_race && !races.is_empty() {
            stop = StopReason::RaceExposed;
            break;
        }
        if let Some(k) = cfg.dedup_streak {
            if k > 0 && dup_streak >= k {
                stop = StopReason::DedupSaturated;
                break;
            }
        }
    }
    TestOutcome {
        races,
        error,
        test_failures: failures,
        runs: executed,
        steps,
        distinct_schedules: distinct,
        duplicate_schedules: duplicates,
        stop,
        counters,
        fused_ops,
    }
}

/// Compiles sources and runs every `TestXxx` function under `cfg`.
///
/// # Errors
///
/// Returns the compile diagnostic if the package does not build.
pub fn compile_and_test_all(
    sources: &[(String, String)],
    copts: &CompileOptions,
    cfg: &TestConfig,
) -> Result<Vec<(String, TestOutcome)>, golite::Diag> {
    let prog = compile_sources(sources, copts)?;
    let mut out = Vec::new();
    for test in prog.test_funcs() {
        let o = run_test_many(&prog, &test, cfg);
        out.push((test, o));
    }
    Ok(out)
}

fn make_t(vm: &mut Vm, test: &str) -> Value {
    // A root testing.T with no parent.
    let fields = vec![
        ("name".to_owned(), Value::str(test), vm.intern("name")),
        ("$parent".to_owned(), Value::Int(-1), vm.intern("$parent")),
        (
            "$signaled".to_owned(),
            Value::Bool(true),
            vm.intern("$signaled"),
        ),
    ];
    vm.heap.alloc_struct_named("testing.T", fields)
}
