//! Test harness: the `go test -race -count=N` substitute.
//!
//! Dr.Fix's validator (§4.4.1) builds the patched package and runs each
//! test many times, checking that the targeted race (identified by its
//! stable bug hash) no longer appears. [`run_test_many`] is that loop:
//! one compiled program, N seeded schedules.

use crate::compile::{compile_sources, CompileOptions};
use crate::value::Value;
use crate::vm::{RunError, RunResult, Vm, VmOptions};
use crate::Program;
use racedet::RaceReport;

/// Configuration for a test campaign.
#[derive(Debug, Clone)]
pub struct TestConfig {
    /// Number of seeded schedules to run.
    pub runs: u32,
    /// Base seed; run `i` uses `seed + i`.
    pub seed: u64,
    /// Per-run VM options (seed is overridden per run).
    pub vm: VmOptions,
    /// Stop after the first run that exposes a race (detection mode) —
    /// validation mode runs all schedules.
    pub stop_on_race: bool,
}

impl Default for TestConfig {
    fn default() -> Self {
        TestConfig {
            runs: 24,
            seed: 0,
            vm: VmOptions::default(),
            stop_on_race: false,
        }
    }
}

/// Aggregate outcome of running one test under many schedules.
#[derive(Debug, Clone)]
pub struct TestOutcome {
    /// Distinct races observed across all runs (deduped by bug hash).
    pub races: Vec<RaceReport>,
    /// First abnormal run error, if any.
    pub error: Option<RunError>,
    /// Test failures collected across runs (deduped).
    pub test_failures: Vec<String>,
    /// Schedules executed.
    pub runs: u32,
    /// Total instructions executed.
    pub steps: u64,
}

impl TestOutcome {
    /// `true` when no race, error or test failure was observed.
    pub fn is_clean(&self) -> bool {
        self.races.is_empty() && self.error.is_none() && self.test_failures.is_empty()
    }

    /// `true` when a race with the given stable hash was observed.
    pub fn has_bug(&self, bug_hash: &str) -> bool {
        self.races.iter().any(|r| r.bug_hash() == bug_hash)
    }
}

/// Runs `test` once under one seed.
pub fn run_test(prog: &Program, test: &str, seed: u64) -> RunResult {
    let opts = VmOptions {
        seed,
        ..VmOptions::default()
    };
    let mut vm = Vm::new(prog, opts);
    let t = make_t(&mut vm, test);
    vm.run(test, vec![t])
}

/// Runs `test` under `cfg.runs` seeded schedules, aggregating results.
pub fn run_test_many(prog: &Program, test: &str, cfg: &TestConfig) -> TestOutcome {
    let mut races: Vec<RaceReport> = Vec::new();
    let mut seen = std::collections::HashSet::new();
    let mut error = None;
    let mut failures: Vec<String> = Vec::new();
    let mut steps = 0;
    let mut executed = 0;
    for i in 0..cfg.runs {
        let mut vmo = cfg.vm.clone();
        vmo.seed = cfg.seed + i as u64;
        let mut vm = Vm::new(prog, vmo);
        let t = make_t(&mut vm, test);
        let r = vm.run(test, vec![t]);
        executed += 1;
        steps += r.steps;
        for race in r.races {
            if seen.insert(race.bug_hash()) {
                races.push(race);
            }
        }
        for f in r.test_failures {
            if !failures.contains(&f) {
                failures.push(f);
            }
        }
        if error.is_none() {
            error = r.error;
        }
        if cfg.stop_on_race && !races.is_empty() {
            break;
        }
    }
    TestOutcome {
        races,
        error,
        test_failures: failures,
        runs: executed,
        steps,
    }
}

/// Compiles sources and runs every `TestXxx` function under `cfg`.
///
/// # Errors
///
/// Returns the compile diagnostic if the package does not build.
pub fn compile_and_test_all(
    sources: &[(String, String)],
    copts: &CompileOptions,
    cfg: &TestConfig,
) -> Result<Vec<(String, TestOutcome)>, golite::Diag> {
    let prog = compile_sources(sources, copts)?;
    let mut out = Vec::new();
    for test in prog.test_funcs() {
        let o = run_test_many(&prog, &test, cfg);
        out.push((test, o));
    }
    Ok(out)
}

fn make_t(vm: &mut Vm, test: &str) -> Value {
    // A root testing.T with no parent.
    let fields = vec![
        ("name".to_owned(), Value::str(test), vm.intern("name")),
        ("$parent".to_owned(), Value::Int(-1), vm.intern("$parent")),
        ("$signaled".to_owned(), Value::Bool(true), vm.intern("$signaled")),
    ];
    vm.heap.alloc_struct_named("testing.T", fields)
}
