//! Compiles `golite` ASTs to bytecode.
//!
//! One call to [`compile_package`] lowers all files of a package into a
//! single [`Program`]. Every local variable becomes a heap cell bound to
//! a frame slot; closures capture cells (Go capture-by-reference). The
//! `loopvar_per_iteration` option switches `for … range` bindings between
//! pre-Go-1.22 per-loop cells (the default, which the loop-variable race
//! category depends on) and Go 1.22 per-iteration cells.

use crate::bytecode::*;
use crate::natives;
use golite::ast::{self, AssignOp, BinOp, CommClause, Expr, Stmt, UnOp};
use golite::diag::{Diag, Result};
use golite::span::{LineMap, Span};
use std::collections::{HashMap, HashSet};

/// Compiler options.
#[derive(Debug, Clone, Default)]
pub struct CompileOptions {
    /// Give `range` loop variables per-iteration scope (Go 1.22
    /// semantics). Defaults to `false` (per-loop scope), which is the
    /// semantics the loop-variable-capture race category relies on.
    pub loopvar_per_iteration: bool,
}

/// Compiles a package from `(file name, source)` pairs.
///
/// # Errors
///
/// Returns the first parse or lowering [`Diag`].
pub fn compile_sources(sources: &[(String, String)], opts: &CompileOptions) -> Result<Program> {
    let mut files = Vec::new();
    for (name, src) in sources {
        let file = golite::parse_file(src)
            .map_err(|d| Diag::new(format!("{}: {}", name, d.message), d.span))?;
        files.push((name.clone(), src.clone(), file));
    }
    compile_package(&files, opts)
}

/// Compiles a package from parsed files (`(file name, source, ast)`).
///
/// # Errors
///
/// Returns a [`Diag`] on unsupported constructs or unresolved names.
pub fn compile_package(
    files: &[(String, String, ast::File)],
    opts: &CompileOptions,
) -> Result<Program> {
    let mut c = Compiler::new(opts);
    c.run(files)?;
    Ok(c.prog)
}

#[derive(Debug, Clone, Copy)]
enum Resolved {
    Local(u16),
    Upval(u16),
    Global(u16),
    Func(u32),
}

struct LoopCtx {
    label: Option<String>,
    is_loop: bool,
    break_jumps: Vec<usize>,
    continue_jumps: Vec<usize>,
}

struct FnState {
    func: CompiledFunc,
    scopes: Vec<Vec<(String, u16)>>,
    captures: Vec<(String, UpvalSrc)>,
    loops: Vec<LoopCtx>,
    cur_line: u32,
    closure_count: u32,
}

impl FnState {
    fn new(name: String, file: u32) -> Self {
        FnState {
            func: CompiledFunc {
                name,
                file,
                params: 0,
                param_names: Vec::new(),
                n_slots: 0,
                results: 0,
                code: Vec::new(),
                lines: Vec::new(),
            },
            scopes: vec![Vec::new()],
            captures: Vec::new(),
            loops: Vec::new(),
            cur_line: 1,
            closure_count: 0,
        }
    }

    fn new_slot(&mut self) -> u16 {
        let s = self.func.n_slots;
        self.func.n_slots += 1;
        s
    }

    fn bind(&mut self, name: &str) -> u16 {
        let slot = self.new_slot();
        self.scopes
            .last_mut()
            .expect("scope stack non-empty")
            .push((name.to_owned(), slot));
        slot
    }

    fn lookup(&self, name: &str) -> Option<u16> {
        for scope in self.scopes.iter().rev() {
            for (n, s) in scope.iter().rev() {
                if n == name {
                    return Some(*s);
                }
            }
        }
        None
    }

    fn lookup_innermost(&self, name: &str) -> Option<u16> {
        self.scopes
            .last()?
            .iter()
            .rev()
            .find(|(n, _)| n == name)
            .map(|(_, s)| *s)
    }
}

struct Compiler<'o> {
    prog: Program,
    pool_map: HashMap<String, u32>,
    hint_map: HashMap<TypeHint, u32>,
    globals_map: HashMap<String, u16>,
    func_ids: HashMap<String, u32>,
    struct_ast: HashMap<String, Vec<(String, ast::Type)>>,
    typedef_ast: HashMap<String, ast::Type>,
    aliases: HashSet<String>,
    fns: Vec<FnState>,
    line_maps: Vec<LineMap>,
    cur_file: u32,
    anon_types: u32,
    /// Names the backing cells of the composite literal currently being
    /// compiled (set from the declared variable or struct field), so race
    /// reports say `lockMap` rather than a generic `entry`.
    name_hint: Option<u32>,
    opts: &'o CompileOptions,
}

impl<'o> Compiler<'o> {
    fn new(opts: &'o CompileOptions) -> Self {
        Compiler {
            prog: Program::default(),
            pool_map: HashMap::new(),
            hint_map: HashMap::new(),
            globals_map: HashMap::new(),
            func_ids: HashMap::new(),
            struct_ast: HashMap::new(),
            typedef_ast: HashMap::new(),
            aliases: HashSet::new(),
            fns: Vec::new(),
            line_maps: Vec::new(),
            cur_file: 0,
            anon_types: 0,
            name_hint: None,
            opts,
        }
    }

    fn pool(&mut self, s: &str) -> u32 {
        if let Some(&id) = self.pool_map.get(s) {
            return id;
        }
        let id = self.prog.pool.len() as u32;
        self.prog.pool.push(s.to_owned());
        self.pool_map.insert(s.to_owned(), id);
        id
    }

    fn hint_id(&mut self, h: TypeHint) -> u32 {
        if let Some(&id) = self.hint_map.get(&h) {
            return id;
        }
        let id = self.prog.hints.len() as u32;
        self.prog.hints.push(h);
        self.hint_map.insert(h, id);
        id
    }

    // ------------------------------------------------------------- driver

    fn run(&mut self, files: &[(String, String, ast::File)]) -> Result<()> {
        for (name, src, _) in files {
            self.prog.files.push(name.clone());
            self.line_maps.push(LineMap::new(src));
        }

        // Collect import aliases across all files.
        for (_, _, file) in files {
            for imp in &file.imports {
                let alias = imp
                    .alias
                    .clone()
                    .unwrap_or_else(|| imp.path.rsplit('/').next().unwrap_or("").to_owned());
                self.aliases.insert(alias);
            }
        }

        // Pass 1a: register type names (so hints can reference them).
        for (_, _, file) in files {
            for d in &file.decls {
                if let ast::Decl::Type(t) = d {
                    match &t.ty {
                        ast::Type::Struct(_) => {
                            let name_id = self.pool(&t.name);
                            self.prog.types.push(StructTypeDef {
                                name: name_id,
                                fields: Vec::new(),
                            });
                            self.struct_ast.insert(t.name.clone(), Vec::new());
                        }
                        other => {
                            self.typedef_ast.insert(t.name.clone(), other.clone());
                        }
                    }
                }
            }
        }

        // Pass 1b: fill struct fields.
        for (_, _, file) in files {
            for d in &file.decls {
                if let ast::Decl::Type(t) = d {
                    if let ast::Type::Struct(fields) = &t.ty {
                        let mut ast_fields = Vec::new();
                        let mut defs = Vec::new();
                        for f in fields {
                            if f.names.is_empty() {
                                // Embedded field: named after the type's
                                // last path segment.
                                let fname = match &f.ty {
                                    ast::Type::Named { path, .. } => {
                                        path.last().cloned().unwrap_or_default()
                                    }
                                    ast::Type::Pointer(inner) => match inner.as_ref() {
                                        ast::Type::Named { path, .. } => {
                                            path.last().cloned().unwrap_or_default()
                                        }
                                        _ => String::new(),
                                    },
                                    _ => String::new(),
                                };
                                if fname.is_empty() {
                                    return Err(Diag::new("unsupported embedded field", f.span));
                                }
                                ast_fields.push((fname, f.ty.clone()));
                            } else {
                                for n in &f.names {
                                    ast_fields.push((n.clone(), f.ty.clone()));
                                }
                            }
                        }
                        for (fname, fty) in &ast_fields {
                            let h = self.hint_of(fty);
                            let hid = self.hint_id(h);
                            let fid = self.pool(fname);
                            defs.push((fid, hid));
                        }
                        let name_id = self.pool(&t.name);
                        if let Some(def) = self.prog.types.iter_mut().find(|d| d.name == name_id) {
                            def.fields = defs;
                        }
                        self.struct_ast.insert(t.name.clone(), ast_fields);
                    }
                }
            }
        }

        // Pass 1c: register globals and function ids.
        for (fi, (_, _, file)) in files.iter().enumerate() {
            for d in &file.decls {
                match d {
                    ast::Decl::Var(v) | ast::Decl::Const(v) => {
                        for n in &v.names {
                            let hint =
                                v.ty.as_ref()
                                    .map(|t| self.hint_of(t))
                                    .unwrap_or(TypeHint::Unknown);
                            let hid = self.hint_id(hint);
                            let nid = self.pool(n);
                            let idx = self.prog.globals.len() as u16;
                            self.prog.globals.push(GlobalDef {
                                name: nid,
                                hint: hid,
                            });
                            self.globals_map.insert(n.clone(), idx);
                        }
                    }
                    ast::Decl::Func(f) => {
                        let full = match &f.receiver {
                            Some(r) => {
                                format!("{}.{}", base_type_name(&r.ty), f.name)
                            }
                            None => f.name.clone(),
                        };
                        let id = self.prog.funcs.len() as u32;
                        self.prog.funcs.push(CompiledFunc {
                            name: full.clone(),
                            file: fi as u32,
                            params: 0,
                            param_names: Vec::new(),
                            n_slots: 0,
                            results: 0,
                            code: Vec::new(),
                            lines: Vec::new(),
                        });
                        self.func_ids.insert(full.clone(), id);
                        if let Some(r) = &f.receiver {
                            let tname = self.pool(&base_type_name(&r.ty));
                            let mname = self.pool(&f.name);
                            self.prog.methods.push((tname, mname, id));
                        }
                    }
                    ast::Decl::Type(_) => {}
                }
            }
        }

        // Pass 2: global initialiser.
        let mut has_init = false;
        {
            let mut st = FnState::new("init".into(), 0);
            self.fns.push(st.take_placeholder());
            for (fi, (_, _, file)) in files.iter().enumerate() {
                self.cur_file = fi as u32;
                for d in &file.decls {
                    if let ast::Decl::Var(v) | ast::Decl::Const(v) = d {
                        if v.values.is_empty() {
                            continue;
                        }
                        has_init = true;
                        self.set_line(v.span);
                        if v.values.len() == v.names.len() {
                            for (n, val) in v.names.iter().zip(&v.values) {
                                let expected = v.ty.clone();
                                self.expr_with(val, expected.as_ref())?;
                                let g = self.globals_map[n];
                                self.emit(Op::StoreGlobal(g));
                            }
                        } else if v.values.len() == 1 {
                            self.expr(&v.values[0])?;
                            self.emit(Op::Expand {
                                n: v.names.len() as u8,
                            });
                            for n in v.names.iter().rev() {
                                let g = self.globals_map[n];
                                self.emit(Op::StoreGlobal(g));
                            }
                        } else {
                            return Err(Diag::new("mismatched global initialiser arity", v.span));
                        }
                    }
                }
            }
            self.emit(Op::ConstNil);
            self.emit(Op::Return { n: 1 });
            let st2 = self.fns.pop().expect("fn state");
            st.restore(st2);
            if has_init {
                let id = self.prog.funcs.len() as u32;
                self.prog.funcs.push(st.func);
                self.prog.init_func = Some(id);
            }
        }

        // Pass 3: function bodies.
        for (fi, (_, _, file)) in files.iter().enumerate() {
            self.cur_file = fi as u32;
            for d in &file.decls {
                if let ast::Decl::Func(f) = d {
                    self.compile_func_decl(f, fi as u32)?;
                }
            }
        }
        Ok(())
    }

    fn compile_func_decl(&mut self, f: &ast::FuncDecl, file: u32) -> Result<()> {
        let full = match &f.receiver {
            Some(r) => format!("{}.{}", base_type_name(&r.ty), f.name),
            None => f.name.clone(),
        };
        let id = self.func_ids[&full];
        let body = match &f.body {
            Some(b) => b,
            None => return Ok(()),
        };
        let mut st = FnState::new(full, file);
        st.cur_line = self.line(f.span);

        // Bind receiver + parameters to the leading slots.
        if let Some(r) = &f.receiver {
            st.bind(&r.name);
            st.func.params += 1;
            let nid = self.pool(&r.name);
            st.func.param_names.push(nid);
        }
        for p in &f.sig.params {
            if p.names.is_empty() {
                // Unnamed parameter still consumes a slot.
                st.bind("_");
                st.func.params += 1;
                let nid = self.pool("_");
                st.func.param_names.push(nid);
            } else {
                for n in &p.names {
                    st.bind(n);
                    st.func.params += 1;
                    let nid = self.pool(n);
                    st.func.param_names.push(nid);
                }
            }
        }
        st.func.results = f
            .sig
            .results
            .iter()
            .map(|p| p.names.len().max(1))
            .sum::<usize>() as u8;

        self.fns.push(st);

        // Named results become zero-initialised locals.
        let named_results: Vec<(String, ast::Type)> = f
            .sig
            .results
            .iter()
            .flat_map(|p| p.names.iter().map(|n| (n.clone(), p.ty.clone())))
            .collect();
        for (n, ty) in &named_results {
            let h = self.hint_of(ty);
            let hid = self.hint_id(h);
            self.emit(Op::MakeZero(hid));
            let nid = self.pool(n);
            let slot = self.cur().bind(n);
            self.emit(Op::AllocLocal { slot, name: nid });
        }

        self.block(body)?;

        // Fallthrough return.
        self.set_line(Span::new(body.span.hi.saturating_sub(1), body.span.hi));
        if !named_results.is_empty() {
            for (n, _) in &named_results {
                self.load_ident(n, body.span)?;
            }
            self.emit(Op::Return {
                n: named_results.len() as u8,
            });
        } else {
            self.emit(Op::ConstNil);
            self.emit(Op::Return { n: 1 });
        }

        let st = self.fns.pop().expect("fn state");
        if !st.captures.is_empty() {
            return Err(Diag::new(
                "top-level function cannot capture variables",
                f.span,
            ));
        }
        self.prog.funcs[id as usize] = st.func;
        Ok(())
    }

    // ------------------------------------------------------------ helpers

    fn cur(&mut self) -> &mut FnState {
        self.fns.last_mut().expect("inside a function")
    }

    fn emit(&mut self, op: Op) {
        let line = self.cur().cur_line;
        let st = self.cur();
        st.func.code.push(op);
        st.func.lines.push(line);
    }

    fn here(&mut self) -> usize {
        self.cur().func.code.len()
    }

    fn line(&self, span: Span) -> u32 {
        self.line_maps[self.cur_file as usize].line(span.lo)
    }

    fn set_line(&mut self, span: Span) {
        if !span.is_dummy() {
            let l = self.line(span);
            self.cur().cur_line = l;
        }
    }

    fn patch_jump(&mut self, at: usize) {
        let target = self.here() as i32;
        self.patch_jump_to(at, target);
    }

    fn patch_jump_to(&mut self, at: usize, target: i32) {
        let st = self.cur();
        match &mut st.func.code[at] {
            Op::Jump(t) | Op::JumpIfFalse(t) | Op::JumpIfTrue(t) | Op::IterNext(t) => {
                *t = target;
            }
            other => panic!("patching non-jump {other:?}"),
        }
    }

    /// Resolves a name, adding upvalue captures through enclosing
    /// functions as needed (Lua-style).
    fn resolve(&mut self, name: &str) -> Option<Resolved> {
        fn resolve_at(fns: &mut [FnState], idx: usize, name: &str) -> Option<Resolved> {
            if let Some(slot) = fns[idx].lookup(name) {
                return Some(Resolved::Local(slot));
            }
            // Already captured?
            if let Some(pos) = fns[idx].captures.iter().position(|(n, _)| n == name) {
                return Some(Resolved::Upval(pos as u16));
            }
            if idx == 0 {
                return None;
            }
            match resolve_at(fns, idx - 1, name)? {
                Resolved::Local(slot) => {
                    fns[idx]
                        .captures
                        .push((name.to_owned(), UpvalSrc::Local(slot)));
                    Some(Resolved::Upval((fns[idx].captures.len() - 1) as u16))
                }
                Resolved::Upval(u) => {
                    fns[idx]
                        .captures
                        .push((name.to_owned(), UpvalSrc::Upval(u)));
                    Some(Resolved::Upval((fns[idx].captures.len() - 1) as u16))
                }
                other => Some(other),
            }
        }
        let top = self.fns.len() - 1;
        if let Some(r) = resolve_at(&mut self.fns, top, name) {
            return Some(r);
        }
        if let Some(&g) = self.globals_map.get(name) {
            return Some(Resolved::Global(g));
        }
        if let Some(&f) = self.func_ids.get(name) {
            return Some(Resolved::Func(f));
        }
        None
    }

    fn load_ident(&mut self, name: &str, span: Span) -> Result<()> {
        match name {
            "true" => {
                self.emit(Op::ConstBool(true));
                return Ok(());
            }
            "false" => {
                self.emit(Op::ConstBool(false));
                return Ok(());
            }
            "nil" => {
                self.emit(Op::ConstNil);
                return Ok(());
            }
            _ => {}
        }
        match self.resolve(name) {
            Some(Resolved::Local(s)) => self.emit(Op::LoadLocal(s)),
            Some(Resolved::Upval(u)) => self.emit(Op::LoadUpval(u)),
            Some(Resolved::Global(g)) => self.emit(Op::LoadGlobal(g)),
            Some(Resolved::Func(f)) => self.emit(Op::ConstFunc(f)),
            None => {
                return Err(Diag::new(format!("undefined identifier `{name}`"), span));
            }
        }
        Ok(())
    }

    fn store_ident(&mut self, name: &str, span: Span) -> Result<()> {
        if name == "_" {
            self.emit(Op::Pop);
            return Ok(());
        }
        match self.resolve(name) {
            Some(Resolved::Local(s)) => self.emit(Op::StoreLocal(s)),
            Some(Resolved::Upval(u)) => self.emit(Op::StoreUpval(u)),
            Some(Resolved::Global(g)) => self.emit(Op::StoreGlobal(g)),
            _ => return Err(Diag::new(format!("cannot assign to `{name}`"), span)),
        }
        Ok(())
    }

    fn ref_ident(&mut self, name: &str, span: Span) -> Result<()> {
        match self.resolve(name) {
            Some(Resolved::Local(s)) => self.emit(Op::RefLocal(s)),
            Some(Resolved::Upval(u)) => self.emit(Op::RefUpval(u)),
            Some(Resolved::Global(g)) => self.emit(Op::RefGlobal(g)),
            _ => return Err(Diag::new(format!("cannot take address of `{name}`"), span)),
        }
        Ok(())
    }

    /// True when `name` refers to an imported package namespace (and is
    /// not shadowed by a variable).
    fn is_package(&mut self, name: &str) -> bool {
        if !self.aliases.contains(name) {
            return false;
        }
        // A local/global/function with the same name shadows the package.
        let top = self.fns.len() - 1;
        let shadowed = self.fns[top].lookup(name).is_some()
            || self.globals_map.contains_key(name)
            || self.func_ids.contains_key(name);
        !shadowed
    }

    // --------------------------------------------------------------- types

    fn hint_of(&mut self, ty: &ast::Type) -> TypeHint {
        match ty {
            ast::Type::Named { path, .. } => {
                let joined = path.join(".");
                match joined.as_str() {
                    "int" | "int8" | "int16" | "int32" | "int64" | "uint" | "uint8" | "uint16"
                    | "uint32" | "uint64" | "byte" | "rune" | "uintptr" => TypeHint::Int,
                    "float32" | "float64" => TypeHint::Float,
                    "bool" => TypeHint::Bool,
                    "string" => TypeHint::Str,
                    "error" => TypeHint::Error,
                    "any" => TypeHint::Unknown,
                    "sync.Mutex" => TypeHint::Mutex,
                    "sync.RWMutex" => TypeHint::RwMutex,
                    "sync.WaitGroup" => TypeHint::WaitGroup,
                    "sync.Map" => TypeHint::SyncMap,
                    "time.Duration" => TypeHint::Int,
                    _ => {
                        if self.struct_ast.contains_key(&joined) {
                            let id = self.pool(&joined);
                            TypeHint::Struct(id)
                        } else if let Some(under) = self.typedef_ast.get(&joined).cloned() {
                            self.hint_of(&under)
                        } else {
                            TypeHint::Unknown
                        }
                    }
                }
            }
            ast::Type::Pointer(_) => TypeHint::Ptr,
            ast::Type::Slice(_) | ast::Type::Array { .. } => TypeHint::Slice,
            ast::Type::Map { .. } => TypeHint::Map,
            ast::Type::Chan { .. } => TypeHint::Chan,
            ast::Type::Func(_) => TypeHint::Func,
            ast::Type::Struct(fields) => {
                let name = self.register_anon_struct(fields);
                let id = self.pool(&name);
                TypeHint::Struct(id)
            }
            ast::Type::Interface(_) => TypeHint::Unknown,
        }
    }

    fn register_anon_struct(&mut self, fields: &[ast::Field]) -> String {
        // Structural dedup: same field names/types reuse a registration.
        let mut ast_fields = Vec::new();
        for f in fields {
            for n in &f.names {
                ast_fields.push((n.clone(), f.ty.clone()));
            }
        }
        for (name, existing) in &self.struct_ast {
            if name.starts_with("$anon") && *existing == ast_fields {
                return name.clone();
            }
        }
        let name = format!("$anon{}", self.anon_types);
        self.anon_types += 1;
        let name_id = self.pool(&name);
        let mut defs = Vec::new();
        for (fname, fty) in &ast_fields {
            let h = self.hint_of(fty);
            let hid = self.hint_id(h);
            let fid = self.pool(fname);
            defs.push((fid, hid));
        }
        self.prog.types.push(StructTypeDef {
            name: name_id,
            fields: defs,
        });
        self.struct_ast.insert(name.clone(), ast_fields);
        name
    }

    // ---------------------------------------------------------- statements

    fn block(&mut self, b: &ast::Block) -> Result<()> {
        self.cur().scopes.push(Vec::new());
        for s in &b.stmts {
            self.stmt(s)?;
        }
        self.cur().scopes.pop();
        Ok(())
    }

    fn stmt(&mut self, s: &Stmt) -> Result<()> {
        self.set_line(s.span());
        match s {
            Stmt::Decl(v) => self.local_decl(v),
            Stmt::ShortVar {
                names,
                values,
                span,
            } => self.short_var(names, values, *span),
            Stmt::Assign { lhs, op, rhs, span } => self.assign(lhs, *op, rhs, *span),
            Stmt::IncDec { expr, inc, span } => {
                let one = Expr::int(1);
                let op = if *inc { AssignOp::Add } else { AssignOp::Sub };
                self.assign(
                    std::slice::from_ref(expr),
                    op,
                    std::slice::from_ref(&one),
                    *span,
                )
            }
            Stmt::Expr(e) => {
                self.expr(e)?;
                self.emit(Op::Pop);
                Ok(())
            }
            Stmt::Send { chan, value, .. } => {
                self.expr(chan)?;
                self.expr(value)?;
                self.emit(Op::Send);
                Ok(())
            }
            Stmt::Go { call, span } => self.go_or_defer(call, *span, true),
            Stmt::Defer { call, span } => self.go_or_defer(call, *span, false),
            Stmt::Return { values, span } => {
                let expected = self.cur().func.results;
                if values.is_empty() && expected > 0 {
                    // Bare return with named results: reload them.
                    // (Compiled earlier as locals in declaration order —
                    // their names live in the outermost scope.)
                    let params = self.cur().func.params as usize;
                    let names: Vec<String> = self.cur().scopes[0]
                        .iter()
                        .skip(params)
                        .take(expected as usize)
                        .map(|(n, _)| n.clone())
                        .collect();
                    if names.len() != expected as usize {
                        return Err(Diag::new("bare return requires named results", *span));
                    }
                    for n in &names {
                        self.load_ident(n, *span)?;
                    }
                    self.emit(Op::Return { n: expected });
                    return Ok(());
                }
                for v in values {
                    self.expr(v)?;
                }
                self.emit(Op::Return {
                    n: values.len() as u8,
                });
                Ok(())
            }
            Stmt::If(st) => self.if_stmt(st),
            Stmt::For(st) => self.for_stmt(st, None),
            Stmt::Range(st) => self.range_stmt(st, None),
            Stmt::Switch(st) => self.switch_stmt(st),
            Stmt::Select(st) => self.select_stmt(st),
            Stmt::Block(b) => self.block(b),
            Stmt::Break { label, span } => {
                let at = self.here();
                self.emit(Op::Jump(0));
                let st = self.cur();
                let target = match label {
                    Some(l) => st
                        .loops
                        .iter_mut()
                        .rev()
                        .find(|lc| lc.label.as_deref() == Some(l)),
                    None => st.loops.last_mut(),
                };
                match target {
                    Some(lc) => lc.break_jumps.push(at),
                    None => return Err(Diag::new("break outside loop", *span)),
                }
                Ok(())
            }
            Stmt::Continue { label, span } => {
                let at = self.here();
                self.emit(Op::Jump(0));
                let st = self.cur();
                let target = match label {
                    Some(l) => st
                        .loops
                        .iter_mut()
                        .rev()
                        .filter(|lc| lc.is_loop)
                        .find(|lc| lc.label.as_deref() == Some(l)),
                    None => st.loops.iter_mut().rev().find(|lc| lc.is_loop),
                };
                match target {
                    Some(lc) => lc.continue_jumps.push(at),
                    None => return Err(Diag::new("continue outside loop", *span)),
                }
                Ok(())
            }
            Stmt::Labeled { label, stmt, .. } => match stmt.as_ref() {
                Stmt::For(st) => self.for_stmt(st, Some(label.clone())),
                Stmt::Range(st) => self.range_stmt(st, Some(label.clone())),
                other => self.stmt(other),
            },
            Stmt::Empty { .. } => Ok(()),
        }
    }

    fn local_decl(&mut self, v: &ast::VarDecl) -> Result<()> {
        if v.values.is_empty() {
            for n in &v.names {
                let hint =
                    v.ty.as_ref()
                        .map(|t| self.hint_of(t))
                        .unwrap_or(TypeHint::Unknown);
                let hid = self.hint_id(hint);
                self.emit(Op::MakeZero(hid));
                self.alloc_named(n);
            }
            return Ok(());
        }
        if v.values.len() == v.names.len() {
            for (n, val) in v.names.iter().zip(&v.values) {
                let hint = self.pool(n);
                let saved = self.name_hint.replace(hint);
                self.expr_with(val, v.ty.as_ref())?;
                self.name_hint = saved;
                self.alloc_named(n);
            }
            return Ok(());
        }
        if v.values.len() == 1 {
            self.expr(&v.values[0])?;
            self.emit(Op::Expand {
                n: v.names.len() as u8,
            });
            // Values on stack in order; allocate in reverse.
            let names: Vec<String> = v.names.clone();
            for n in names.iter().rev() {
                self.alloc_named(n);
            }
            return Ok(());
        }
        Err(Diag::new("mismatched declaration arity", v.span))
    }

    fn alloc_named(&mut self, n: &str) {
        if n == "_" {
            self.emit(Op::Pop);
            return;
        }
        let nid = self.pool(n);
        let slot = self.cur().bind(n);
        self.emit(Op::AllocLocal { slot, name: nid });
    }

    fn short_var(&mut self, names: &[String], values: &[Expr], span: Span) -> Result<()> {
        // comma-ok special forms.
        if names.len() == 2 && values.len() == 1 {
            match &values[0] {
                Expr::Index { expr, index, .. } => {
                    self.expr(expr)?;
                    self.expr(index)?;
                    self.emit(Op::Index { comma_ok: true });
                    self.short_var_targets(names, span)?;
                    return Ok(());
                }
                Expr::Unary {
                    op: UnOp::Recv,
                    expr,
                    ..
                } => {
                    self.expr(expr)?;
                    self.emit(Op::Recv { comma_ok: true });
                    self.short_var_targets(names, span)?;
                    return Ok(());
                }
                Expr::TypeAssert { expr, .. } => {
                    self.expr(expr)?;
                    self.emit(Op::ConstBool(true));
                    self.short_var_targets(names, span)?;
                    return Ok(());
                }
                _ => {}
            }
        }
        if values.len() == names.len() {
            for (n, v) in names.iter().zip(values) {
                let hint = self.pool(n);
                let saved = self.name_hint.replace(hint);
                self.expr(v)?;
                self.name_hint = saved;
            }
            self.short_var_targets(names, span)?;
            return Ok(());
        }
        if values.len() == 1 {
            self.expr(&values[0])?;
            self.emit(Op::Expand {
                n: names.len() as u8,
            });
            self.short_var_targets(names, span)?;
            return Ok(());
        }
        Err(Diag::new("mismatched `:=` arity", span))
    }

    /// Pops stacked values (in reverse) into `:=` targets: redeclares in
    /// the current scope unless the name is already declared *in that
    /// scope* (Go's redeclaration rule).
    fn short_var_targets(&mut self, names: &[String], _span: Span) -> Result<()> {
        for n in names.iter().rev() {
            if n == "_" {
                self.emit(Op::Pop);
            } else if let Some(slot) = self.cur().lookup_innermost(n) {
                self.emit(Op::StoreLocal(slot));
            } else {
                self.alloc_named(n);
            }
        }
        Ok(())
    }

    fn assign(&mut self, lhs: &[Expr], op: AssignOp, rhs: &[Expr], span: Span) -> Result<()> {
        if op != AssignOp::Assign {
            // Compound assignment: single target only.
            if lhs.len() != 1 || rhs.len() != 1 {
                return Err(Diag::new("compound assignment needs single target", span));
            }
            return self.compound_assign(&lhs[0], op, &rhs[0], span);
        }
        if lhs.len() == 1 && rhs.len() == 1 {
            return self.assign_single(&lhs[0], &rhs[0], span);
        }
        // comma-ok forms.
        if lhs.len() == 2 && rhs.len() == 1 {
            match &rhs[0] {
                Expr::Index { expr, index, .. } => {
                    self.expr(expr)?;
                    self.expr(index)?;
                    self.emit(Op::Index { comma_ok: true });
                    self.store_multi(lhs, span)?;
                    return Ok(());
                }
                Expr::Unary {
                    op: UnOp::Recv,
                    expr,
                    ..
                } => {
                    self.expr(expr)?;
                    self.emit(Op::Recv { comma_ok: true });
                    self.store_multi(lhs, span)?;
                    return Ok(());
                }
                _ => {}
            }
        }
        if rhs.len() == 1 && lhs.len() > 1 {
            // Multi-assign from a call: refs, value, expand, store.
            for l in lhs {
                self.ref_lvalue(l, span)?;
            }
            self.expr(&rhs[0])?;
            self.emit(Op::Expand { n: lhs.len() as u8 });
            self.emit(Op::StoreMulti(lhs.len() as u8));
            return Ok(());
        }
        if rhs.len() == lhs.len() {
            for l in lhs {
                self.ref_lvalue(l, span)?;
            }
            for r in rhs {
                self.expr(r)?;
            }
            self.emit(Op::StoreMulti(lhs.len() as u8));
            return Ok(());
        }
        Err(Diag::new("mismatched assignment arity", span))
    }

    /// Stores two stacked values into two lvalues (idents only).
    fn store_multi(&mut self, lhs: &[Expr], span: Span) -> Result<()> {
        for l in lhs.iter().rev() {
            match l.as_ident() {
                Some(n) => self.store_ident(n, span)?,
                None => return Err(Diag::new("comma-ok target must be an identifier", l.span())),
            }
        }
        Ok(())
    }

    fn assign_single(&mut self, lhs: &Expr, rhs: &Expr, span: Span) -> Result<()> {
        match lhs {
            Expr::Ident { name, .. } => {
                self.expr(rhs)?;
                self.store_ident(name, span)
            }
            Expr::Selector { expr, name, .. } => {
                self.expr(expr)?;
                self.expr(rhs)?;
                let nid = self.pool(name);
                self.emit(Op::SetField(nid));
                Ok(())
            }
            Expr::Index { expr, index, .. } => {
                self.expr(expr)?;
                self.expr(index)?;
                self.expr(rhs)?;
                self.emit(Op::SetIndex);
                Ok(())
            }
            Expr::Unary {
                op: UnOp::Deref,
                expr,
                ..
            } => {
                self.expr(expr)?;
                self.expr(rhs)?;
                self.emit(Op::StorePtr);
                Ok(())
            }
            Expr::Paren { expr, .. } => self.assign_single(expr, rhs, span),
            other => Err(Diag::new("unsupported assignment target", other.span())),
        }
    }

    fn compound_assign(&mut self, lhs: &Expr, op: AssignOp, rhs: &Expr, span: Span) -> Result<()> {
        let bin = match op {
            AssignOp::Add => Op::Add,
            AssignOp::Sub => Op::Sub,
            AssignOp::Mul => Op::Mul,
            AssignOp::Div => Op::Div,
            AssignOp::Rem => Op::Rem,
            AssignOp::And => Op::BitAnd,
            AssignOp::Or => Op::BitOr,
            AssignOp::Assign => unreachable!("handled by caller"),
        };
        match lhs {
            Expr::Ident { name, .. } => {
                self.load_ident(name, span)?;
                self.expr(rhs)?;
                self.emit(bin);
                self.store_ident(name, span)
            }
            Expr::Selector { expr, name, .. } => {
                self.expr(expr)?;
                self.emit(Op::Dup);
                let nid = self.pool(name);
                self.emit(Op::GetField(nid));
                self.expr(rhs)?;
                self.emit(bin);
                self.emit(Op::SetField(nid));
                Ok(())
            }
            Expr::Index { expr, index, .. } => {
                self.expr(expr)?;
                self.expr(index)?;
                self.emit(Op::Dup2);
                self.emit(Op::Index { comma_ok: false });
                self.expr(rhs)?;
                self.emit(bin);
                self.emit(Op::SetIndex);
                Ok(())
            }
            Expr::Unary {
                op: UnOp::Deref,
                expr,
                ..
            } => {
                self.expr(expr)?;
                self.emit(Op::Dup);
                self.emit(Op::LoadPtr);
                self.expr(rhs)?;
                self.emit(bin);
                self.emit(Op::StorePtr);
                Ok(())
            }
            other => Err(Diag::new(
                "unsupported compound assignment target",
                other.span(),
            )),
        }
    }

    fn ref_lvalue(&mut self, e: &Expr, span: Span) -> Result<()> {
        match e {
            Expr::Ident { name, .. } => self.ref_ident(name, span),
            Expr::Selector { expr, name, .. } => {
                self.expr(expr)?;
                let nid = self.pool(name);
                self.emit(Op::RefField(nid));
                Ok(())
            }
            Expr::Index { expr, index, .. } => {
                self.expr(expr)?;
                self.expr(index)?;
                self.emit(Op::RefIndex);
                Ok(())
            }
            Expr::Unary {
                op: UnOp::Deref,
                expr,
                ..
            } => self.expr(expr),
            Expr::Paren { expr, .. } => self.ref_lvalue(expr, span),
            other => Err(Diag::new("unsupported assignment target", other.span())),
        }
    }

    fn go_or_defer(&mut self, call: &Expr, span: Span, is_go: bool) -> Result<()> {
        let (fun, args) = match call {
            Expr::Call { fun, args, .. } => (fun.as_ref(), args.as_slice()),
            other => {
                return Err(Diag::new(
                    if is_go {
                        "go requires a function call"
                    } else {
                        "defer requires a function call"
                    },
                    other.span(),
                ))
            }
        };
        self.callee(fun, span)?;
        for a in args {
            self.expr(a)?;
        }
        let argc = args.len() as u8;
        self.emit(if is_go {
            Op::Go { argc }
        } else {
            Op::DeferCall { argc }
        });
        Ok(())
    }

    /// Compiles a callee expression (handles method binding and builtins).
    fn callee(&mut self, fun: &Expr, span: Span) -> Result<()> {
        match fun {
            Expr::Selector { expr, name, .. } => {
                if let Some(root) = expr.as_ident() {
                    let root = root.to_owned();
                    if self.is_package(&root) {
                        let q = format!("{root}.{name}");
                        if let Some(b) = natives::builtin_id(&q) {
                            self.emit(Op::ConstBuiltin(b));
                            return Ok(());
                        }
                        return Err(Diag::new(format!("unknown builtin `{q}`"), span));
                    }
                }
                self.expr(expr)?;
                let nid = self.pool(name);
                self.emit(Op::BindMethod(nid));
                Ok(())
            }
            other => self.expr(other),
        }
    }

    fn if_stmt(&mut self, st: &ast::IfStmt) -> Result<()> {
        self.cur().scopes.push(Vec::new());
        if let Some(init) = &st.init {
            self.stmt(init)?;
        }
        self.expr(&st.cond)?;
        let jf = self.here();
        self.emit(Op::JumpIfFalse(0));
        self.block(&st.then)?;
        if let Some(el) = &st.else_ {
            let jend = self.here();
            self.emit(Op::Jump(0));
            self.patch_jump(jf);
            self.stmt(el)?;
            self.patch_jump(jend);
        } else {
            self.patch_jump(jf);
        }
        self.cur().scopes.pop();
        Ok(())
    }

    fn for_stmt(&mut self, st: &ast::ForStmt, label: Option<String>) -> Result<()> {
        self.cur().scopes.push(Vec::new());
        if let Some(init) = &st.init {
            self.stmt(init)?;
        }
        let loop_start = self.here();
        let mut exit_jump = None;
        if let Some(c) = &st.cond {
            self.expr(c)?;
            let jf = self.here();
            self.emit(Op::JumpIfFalse(0));
            exit_jump = Some(jf);
        }
        self.cur().loops.push(LoopCtx {
            label,
            is_loop: true,
            break_jumps: Vec::new(),
            continue_jumps: Vec::new(),
        });
        self.block(&st.body)?;
        let continue_target = self.here() as i32;
        if let Some(post) = &st.post {
            self.stmt(post)?;
        }
        self.emit(Op::Jump(loop_start as i32));
        let end = self.here() as i32;
        if let Some(jf) = exit_jump {
            self.patch_jump_to(jf, end);
        }
        let lc = self.cur().loops.pop().expect("loop ctx");
        for b in lc.break_jumps {
            self.patch_jump_to(b, end);
        }
        for c in lc.continue_jumps {
            self.patch_jump_to(c, continue_target);
        }
        self.cur().scopes.pop();
        Ok(())
    }

    fn range_stmt(&mut self, st: &ast::RangeStmt, label: Option<String>) -> Result<()> {
        self.cur().scopes.push(Vec::new());
        self.expr(&st.expr)?;
        self.emit(Op::IterInit);
        let it_nid = self.pool("$range");
        let it_slot = self.cur().bind("$range");
        self.emit(Op::AllocLocal {
            slot: it_slot,
            name: it_nid,
        });

        let key_name = st
            .key
            .as_ref()
            .and_then(|e| e.as_ident())
            .map(str::to_owned);
        let val_name = st
            .value
            .as_ref()
            .and_then(|e| e.as_ident())
            .map(str::to_owned);

        // Pre-Go-1.22: bindings are allocated once, before the loop.
        let per_iter = self.opts.loopvar_per_iteration;
        let mut key_slot = None;
        let mut val_slot = None;
        if st.define && !per_iter {
            if let Some(k) = &key_name {
                if k != "_" {
                    self.emit(Op::ConstNil);
                    let nid = self.pool(k);
                    let slot = self.cur().bind(k);
                    self.emit(Op::AllocLocal { slot, name: nid });
                    key_slot = Some(slot);
                }
            }
            if let Some(v) = &val_name {
                if v != "_" {
                    self.emit(Op::ConstNil);
                    let nid = self.pool(v);
                    let slot = self.cur().bind(v);
                    self.emit(Op::AllocLocal { slot, name: nid });
                    val_slot = Some(slot);
                }
            }
        }

        let loop_start = self.here();
        self.emit(Op::LoadLocal(it_slot));
        let iter_next = self.here();
        self.emit(Op::IterNext(0));
        // Stack now: key, value (value on top).
        if st.define {
            if per_iter {
                // Fresh cells every iteration: AllocLocal rebinds the slot.
                match (&val_name, &key_name) {
                    (Some(v), _) if v != "_" => {
                        let nid = self.pool(v);
                        let slot = self.cur().bind(v);
                        self.emit(Op::AllocLocal { slot, name: nid });
                    }
                    _ => self.emit(Op::Pop),
                }
                match &key_name {
                    Some(k) if k != "_" => {
                        let nid = self.pool(k);
                        let slot = self.cur().bind(k);
                        self.emit(Op::AllocLocal { slot, name: nid });
                    }
                    _ => self.emit(Op::Pop),
                }
            } else {
                match val_slot {
                    Some(slot) => self.emit(Op::StoreLocal(slot)),
                    None => self.emit(Op::Pop),
                }
                match key_slot {
                    Some(slot) => self.emit(Op::StoreLocal(slot)),
                    None => self.emit(Op::Pop),
                }
            }
        } else {
            // Assignment form: store into existing lvalues.
            match &st.value {
                Some(v) => {
                    let n = v
                        .as_ident()
                        .ok_or_else(|| Diag::new("range target must be identifier", v.span()))?
                        .to_owned();
                    self.store_ident(&n, st.span)?;
                }
                None => self.emit(Op::Pop),
            }
            match &st.key {
                Some(k) => {
                    let n = k
                        .as_ident()
                        .ok_or_else(|| Diag::new("range target must be identifier", k.span()))?
                        .to_owned();
                    self.store_ident(&n, st.span)?;
                }
                None => self.emit(Op::Pop),
            }
        }

        self.cur().loops.push(LoopCtx {
            label,
            is_loop: true,
            break_jumps: Vec::new(),
            continue_jumps: Vec::new(),
        });
        self.block(&st.body)?;
        let continue_target = loop_start as i32;
        self.emit(Op::Jump(loop_start as i32));
        let end = self.here() as i32;
        self.patch_jump_to(iter_next, end);
        let lc = self.cur().loops.pop().expect("loop ctx");
        for b in lc.break_jumps {
            self.patch_jump_to(b, end);
        }
        for c in lc.continue_jumps {
            self.patch_jump_to(c, continue_target);
        }
        self.cur().scopes.pop();
        Ok(())
    }

    fn switch_stmt(&mut self, st: &ast::SwitchStmt) -> Result<()> {
        self.cur().scopes.push(Vec::new());
        if let Some(init) = &st.init {
            self.stmt(init)?;
        }
        // Evaluate the tag into a hidden slot.
        let tag_slot = if let Some(tag) = &st.tag {
            self.expr(tag)?;
            let nid = self.pool("$switch");
            let slot = self.cur().bind("$switch");
            self.emit(Op::AllocLocal { slot, name: nid });
            Some(slot)
        } else {
            None
        };

        // Dispatch: for each case expr, compare and jump.
        let mut case_jumps: Vec<Vec<usize>> = Vec::new();
        let mut default_idx = None;
        for (i, case) in st.cases.iter().enumerate() {
            let mut jumps = Vec::new();
            if case.exprs.is_empty() {
                default_idx = Some(i);
            }
            for e in &case.exprs {
                match tag_slot {
                    Some(slot) => {
                        self.emit(Op::LoadLocal(slot));
                        self.expr(e)?;
                        self.emit(Op::Eq);
                    }
                    None => {
                        self.expr(e)?;
                    }
                }
                let j = self.here();
                self.emit(Op::JumpIfTrue(0));
                jumps.push(j);
            }
            case_jumps.push(jumps);
        }
        let to_default = self.here();
        self.emit(Op::Jump(0));

        self.cur().loops.push(LoopCtx {
            label: None,
            is_loop: false,
            break_jumps: Vec::new(),
            continue_jumps: Vec::new(),
        });

        let mut end_jumps = Vec::new();
        let mut body_starts = Vec::new();
        for case in &st.cases {
            body_starts.push(self.here());
            self.cur().scopes.push(Vec::new());
            for s in &case.body {
                self.stmt(s)?;
            }
            self.cur().scopes.pop();
            let j = self.here();
            self.emit(Op::Jump(0));
            end_jumps.push(j);
        }
        let end = self.here() as i32;
        for (i, jumps) in case_jumps.iter().enumerate() {
            for &j in jumps {
                self.patch_jump_to(j, body_starts[i] as i32);
            }
        }
        match default_idx {
            Some(i) => self.patch_jump_to(to_default, body_starts[i] as i32),
            None => self.patch_jump_to(to_default, end),
        }
        for j in end_jumps {
            self.patch_jump_to(j, end);
        }
        let lc = self.cur().loops.pop().expect("switch ctx");
        for b in lc.break_jumps {
            self.patch_jump_to(b, end);
        }
        self.cur().scopes.pop();
        Ok(())
    }

    fn select_stmt(&mut self, st: &ast::SelectStmt) -> Result<()> {
        // Evaluate channels (and send values) in case order.
        for case in &st.cases {
            match &case.comm {
                CommClause::Send { chan, value } => {
                    self.expr(chan)?;
                    self.expr(value)?;
                }
                CommClause::Recv { chan, .. } => {
                    self.expr(chan)?;
                }
                CommClause::Default => {}
            }
        }
        let spec_id = self.prog.selects.len() as u32;
        self.prog.selects.push(SelectSpec { cases: Vec::new() });
        let select_at = self.here();
        self.emit(Op::Select(spec_id));

        self.cur().loops.push(LoopCtx {
            label: None,
            is_loop: false,
            break_jumps: Vec::new(),
            continue_jumps: Vec::new(),
        });

        let mut specs = Vec::new();
        let mut end_jumps = Vec::new();
        for case in &st.cases {
            let body = self.here() as u32;
            self.cur().scopes.push(Vec::new());
            match &case.comm {
                CommClause::Send { .. } => {
                    specs.push(SelectCaseSpec::Send { body });
                }
                CommClause::Recv { lhs, define, chan } => {
                    let _ = chan;
                    let push_value = !lhs.is_empty();
                    let push_ok = lhs.len() == 2;
                    specs.push(SelectCaseSpec::Recv {
                        body,
                        push_value,
                        push_ok,
                    });
                    // Prologue: stack carries [value, ok?] (ok on top).
                    if push_value {
                        if *define {
                            for e in lhs.iter().rev() {
                                let n = e
                                    .as_ident()
                                    .ok_or_else(|| {
                                        Diag::new("select binding must be identifier", e.span())
                                    })?
                                    .to_owned();
                                self.alloc_named(&n);
                            }
                        } else {
                            for e in lhs.iter().rev() {
                                let n = e
                                    .as_ident()
                                    .ok_or_else(|| {
                                        Diag::new("select target must be identifier", e.span())
                                    })?
                                    .to_owned();
                                self.store_ident(&n, case.span)?;
                            }
                        }
                    }
                }
                CommClause::Default => {
                    specs.push(SelectCaseSpec::Default { body });
                }
            }
            for s in &case.body {
                self.stmt(s)?;
            }
            self.cur().scopes.pop();
            let j = self.here();
            self.emit(Op::Jump(0));
            end_jumps.push(j);
        }
        let end = self.here() as i32;
        for j in end_jumps {
            self.patch_jump_to(j, end);
        }
        let lc = self.cur().loops.pop().expect("select ctx");
        for b in lc.break_jumps {
            self.patch_jump_to(b, end);
        }
        self.prog.selects[spec_id as usize].cases = specs;
        let _ = select_at;
        Ok(())
    }

    // --------------------------------------------------------- expressions

    fn expr(&mut self, e: &Expr) -> Result<()> {
        self.expr_with(e, None)
    }

    fn expr_with(&mut self, e: &Expr, expected: Option<&ast::Type>) -> Result<()> {
        self.set_line(e.span());
        match e {
            Expr::Ident { name, span } => self.load_ident(name, *span),
            Expr::IntLit { value, .. } => {
                self.emit(Op::ConstInt(*value));
                Ok(())
            }
            Expr::FloatLit { value, .. } => {
                self.emit(Op::ConstFloat(*value));
                Ok(())
            }
            Expr::StrLit { value, .. } => {
                let id = self.pool(value);
                self.emit(Op::ConstStr(id));
                Ok(())
            }
            Expr::RuneLit { value, .. } => {
                self.emit(Op::ConstInt(*value as i64));
                Ok(())
            }
            Expr::CompositeLit { ty, elems, span } => {
                self.composite(ty.as_ref(), elems, expected, *span)
            }
            Expr::FuncLit { sig, body, span } => self.func_lit(sig, body, *span),
            Expr::Selector { expr, name, span } => {
                if let Some(root) = expr.as_ident() {
                    let root = root.to_owned();
                    if self.is_package(&root) {
                        let q = format!("{root}.{name}");
                        if let Some(v) = natives::const_value(&q) {
                            self.emit(Op::ConstInt(v));
                            return Ok(());
                        }
                        if let Some(b) = natives::builtin_id(&q) {
                            self.emit(Op::ConstBuiltin(b));
                            return Ok(());
                        }
                        return Err(Diag::new(format!("unknown builtin `{q}`"), *span));
                    }
                }
                self.expr(expr)?;
                let nid = self.pool(name);
                self.emit(Op::GetField(nid));
                Ok(())
            }
            Expr::Index { expr, index, .. } => {
                self.expr(expr)?;
                self.expr(index)?;
                self.emit(Op::Index { comma_ok: false });
                Ok(())
            }
            Expr::SliceExpr { expr, lo, hi, .. } => {
                self.expr(expr)?;
                if let Some(lo) = lo {
                    self.expr(lo)?;
                }
                if let Some(hi) = hi {
                    self.expr(hi)?;
                }
                self.emit(Op::SliceOp {
                    has_lo: lo.is_some(),
                    has_hi: hi.is_some(),
                });
                Ok(())
            }
            Expr::Call {
                fun,
                args,
                variadic,
                span,
            } => self.call(fun, args, *variadic, *span),
            Expr::Make { ty, args, span } => self.make(ty, args, *span),
            Expr::New { ty, .. } => {
                let h = self.hint_of(ty);
                let hid = self.hint_id(h);
                self.emit(Op::NewPtr(hid));
                Ok(())
            }
            Expr::Unary { op, expr, span } => match op {
                UnOp::Neg => {
                    self.expr(expr)?;
                    self.emit(Op::Neg);
                    Ok(())
                }
                UnOp::Not => {
                    self.expr(expr)?;
                    self.emit(Op::Not);
                    Ok(())
                }
                UnOp::BitNot => {
                    self.expr(expr)?;
                    self.emit(Op::BitNot);
                    Ok(())
                }
                UnOp::Recv => {
                    self.expr(expr)?;
                    self.emit(Op::Recv { comma_ok: false });
                    Ok(())
                }
                UnOp::Deref => {
                    self.expr(expr)?;
                    self.emit(Op::LoadPtr);
                    Ok(())
                }
                UnOp::Addr => match expr.as_ref() {
                    // &T{...} — structs are references already.
                    Expr::CompositeLit { ty, elems, span } => {
                        self.composite(ty.as_ref(), elems, expected, *span)
                    }
                    Expr::Ident { name, span } => self.ref_ident(name, *span),
                    Expr::Selector { expr, name, .. } => {
                        self.expr(expr)?;
                        let nid = self.pool(name);
                        self.emit(Op::RefField(nid));
                        Ok(())
                    }
                    Expr::Index { expr, index, .. } => {
                        self.expr(expr)?;
                        self.expr(index)?;
                        self.emit(Op::RefIndex);
                        Ok(())
                    }
                    other => Err(Diag::new("cannot take address", other.span())),
                },
            }
            .map_err(|d: Diag| Diag {
                message: d.message,
                span: if d.span.is_dummy() { *span } else { d.span },
            }),
            Expr::Binary { op, lhs, rhs, .. } => self.binary(*op, lhs, rhs),
            Expr::Paren { expr, .. } => self.expr_with(expr, expected),
            Expr::TypeAssert { expr, .. } => {
                // Dynamic typing makes assertions pass-through.
                self.expr(expr)
            }
        }
    }

    fn binary(&mut self, op: BinOp, lhs: &Expr, rhs: &Expr) -> Result<()> {
        match op {
            // [lhs] Dup JumpIfFalse(end) Pop [rhs] end:
            // Short-circuit leaves the duplicated lhs (false) as result;
            // otherwise the dup is popped and rhs is the result.
            BinOp::AndAnd => {
                self.expr(lhs)?;
                self.emit(Op::Dup);
                let j = self.here();
                self.emit(Op::JumpIfFalse(0));
                self.emit(Op::Pop);
                self.expr(rhs)?;
                let end = self.here() as i32;
                self.patch_jump_to(j, end);
                Ok(())
            }
            BinOp::OrOr => {
                self.expr(lhs)?;
                self.emit(Op::Dup);
                let j = self.here();
                self.emit(Op::JumpIfTrue(0));
                self.emit(Op::Pop);
                self.expr(rhs)?;
                let end = self.here() as i32;
                self.patch_jump_to(j, end);
                Ok(())
            }
            other => {
                self.expr(lhs)?;
                self.expr(rhs)?;
                self.emit(match other {
                    BinOp::Add => Op::Add,
                    BinOp::Sub => Op::Sub,
                    BinOp::Mul => Op::Mul,
                    BinOp::Div => Op::Div,
                    BinOp::Rem => Op::Rem,
                    BinOp::Eq => Op::Eq,
                    BinOp::NotEq => Op::Ne,
                    BinOp::Lt => Op::Lt,
                    BinOp::LtEq => Op::Le,
                    BinOp::Gt => Op::Gt,
                    BinOp::GtEq => Op::Ge,
                    BinOp::BitAnd => Op::BitAnd,
                    BinOp::BitOr => Op::BitOr,
                    BinOp::BitXor => Op::BitXor,
                    BinOp::Shl => Op::Shl,
                    BinOp::Shr => Op::Shr,
                    BinOp::AndAnd | BinOp::OrOr => unreachable!("handled above"),
                });
                Ok(())
            }
        }
    }

    fn call(&mut self, fun: &Expr, args: &[Expr], variadic: bool, span: Span) -> Result<()> {
        // Core builtins by bare name (unless shadowed).
        if let Some(name) = fun.as_ident() {
            let shadowed = {
                let top = self.fns.len() - 1;
                self.fns[top].lookup(name).is_some() || self.globals_map.contains_key(name)
            };
            if !shadowed {
                match name {
                    "len" => {
                        self.expr(&args[0])?;
                        self.emit(Op::Len);
                        return Ok(());
                    }
                    "cap" => {
                        self.expr(&args[0])?;
                        self.emit(Op::Cap);
                        return Ok(());
                    }
                    "append" => {
                        self.expr(&args[0])?;
                        if variadic {
                            if args.len() != 2 {
                                return Err(Diag::new(
                                    "append with spread takes two arguments",
                                    span,
                                ));
                            }
                            self.expr(&args[1])?;
                            self.emit(Op::AppendSlice);
                        } else {
                            for a in &args[1..] {
                                self.expr(a)?;
                            }
                            self.emit(Op::Append {
                                n: (args.len() - 1) as u16,
                            });
                        }
                        return Ok(());
                    }
                    "delete" => {
                        self.expr(&args[0])?;
                        self.expr(&args[1])?;
                        self.emit(Op::DeleteKey);
                        self.emit(Op::ConstNil); // expression statements Pop
                        return Ok(());
                    }
                    "close" => {
                        self.expr(&args[0])?;
                        self.emit(Op::CloseChan);
                        self.emit(Op::ConstNil);
                        return Ok(());
                    }
                    "panic" => {
                        self.expr(&args[0])?;
                        self.emit(Op::Panic);
                        return Ok(());
                    }
                    "copy" => {
                        let b = natives::builtin_id("copy").expect("copy builtin");
                        self.emit(Op::ConstBuiltin(b));
                        for a in args {
                            self.expr(a)?;
                        }
                        self.emit(Op::Call {
                            argc: args.len() as u8,
                        });
                        return Ok(());
                    }
                    n if natives::INT_CONVERSIONS.contains(&n) => {
                        let b = natives::builtin_id("conv.int").expect("conv builtin");
                        self.emit(Op::ConstBuiltin(b));
                        self.expr(&args[0])?;
                        self.emit(Op::Call { argc: 1 });
                        return Ok(());
                    }
                    "float64" | "float32" => {
                        let b = natives::builtin_id("conv.float").expect("conv builtin");
                        self.emit(Op::ConstBuiltin(b));
                        self.expr(&args[0])?;
                        self.emit(Op::Call { argc: 1 });
                        return Ok(());
                    }
                    "string" => {
                        let b = natives::builtin_id("conv.string").expect("conv builtin");
                        self.emit(Op::ConstBuiltin(b));
                        self.expr(&args[0])?;
                        self.emit(Op::Call { argc: 1 });
                        return Ok(());
                    }
                    _ => {}
                }
            }
        }
        // `time.Duration(x)` style conversions.
        if let Expr::Selector { expr, name, .. } = fun {
            if let Some(root) = expr.as_ident() {
                let root = root.to_owned();
                if self.is_package(&root) && name == "Duration" && root == "time" {
                    let b = natives::builtin_id("conv.duration").expect("conv builtin");
                    self.emit(Op::ConstBuiltin(b));
                    self.expr(&args[0])?;
                    self.emit(Op::Call { argc: 1 });
                    return Ok(());
                }
            }
        }
        self.callee(fun, span)?;
        for a in args {
            self.expr(a)?;
        }
        self.emit(Op::Call {
            argc: args.len() as u8,
        });
        Ok(())
    }

    fn make(&mut self, ty: &ast::Type, args: &[Expr], span: Span) -> Result<()> {
        match ty {
            ast::Type::Chan { .. } => {
                let has_cap = !args.is_empty();
                if has_cap {
                    self.expr(&args[0])?;
                }
                self.emit(Op::MakeChan { has_cap });
                Ok(())
            }
            ast::Type::Map { .. } => {
                let name = self.name_hint.unwrap_or_else(|| self.pool("map"));
                self.emit(Op::MakeMapLit { n: 0, name });
                Ok(())
            }
            ast::Type::Slice(elem) => {
                if args.is_empty() {
                    self.emit(Op::ConstInt(0));
                } else {
                    self.expr(&args[0])?;
                }
                let h = self.hint_of(elem);
                let hid = self.hint_id(h);
                // MakeSliceN names cells "elem" in the VM; pre-name via a
                // literal when a hint exists by emitting the hinted op.
                self.emit(Op::MakeSliceN(hid));
                Ok(())
            }
            ast::Type::Named { path, .. } => {
                // Typedef of map/slice/chan.
                let joined = path.join(".");
                if let Some(under) = self.typedef_ast.get(&joined).cloned() {
                    return self.make(&under, args, span);
                }
                Err(Diag::new("make of unsupported type", span))
            }
            _ => Err(Diag::new("make of unsupported type", span)),
        }
    }

    fn func_lit(&mut self, sig: &ast::FuncSig, body: &ast::Block, span: Span) -> Result<()> {
        let parent_name = self.cur().func.name.clone();
        self.cur().closure_count += 1;
        let n = self.cur().closure_count;
        let name = format!("{parent_name}.func{n}");
        let file = self.cur_file;

        let mut st = FnState::new(name, file);
        st.cur_line = self.line(span);
        for p in &sig.params {
            if p.names.is_empty() {
                st.bind("_");
                st.func.params += 1;
                let nid = self.pool("_");
                st.func.param_names.push(nid);
            } else {
                for pn in &p.names {
                    st.bind(pn);
                    st.func.params += 1;
                    let nid = self.pool(pn);
                    st.func.param_names.push(nid);
                }
            }
        }
        st.func.results = sig
            .results
            .iter()
            .map(|p| p.names.len().max(1))
            .sum::<usize>() as u8;

        self.fns.push(st);
        let named_results: Vec<(String, ast::Type)> = sig
            .results
            .iter()
            .flat_map(|p| p.names.iter().map(|n| (n.clone(), p.ty.clone())))
            .collect();
        for (n, ty) in &named_results {
            let h = self.hint_of(ty);
            let hid = self.hint_id(h);
            self.emit(Op::MakeZero(hid));
            let nid = self.pool(n);
            let slot = self.cur().bind(n);
            self.emit(Op::AllocLocal { slot, name: nid });
        }
        self.block(body)?;
        if !named_results.is_empty() {
            for (n, _) in &named_results {
                self.load_ident(n, body.span)?;
            }
            self.emit(Op::Return {
                n: named_results.len() as u8,
            });
        } else {
            self.emit(Op::ConstNil);
            self.emit(Op::Return { n: 1 });
        }
        let st = self.fns.pop().expect("closure state");
        let func_id = self.prog.funcs.len() as u32;
        let captures: Vec<UpvalSrc> = st.captures.iter().map(|(_, src)| *src).collect();
        self.prog.funcs.push(st.func);
        let spec_id = self.prog.closures.len() as u32;
        self.prog.closures.push(ClosureSpec {
            func: func_id,
            captures,
        });
        self.emit(Op::MakeClosure(spec_id));
        Ok(())
    }

    fn composite(
        &mut self,
        ty: Option<&ast::Type>,
        elems: &[ast::CompositeElem],
        expected: Option<&ast::Type>,
        span: Span,
    ) -> Result<()> {
        let ty = match (ty, expected) {
            (Some(t), _) => t.clone(),
            (None, Some(t)) => t.clone(),
            (None, None) => return Err(Diag::new("cannot infer composite literal type", span)),
        };
        // Resolve typedefs and pointers.
        let ty = match &ty {
            ast::Type::Named { path, .. } => {
                let joined = path.join(".");
                if self.struct_ast.contains_key(&joined) {
                    ty.clone()
                } else if let Some(under) = self.typedef_ast.get(&joined).cloned() {
                    under
                } else {
                    ty.clone()
                }
            }
            ast::Type::Pointer(inner) => inner.as_ref().clone(),
            _ => ty.clone(),
        };
        match &ty {
            ast::Type::Slice(elem) | ast::Type::Array { elem, .. } => {
                for el in elems {
                    if el.key.is_some() {
                        return Err(Diag::new("keyed slice literals unsupported", span));
                    }
                    self.expr_with(&el.value, Some(elem))?;
                }
                let name = self.name_hint.unwrap_or_else(|| self.pool("elem"));
                self.emit(Op::MakeSliceLit {
                    n: elems.len() as u16,
                    name,
                });
                Ok(())
            }
            ast::Type::Map { key, value } => {
                for el in elems {
                    let k = el
                        .key
                        .as_ref()
                        .ok_or_else(|| Diag::new("map literal requires keys", span))?;
                    self.expr_with(k, Some(key))?;
                    self.expr_with(&el.value, Some(value))?;
                }
                let name = self.name_hint.unwrap_or_else(|| self.pool("entry"));
                self.emit(Op::MakeMapLit {
                    n: elems.len() as u16,
                    name,
                });
                Ok(())
            }
            ast::Type::Struct(fields) => {
                let name = self.register_anon_struct(fields);
                self.struct_lit(&name, elems, span)
            }
            ast::Type::Named { path, .. } => {
                let joined = path.join(".");
                self.struct_lit(&joined, elems, span)
            }
            _ => Err(Diag::new("unsupported composite literal type", span)),
        }
    }

    fn struct_lit(
        &mut self,
        type_name: &str,
        elems: &[ast::CompositeElem],
        span: Span,
    ) -> Result<()> {
        let declared = self.struct_ast.get(type_name).cloned();
        match declared {
            Some(decl_fields) => {
                // Registered type: emit every declared field (given value
                // or zero), in declaration order.
                let mut given: HashMap<String, &Expr> = HashMap::new();
                let keyed = elems.iter().all(|e| e.key.is_some());
                if keyed {
                    for el in elems {
                        let k =
                            el.key.as_ref().and_then(|k| k.as_ident()).ok_or_else(|| {
                                Diag::new("struct keys must be field names", span)
                            })?;
                        given.insert(k.to_owned(), &el.value);
                    }
                } else {
                    if elems.len() > decl_fields.len() {
                        return Err(Diag::new("too many positional fields", span));
                    }
                    for (el, (fname, _)) in elems.iter().zip(&decl_fields) {
                        if el.key.is_some() {
                            return Err(Diag::new("mixed positional and keyed fields", span));
                        }
                        given.insert(fname.clone(), &el.value);
                    }
                }
                let mut spec_fields = Vec::new();
                for (fname, fty) in &decl_fields {
                    let fid = self.pool(fname);
                    match given.get(fname) {
                        Some(e) => {
                            let saved = self.name_hint.replace(fid);
                            self.expr_with(e, Some(fty))?;
                            self.name_hint = saved;
                        }
                        None => {
                            let h = self.hint_of(fty);
                            let hid = self.hint_id(h);
                            self.emit(Op::MakeZero(hid));
                        }
                    }
                    spec_fields.push(fid);
                }
                let tid = self.pool(type_name);
                let spec_id = self.prog.struct_lits.len() as u32;
                self.prog.struct_lits.push(StructLitSpec {
                    type_name: tid,
                    fields: spec_fields,
                });
                self.emit(Op::MakeStructLit(spec_id));
                Ok(())
            }
            None => {
                // Unregistered (external) type: keyed fields only.
                let mut spec_fields = Vec::new();
                for el in elems {
                    let k = el
                        .key
                        .as_ref()
                        .and_then(|k| k.as_ident())
                        .ok_or_else(|| {
                            Diag::new(
                                format!("literal of unknown type `{type_name}` must use keys"),
                                span,
                            )
                        })?
                        .to_owned();
                    self.expr(&el.value)?;
                    let fid = self.pool(&k);
                    spec_fields.push(fid);
                }
                let tid = self.pool(type_name);
                let spec_id = self.prog.struct_lits.len() as u32;
                self.prog.struct_lits.push(StructLitSpec {
                    type_name: tid,
                    fields: spec_fields,
                });
                self.emit(Op::MakeStructLit(spec_id));
                Ok(())
            }
        }
    }
}

/// Extracts the base type name of a receiver type (`*Scanner[ROW]` →
/// `Scanner`).
fn base_type_name(ty: &ast::Type) -> String {
    match ty {
        ast::Type::Named { path, .. } => path.join("."),
        ast::Type::Pointer(inner) => base_type_name(inner),
        _ => String::new(),
    }
}

// FnState helpers used by the init-function dance.
impl FnState {
    fn take_placeholder(&mut self) -> FnState {
        std::mem::replace(self, FnState::new(String::new(), 0))
    }

    fn restore(&mut self, other: FnState) {
        *self = other;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn compile_one(src: &str) -> Program {
        compile_sources(
            &[("main.go".to_owned(), src.to_owned())],
            &CompileOptions::default(),
        )
        .unwrap_or_else(|e| panic!("compile failed: {e}"))
    }

    #[test]
    fn compiles_hello() {
        let p = compile_one(
            "package main\n\nimport \"fmt\"\n\nfunc main() {\n\tfmt.Println(\"hi\")\n}\n",
        );
        assert!(p.find_func("main").is_some());
        let f = &p.funcs[p.find_func("main").unwrap() as usize];
        assert!(f.code.iter().any(|op| matches!(op, Op::ConstBuiltin(_))));
    }

    #[test]
    fn closure_captures_by_reference() {
        let p = compile_one(
            r#"
package main

func f() int {
	x := 1
	g := func() {
		x = 2
	}
	g()
	return x
}
"#,
        );
        // The closure must reference x via an upvalue store.
        let clo = p
            .funcs
            .iter()
            .find(|f| f.name == "f.func1")
            .expect("closure compiled");
        assert!(clo.code.iter().any(|op| matches!(op, Op::StoreUpval(0))));
        assert_eq!(p.closures.len(), 1);
        assert_eq!(p.closures[0].captures.len(), 1);
    }

    #[test]
    fn nested_closures_chain_upvalues() {
        let p = compile_one(
            r#"
package main

func f() {
	x := 1
	outer := func() {
		inner := func() {
			x = 3
		}
		inner()
	}
	outer()
}
"#,
        );
        // Inner closure captures through the outer one.
        assert_eq!(p.closures.len(), 2);
        let inner_spec = p
            .closures
            .iter()
            .find(|c| p.funcs[c.func as usize].name.contains("func1.func1"))
            .expect("inner closure spec");
        assert!(matches!(inner_spec.captures[0], UpvalSrc::Upval(0)));
    }

    #[test]
    fn short_var_shadows_in_inner_scope() {
        let p = compile_one(
            r#"
package main

func f() {
	err := work()
	if true {
		err := work()
		use(err)
	}
	use(err)
}

func work() int { return 1 }
func use(x int) {}
"#,
        );
        let f = &p.funcs[p.find_func("f").unwrap() as usize];
        // Two distinct AllocLocal ops for err (different slots).
        let allocs: Vec<u16> = f
            .code
            .iter()
            .filter_map(|op| match op {
                Op::AllocLocal { slot, name } if p.str(*name) == "err" => Some(*slot),
                _ => None,
            })
            .collect();
        assert_eq!(allocs.len(), 2);
        assert_ne!(allocs[0], allocs[1]);
    }

    #[test]
    fn methods_are_registered() {
        let p = compile_one(
            r#"
package main

type Counter struct {
	n int
}

func (c *Counter) Inc() {
	c.n = c.n + 1
}
"#,
        );
        let tid = p.pool.iter().position(|s| s == "Counter").unwrap() as u32;
        let mid = p.pool.iter().position(|s| s == "Inc").unwrap() as u32;
        assert!(p.method_of(tid, mid).is_some());
    }

    #[test]
    fn range_loop_binds_once_by_default() {
        let p = compile_one(
            r#"
package main

func f(nums []int) {
	for _, num := range nums {
		use(num)
	}
}

func use(x int) {}
"#,
        );
        let f = &p.funcs[p.find_func("f").unwrap() as usize];
        let allocs = f
            .code
            .iter()
            .filter(|op| matches!(op, Op::AllocLocal { name, .. } if p.str(*name) == "num"))
            .count();
        assert_eq!(allocs, 1, "per-loop binding allocates once");
    }

    #[test]
    fn range_loop_per_iteration_option() {
        let p = compile_sources(
            &[(
                "main.go".to_owned(),
                r#"
package main

func f(nums []int) {
	for _, num := range nums {
		use(num)
	}
}

func use(x int) {}
"#
                .to_owned(),
            )],
            &CompileOptions {
                loopvar_per_iteration: true,
            },
        )
        .unwrap();
        let f = &p.funcs[p.find_func("f").unwrap() as usize];
        // AllocLocal for num sits inside the loop body (after IterNext).
        let iter_next_pos = f
            .code
            .iter()
            .position(|op| matches!(op, Op::IterNext(_)))
            .unwrap();
        let alloc_pos = f
            .code
            .iter()
            .position(|op| matches!(op, Op::AllocLocal { name, .. } if p.str(*name) == "num"))
            .unwrap();
        assert!(alloc_pos > iter_next_pos, "per-iteration allocates in-loop");
    }

    #[test]
    fn select_compiles_case_specs() {
        let p = compile_one(
            r#"
package main

func f(ch chan int, done chan int) int {
	select {
	case v := <-ch:
		return v
	case done <- 1:
		return 0
	default:
		return -1
	}
}
"#,
        );
        assert_eq!(p.selects.len(), 1);
        let spec = &p.selects[0];
        assert_eq!(spec.cases.len(), 3);
        assert!(matches!(
            spec.cases[0],
            SelectCaseSpec::Recv {
                push_value: true,
                push_ok: false,
                ..
            }
        ));
        assert!(matches!(spec.cases[1], SelectCaseSpec::Send { .. }));
        assert!(matches!(spec.cases[2], SelectCaseSpec::Default { .. }));
    }

    #[test]
    fn global_vars_get_init_function() {
        let p = compile_one(
            "package main\n\nvar counter = 10\n\nfunc main() {\n\tcounter = counter + 1\n}\n",
        );
        assert!(p.init_func.is_some());
        assert_eq!(p.globals.len(), 1);
    }

    #[test]
    fn unknown_identifier_is_an_error() {
        let r = compile_sources(
            &[(
                "main.go".to_owned(),
                "package main\n\nfunc f() {\n\tuse(mystery)\n}\n".to_owned(),
            )],
            &CompileOptions::default(),
        );
        assert!(r.is_err());
    }

    #[test]
    fn struct_literal_fills_zero_fields() {
        let p = compile_one(
            r#"
package main

type Req struct {
	Limit int
	Name  string
	Tags  []string
}

func f() Req {
	return Req{Limit: 5}
}
"#,
        );
        let f = &p.funcs[p.find_func("f").unwrap() as usize];
        let zeros = f
            .code
            .iter()
            .filter(|op| matches!(op, Op::MakeZero(_)))
            .count();
        assert_eq!(zeros, 2, "Name and Tags zero-filled");
    }

    #[test]
    fn table_test_compiles() {
        compile_one(
            r#"
package main

import (
	"testing"
	"crypto/md5"
)

func TestRead(t *testing.T) {
	sampleHash := md5.New()
	tests := []struct {
		name string
		hash int
	}{
		{name: "one", hash: 1},
		{name: "two", hash: 2},
	}
	for _, tt := range tests {
		tt := tt
		t.Run(tt.name, func(t *testing.T) {
			t.Parallel()
			use(sampleHash, tt.hash)
		})
	}
}

func use(a interface{}, b int) {}
"#,
        );
    }

    #[test]
    fn waitgroup_program_compiles() {
        compile_one(
            r#"
package main

import "sync"

func SomeFunction() error {
	err := someWork()
	if err != nil {
		return err
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if err = task1(); err != nil {
			note()
		}
	}()
	if err = task2(); err != nil {
		note()
	}
	wg.Wait()
	return err
}

func someWork() error { return nil }
func task1() error    { return nil }
func task2() error    { return nil }
func note()           {}
"#,
        );
    }
}
