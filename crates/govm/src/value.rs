//! Runtime values and the heap.
//!
//! Every mutable storage location (local variable, struct field, slice
//! element, map entry, package-level variable) is a *cell* in a central
//! heap, identified by a dense `Addr`. Closures capture cells by
//! reference — exactly Go's capture-by-reference semantics — and the race
//! detector tracks happens-before per cell. Aggregate objects (slices,
//! maps, structs, channels, sync primitives) live in side arenas and are
//! referenced by index, so `Value` stays cheap to clone.

use racedet::VectorClock;
use std::collections::BTreeMap;
use std::collections::VecDeque;
use std::rc::Rc;

/// Address of a heap cell.
pub type Addr = u64;

/// Index into one of the heap's object arenas.
pub type ObjRef = usize;

/// Goroutine id (alias of the detector's thread id).
pub type Gid = usize;

/// A runtime value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `nil`.
    Nil,
    /// Boolean.
    Bool(bool),
    /// 64-bit integer (models all Go integer types).
    Int(i64),
    /// 64-bit float.
    Float(f64),
    /// Immutable string.
    Str(Rc<str>),
    /// An error value (created by `errors.New` / `fmt.Errorf`).
    Error(Rc<str>),
    /// Pointer to a heap cell.
    Ptr(Addr),
    /// Slice object reference.
    Slice(ObjRef),
    /// Map object reference.
    Map(ObjRef),
    /// Struct object reference.
    Struct(ObjRef),
    /// Channel object reference.
    Chan(ObjRef),
    /// Closure object reference.
    Closure(ObjRef),
    /// A named top-level function.
    Func(u32),
    /// `sync.Mutex` reference.
    Mutex(ObjRef),
    /// `sync.RWMutex` reference.
    RwMutex(ObjRef),
    /// `sync.WaitGroup` reference.
    WaitGroup(ObjRef),
    /// `sync.Map` reference.
    SyncMap(ObjRef),
    /// A multi-value bundle (function results).
    Tuple(Rc<Vec<Value>>),
    /// A builtin function.
    Builtin(u16),
    /// A method value: receiver bound, dispatched at call time.
    Method {
        /// The bound receiver.
        recv: Box<Value>,
        /// Method name (string-pool id).
        name: u32,
    },
    /// A live range iterator.
    Iter(ObjRef),
}

impl Value {
    /// Creates a string value.
    pub fn str(s: impl AsRef<str>) -> Value {
        Value::Str(Rc::from(s.as_ref()))
    }

    /// Creates an error value.
    pub fn error(s: impl AsRef<str>) -> Value {
        Value::Error(Rc::from(s.as_ref()))
    }

    /// Go truthiness for conditions (must be a bool).
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Integer view.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// Returns `true` for `nil` (including typed nil comparisons).
    pub fn is_nil(&self) -> bool {
        matches!(self, Value::Nil)
    }

    /// Equality per Go `==` (nil compares equal to nil only).
    pub fn go_eq(&self, other: &Value) -> bool {
        match (self, other) {
            (Value::Nil, Value::Nil) => true,
            (Value::Nil, _) | (_, Value::Nil) => false,
            (Value::Bool(a), Value::Bool(b)) => a == b,
            (Value::Int(a), Value::Int(b)) => a == b,
            (Value::Float(a), Value::Float(b)) => a == b,
            (Value::Int(a), Value::Float(b)) | (Value::Float(b), Value::Int(a)) => *a as f64 == *b,
            (Value::Str(a), Value::Str(b)) => a == b,
            (Value::Error(a), Value::Error(b)) => a == b,
            (Value::Ptr(a), Value::Ptr(b)) => a == b,
            (Value::Slice(a), Value::Slice(b)) => a == b,
            (Value::Map(a), Value::Map(b)) => a == b,
            (Value::Struct(a), Value::Struct(b)) => a == b,
            (Value::Chan(a), Value::Chan(b)) => a == b,
            (Value::Closure(a), Value::Closure(b)) => a == b,
            (Value::Func(a), Value::Func(b)) => a == b,
            (Value::Mutex(a), Value::Mutex(b)) => a == b,
            (Value::RwMutex(a), Value::RwMutex(b)) => a == b,
            (Value::WaitGroup(a), Value::WaitGroup(b)) => a == b,
            (Value::SyncMap(a), Value::SyncMap(b)) => a == b,
            _ => false,
        }
    }

    /// A short type name for diagnostics.
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Nil => "nil",
            Value::Bool(_) => "bool",
            Value::Int(_) => "int",
            Value::Float(_) => "float64",
            Value::Str(_) => "string",
            Value::Error(_) => "error",
            Value::Ptr(_) => "pointer",
            Value::Slice(_) => "slice",
            Value::Map(_) => "map",
            Value::Struct(_) => "struct",
            Value::Chan(_) => "chan",
            Value::Closure(_) | Value::Func(_) => "func",
            Value::Mutex(_) => "sync.Mutex",
            Value::RwMutex(_) => "sync.RWMutex",
            Value::WaitGroup(_) => "sync.WaitGroup",
            Value::SyncMap(_) => "sync.Map",
            Value::Tuple(_) => "tuple",
            Value::Builtin(_) => "builtin",
            Value::Method { .. } => "method",
            Value::Iter(_) => "iterator",
        }
    }

    /// Renders the value for `fmt`-style printing.
    pub fn render(&self, heap: &Heap) -> String {
        match self {
            Value::Nil => "<nil>".into(),
            Value::Bool(b) => b.to_string(),
            Value::Int(i) => i.to_string(),
            Value::Float(f) => format!("{f}"),
            Value::Str(s) => s.to_string(),
            Value::Error(e) => e.to_string(),
            Value::Ptr(a) => format!("&{}", heap.load_silent(*a).render(heap)),
            Value::Slice(r) => {
                let obj = &heap.slices[*r];
                let parts: Vec<String> = obj
                    .elems
                    .iter()
                    .map(|a| heap.load_silent(*a).render(heap))
                    .collect();
                format!("[{}]", parts.join(" "))
            }
            Value::Map(r) => {
                let obj = &heap.maps[*r];
                let parts: Vec<String> = obj
                    .entries
                    .iter()
                    .map(|(k, a)| format!("{}:{}", k.render(), heap.load_silent(*a).render(heap)))
                    .collect();
                format!("map[{}]", parts.join(" "))
            }
            Value::Struct(r) => {
                let obj = &heap.structs[*r];
                let parts: Vec<String> = obj
                    .fields
                    .iter()
                    .map(|(n, a)| format!("{n}:{}", heap.load_silent(*a).render(heap)))
                    .collect();
                format!("{}{{{}}}", obj.type_name, parts.join(" "))
            }
            Value::Chan(_) => "<chan>".into(),
            Value::Closure(_) | Value::Func(_) => "<func>".into(),
            Value::Mutex(_) => "<sync.Mutex>".into(),
            Value::RwMutex(_) => "<sync.RWMutex>".into(),
            Value::WaitGroup(_) => "<sync.WaitGroup>".into(),
            Value::SyncMap(_) => "<sync.Map>".into(),
            Value::Tuple(vs) => {
                let parts: Vec<String> = vs.iter().map(|v| v.render(heap)).collect();
                format!("({})", parts.join(", "))
            }
            Value::Builtin(_) | Value::Method { .. } => "<func>".into(),
            Value::Iter(_) => "<iter>".into(),
        }
    }
}

/// A key in a Go map (comparable values only).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub enum MapKey {
    /// Integer key.
    Int(i64),
    /// String key.
    Str(String),
    /// Bool key.
    Bool(bool),
}

impl MapKey {
    /// Converts a value to a map key, if comparable.
    pub fn from_value(v: &Value) -> Option<MapKey> {
        match v {
            Value::Int(i) => Some(MapKey::Int(*i)),
            Value::Str(s) => Some(MapKey::Str(s.to_string())),
            Value::Bool(b) => Some(MapKey::Bool(*b)),
            // Struct keys: identity by reference (sufficient for the corpus).
            Value::Struct(r) => Some(MapKey::Int(*r as i64)),
            Value::Ptr(a) => Some(MapKey::Int(*a as i64)),
            _ => None,
        }
    }

    /// Converts the key back to a value.
    pub fn to_value(&self) -> Value {
        match self {
            MapKey::Int(i) => Value::Int(*i),
            MapKey::Str(s) => Value::str(s),
            MapKey::Bool(b) => Value::Bool(*b),
        }
    }

    fn render(&self) -> String {
        match self {
            MapKey::Int(i) => i.to_string(),
            MapKey::Str(s) => s.clone(),
            MapKey::Bool(b) => b.to_string(),
        }
    }
}

/// A slice: a header (length/capacity, tracked as one racy cell) plus
/// element cells.
#[derive(Debug, Clone)]
pub struct SliceObj {
    /// Header cell address; reads of `len`/indices read it, `append`
    /// writes it. This models Go's slice-header races.
    pub header: Addr,
    /// Element cell addresses.
    pub elems: Vec<Addr>,
}

/// A map: a header cell (structural reads/writes race on it) plus an
/// entry cell per key, in deterministic key order.
#[derive(Debug, Clone)]
pub struct MapObj {
    /// Header cell address.
    pub header: Addr,
    /// Entries keyed in sorted order (deterministic iteration).
    pub entries: BTreeMap<MapKey, Addr>,
}

/// A struct instance: named type plus field cells in declaration order.
#[derive(Debug, Clone)]
pub struct StructObj {
    /// Declared type name (used for method dispatch).
    pub type_name: String,
    /// `(field name, cell)` pairs in declaration order.
    pub fields: Vec<(String, Addr)>,
}

impl StructObj {
    /// Looks up a field cell by name.
    pub fn field(&self, name: &str) -> Option<Addr> {
        self.fields.iter().find(|(n, _)| n == name).map(|(_, a)| *a)
    }
}

/// A message travelling through a channel: the value plus the sender's
/// clock snapshot (release half of the happens-before edge).
#[derive(Debug, Clone)]
pub struct ChanMsg {
    /// The sent value.
    pub value: Value,
    /// Sender's vector clock at the send.
    pub clock: VectorClock,
}

/// A channel object.
#[derive(Debug, Default)]
pub struct ChanObj {
    /// Buffer capacity (0 = unbuffered).
    pub cap: usize,
    /// Buffered messages.
    pub queue: VecDeque<ChanMsg>,
    /// Whether `close` was called.
    pub closed: bool,
    /// Clock of the closing goroutine (close happens-before zero receive).
    pub close_clock: Option<VectorClock>,
    /// Receiver clocks for the "k-th receive happens-before (k+C)-th send
    /// completes" rule.
    pub slot_clocks: VecDeque<VectorClock>,
    /// Total sends started (for the slot rule).
    pub sends: usize,
    /// Goroutines blocked receiving (plain or select-parked).
    pub recv_waiters: Vec<Gid>,
    /// Goroutines blocked sending (plain or select-parked; the pending
    /// value stays on the sender's stack or in its parked select state).
    pub send_waiters: Vec<Gid>,
    /// If set, the scheduler closes this channel at the given step
    /// (models `time.After` / context deadlines).
    pub timer_fire_at: Option<u64>,
}

/// A closure: compiled function plus captured cells.
#[derive(Debug, Clone)]
pub struct ClosureObj {
    /// Compiled function id.
    pub func: u32,
    /// Captured cell addresses, in the function's upvalue order.
    pub upvals: Vec<Addr>,
}

/// `sync.Mutex` state.
#[derive(Debug, Default)]
pub struct MutexObj {
    /// Whether the mutex is held.
    pub locked: bool,
    /// Goroutines blocked in `Lock`.
    pub waiters: Vec<Gid>,
}

/// `sync.RWMutex` state.
#[derive(Debug, Default)]
pub struct RwMutexObj {
    /// Whether a writer holds the lock.
    pub write_locked: bool,
    /// Number of readers holding the lock.
    pub readers: usize,
    /// Goroutines blocked in `Lock`.
    pub write_waiters: Vec<Gid>,
    /// Goroutines blocked in `RLock`.
    pub read_waiters: Vec<Gid>,
}

/// `sync.WaitGroup` state.
#[derive(Debug, Default)]
pub struct WaitGroupObj {
    /// Current counter.
    pub counter: i64,
    /// Goroutines blocked in `Wait`.
    pub waiters: Vec<Gid>,
}

/// `sync.Map` state: thread-safe map (entries are not race-tracked; every
/// operation is a sequentially-consistent sync event on the map).
#[derive(Debug, Default)]
pub struct SyncMapObj {
    /// Entries in deterministic order.
    pub entries: BTreeMap<MapKey, Value>,
}

/// Range-iteration state.
#[derive(Debug, Clone)]
pub enum IterObj {
    /// Iterating a slice: object ref, snapshot length, next index.
    Slice {
        /// Slice object.
        obj: ObjRef,
        /// Length snapshot at loop entry.
        len: usize,
        /// Next index.
        idx: usize,
    },
    /// Iterating a map: object ref plus a key snapshot.
    Map {
        /// Map object.
        obj: ObjRef,
        /// Keys snapshot at loop entry (deterministic order).
        keys: Vec<MapKey>,
        /// Next key index.
        idx: usize,
    },
}

/// The heap: cells plus object arenas.
#[derive(Debug, Default)]
pub struct Heap {
    /// Cell values.
    pub cells: Vec<Value>,
    /// Per-cell variable-name id (for race reports).
    pub cell_names: Vec<u32>,
    /// Slice arena.
    pub slices: Vec<SliceObj>,
    /// Map arena.
    pub maps: Vec<MapObj>,
    /// Struct arena.
    pub structs: Vec<StructObj>,
    /// Channel arena.
    pub chans: Vec<ChanObj>,
    /// Closure arena.
    pub closures: Vec<ClosureObj>,
    /// Mutex arena.
    pub mutexes: Vec<MutexObj>,
    /// RWMutex arena.
    pub rwmutexes: Vec<RwMutexObj>,
    /// WaitGroup arena.
    pub waitgroups: Vec<WaitGroupObj>,
    /// sync.Map arena.
    pub syncmaps: Vec<SyncMapObj>,
    /// Iterator arena.
    pub iters: Vec<IterObj>,
}

impl Heap {
    /// Creates an empty heap.
    pub fn new() -> Self {
        Heap::default()
    }

    /// Allocates a fresh cell named `name` holding `v`.
    pub fn alloc_cell(&mut self, v: Value, name: u32) -> Addr {
        let a = self.cells.len() as Addr;
        self.cells.push(v);
        self.cell_names.push(name);
        a
    }

    /// Reads a cell without any race bookkeeping (renderer/debug only).
    pub fn load_silent(&self, a: Addr) -> &Value {
        &self.cells[a as usize]
    }

    /// Writes a cell without race bookkeeping (initialisation only).
    pub fn store_silent(&mut self, a: Addr, v: Value) {
        self.cells[a as usize] = v;
    }

    /// Name id of a cell.
    pub fn cell_name(&self, a: Addr) -> u32 {
        self.cell_names[a as usize]
    }

    /// Allocates a slice of `n` zero cells.
    pub fn alloc_slice(&mut self, elems: Vec<Value>, name: u32) -> Value {
        let header = self.alloc_cell(Value::Int(elems.len() as i64), name);
        let elems = elems
            .into_iter()
            .map(|v| self.alloc_cell(v, name))
            .collect();
        self.slices.push(SliceObj { header, elems });
        Value::Slice(self.slices.len() - 1)
    }

    /// Allocates an empty map.
    pub fn alloc_map(&mut self, name: u32) -> Value {
        let header = self.alloc_cell(Value::Int(0), name);
        self.maps.push(MapObj {
            header,
            entries: BTreeMap::new(),
        });
        Value::Map(self.maps.len() - 1)
    }

    /// Allocates a struct with the given fields (all field cells named by
    /// the single `name` id; prefer [`Heap::alloc_struct_named`]).
    pub fn alloc_struct(
        &mut self,
        type_name: impl Into<String>,
        fields: Vec<(String, Value)>,
        name: u32,
    ) -> Value {
        let fields = fields
            .into_iter()
            .map(|(n, v)| {
                let a = self.alloc_cell(v, name);
                (n, a)
            })
            .collect();
        self.structs.push(StructObj {
            type_name: type_name.into(),
            fields,
        });
        Value::Struct(self.structs.len() - 1)
    }

    /// Allocates a struct whose field cells carry per-field name ids, so
    /// race reports name the field (`Limit`, `lockMap`) rather than the
    /// struct type.
    pub fn alloc_struct_named(
        &mut self,
        type_name: impl Into<String>,
        fields: Vec<(String, Value, u32)>,
    ) -> Value {
        let fields = fields
            .into_iter()
            .map(|(n, v, id)| {
                let a = self.alloc_cell(v, id);
                (n, a)
            })
            .collect();
        self.structs.push(StructObj {
            type_name: type_name.into(),
            fields,
        });
        Value::Struct(self.structs.len() - 1)
    }

    /// Allocates a channel of capacity `cap`.
    pub fn alloc_chan(&mut self, cap: usize) -> Value {
        self.chans.push(ChanObj {
            cap,
            ..ChanObj::default()
        });
        Value::Chan(self.chans.len() - 1)
    }

    /// Allocates a mutex.
    pub fn alloc_mutex(&mut self) -> Value {
        self.mutexes.push(MutexObj::default());
        Value::Mutex(self.mutexes.len() - 1)
    }

    /// Allocates an RWMutex.
    pub fn alloc_rwmutex(&mut self) -> Value {
        self.rwmutexes.push(RwMutexObj::default());
        Value::RwMutex(self.rwmutexes.len() - 1)
    }

    /// Allocates a wait group.
    pub fn alloc_waitgroup(&mut self) -> Value {
        self.waitgroups.push(WaitGroupObj::default());
        Value::WaitGroup(self.waitgroups.len() - 1)
    }

    /// Allocates a sync.Map.
    pub fn alloc_syncmap(&mut self) -> Value {
        self.syncmaps.push(SyncMapObj::default());
        Value::SyncMap(self.syncmaps.len() - 1)
    }

    /// Allocates a closure.
    pub fn alloc_closure(&mut self, func: u32, upvals: Vec<Addr>) -> Value {
        self.closures.push(ClosureObj { func, upvals });
        Value::Closure(self.closures.len() - 1)
    }

    /// Allocates an iterator.
    pub fn alloc_iter(&mut self, it: IterObj) -> Value {
        self.iters.push(it);
        Value::Iter(self.iters.len() - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cells_are_dense_and_named() {
        let mut h = Heap::new();
        let a = h.alloc_cell(Value::Int(1), 7);
        let b = h.alloc_cell(Value::str("x"), 8);
        assert_eq!(a, 0);
        assert_eq!(b, 1);
        assert_eq!(h.cell_name(a), 7);
        assert_eq!(h.load_silent(b), &Value::str("x"));
    }

    #[test]
    fn go_eq_semantics() {
        assert!(Value::Nil.go_eq(&Value::Nil));
        assert!(!Value::Int(0).go_eq(&Value::Nil));
        assert!(Value::Int(3).go_eq(&Value::Int(3)));
        assert!(Value::str("a").go_eq(&Value::str("a")));
        assert!(!Value::str("a").go_eq(&Value::str("b")));
        assert!(Value::Int(2).go_eq(&Value::Float(2.0)));
        assert!(!Value::Bool(true).go_eq(&Value::Int(1)));
    }

    #[test]
    fn map_keys_are_ordered_deterministically() {
        let mut m = BTreeMap::new();
        m.insert(MapKey::Str("b".into()), 1);
        m.insert(MapKey::Str("a".into()), 2);
        let keys: Vec<_> = m.keys().cloned().collect();
        assert_eq!(keys, vec![MapKey::Str("a".into()), MapKey::Str("b".into())]);
    }

    #[test]
    fn struct_field_lookup() {
        let mut h = Heap::new();
        let v = h.alloc_struct(
            "Point",
            vec![("x".into(), Value::Int(1)), ("y".into(), Value::Int(2))],
            0,
        );
        match v {
            Value::Struct(r) => {
                let s = &h.structs[r];
                assert!(s.field("x").is_some());
                assert!(s.field("z").is_none());
            }
            other => panic!("expected struct, got {other:?}"),
        }
    }

    #[test]
    fn render_is_total() {
        let mut h = Heap::new();
        let s = h.alloc_slice(vec![Value::Int(1), Value::Int(2)], 0);
        assert_eq!(s.render(&h), "[1 2]");
        let m = h.alloc_map(0);
        assert_eq!(m.render(&h), "map[]");
        assert_eq!(Value::Nil.render(&h), "<nil>");
    }

    #[test]
    fn map_key_conversion_roundtrip() {
        for v in [Value::Int(5), Value::str("k"), Value::Bool(true)] {
            let k = MapKey::from_value(&v).unwrap();
            assert!(k.to_value().go_eq(&v));
        }
        assert!(MapKey::from_value(&Value::Nil).is_none());
    }
}
