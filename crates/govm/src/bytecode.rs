//! Bytecode: instruction set, compiled functions, and program container.
//!
//! The compiler lowers `golite` ASTs to a compact stack machine. Every
//! mutable variable lives in a heap cell (see [`crate::value`]), so the
//! instruction set distinguishes *allocating* a local (binding a fresh
//! cell to a frame slot) from loading/storing through the slot. Closures
//! capture cells, matching Go's capture-by-reference semantics.

use serde::{Deserialize, Serialize};

/// Where a closure capture comes from in the enclosing function.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum UpvalSrc {
    /// Capture the cell bound to an enclosing local slot.
    Local(u16),
    /// Re-capture one of the enclosing function's own upvalues.
    Upval(u16),
}

/// Side-table entry describing a closure creation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClosureSpec {
    /// The compiled function.
    pub func: u32,
    /// Captures in upvalue order.
    pub captures: Vec<UpvalSrc>,
}

/// Side-table entry describing a struct literal.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StructLitSpec {
    /// Struct type name (string-pool id).
    pub type_name: u32,
    /// Field names (string-pool ids) in stack order.
    pub fields: Vec<u32>,
}

/// One case of a compiled `select`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum SelectCaseSpec {
    /// `case ch <- v` — stack carries `[chan, value]` for this case.
    Send {
        /// pc of the case body.
        body: u32,
    },
    /// `case x := <-ch` — stack carries `[chan]`.
    Recv {
        /// pc of the case body.
        body: u32,
        /// Push the received value at the body entry.
        push_value: bool,
        /// Also push the `ok` flag.
        push_ok: bool,
    },
    /// `default:`.
    Default {
        /// pc of the case body.
        body: u32,
    },
}

/// Side-table entry for a `select` statement.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SelectSpec {
    /// Cases in source order.
    pub cases: Vec<SelectCaseSpec>,
}

/// A zero-value type hint, used by `MakeZero` and struct field defaults.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TypeHint {
    /// Integer types.
    Int,
    /// Float types.
    Float,
    /// `bool`.
    Bool,
    /// `string`.
    Str,
    /// `error` (zero value `nil`).
    Error,
    /// Slice types (zero value `nil`).
    Slice,
    /// Map types (zero value `nil`).
    Map,
    /// Channel types (zero value `nil`).
    Chan,
    /// Named struct type (string-pool id of the name).
    Struct(u32),
    /// Pointer types (zero value `nil`).
    Ptr,
    /// Function types (zero value `nil`).
    Func,
    /// `sync.Mutex` (zero value is a ready-to-use mutex).
    Mutex,
    /// `sync.RWMutex`.
    RwMutex,
    /// `sync.WaitGroup`.
    WaitGroup,
    /// `sync.Map`.
    SyncMap,
    /// `interface{}` / unknown named types (zero value `nil`).
    Unknown,
}

/// A bytecode instruction.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Op {
    /// Push an integer constant.
    ConstInt(i64),
    /// Push a float constant.
    ConstFloat(f64),
    /// Push a string from the pool.
    ConstStr(u32),
    /// Push a boolean.
    ConstBool(bool),
    /// Push `nil`.
    ConstNil,
    /// Push a reference to a named top-level function.
    ConstFunc(u32),
    /// Push a builtin function (id from [`crate::natives`]).
    ConstBuiltin(u16),
    /// Pop and discard.
    Pop,
    /// Duplicate the top of stack.
    Dup,
    /// Duplicate the top two stack values (`a b → a b a b`).
    Dup2,

    /// Bind `slot` to a freshly allocated cell named `name`, initialised
    /// with the popped value.
    AllocLocal {
        /// Frame slot.
        slot: u16,
        /// Variable name (string-pool id), for race reports.
        name: u32,
    },
    /// Push the value of the cell bound to `slot` (race-tracked read).
    LoadLocal(u16),
    /// Pop into the cell bound to `slot` (race-tracked write).
    StoreLocal(u16),
    /// Push a pointer to the cell bound to `slot`.
    RefLocal(u16),
    /// Push the value of captured cell `idx` (race-tracked read).
    LoadUpval(u16),
    /// Pop into captured cell `idx` (race-tracked write).
    StoreUpval(u16),
    /// Push a pointer to captured cell `idx`.
    RefUpval(u16),
    /// Push the value of global `idx` (race-tracked read).
    LoadGlobal(u16),
    /// Pop into global `idx` (race-tracked write).
    StoreGlobal(u16),
    /// Push a pointer to global `idx`.
    RefGlobal(u16),
    /// Pop a pointer, push the pointee (race-tracked read).
    LoadPtr,
    /// Pop value then pointer, store through it (race-tracked write).
    StorePtr,

    /// Pop `n` values, build a slice literal.
    MakeSliceLit {
        /// Element count.
        n: u16,
        /// Name for the backing cells.
        name: u32,
    },
    /// Pop `2n` values (k, v pairs), build a map literal.
    MakeMapLit {
        /// Entry count.
        n: u16,
        /// Name for the backing cells.
        name: u32,
    },
    /// Pop field values per the spec, build a struct.
    MakeStructLit(u32),
    /// Push the zero value of a type hint (side-table id).
    MakeZero(u32),
    /// Pop a length, make a zeroed slice (element hint id operand).
    MakeSliceN(u32),
    /// Allocate a fresh cell holding the zero value of the hint; push a
    /// pointer to it (`new(T)`).
    NewPtr(u32),
    /// Make a channel; pops the capacity if `has_cap`.
    MakeChan {
        /// Whether a capacity operand is on the stack.
        has_cap: bool,
    },
    /// Create a closure from a side-table spec.
    MakeClosure(u32),

    /// Pop object, push field value (race-tracked read of the field cell).
    GetField(u32),
    /// Pop value then object, write the field (race-tracked write).
    SetField(u32),
    /// Pop object, push pointer to the field cell.
    RefField(u32),
    /// Bind a method: pop receiver, push a bound callee.
    BindMethod(u32),

    /// Pop index/key then container, push element.
    Index {
        /// Also push the `ok` flag (map lookups).
        comma_ok: bool,
    },
    /// Pop value, index/key, container; write element.
    SetIndex,
    /// Pop index/key then container; push a pointer to the element cell.
    RefIndex,
    /// Pop lo/hi per flags then container; push sub-slice.
    SliceOp {
        /// Low bound present.
        has_lo: bool,
        /// High bound present.
        has_hi: bool,
    },
    /// Pop `n` appended values then the slice; push the (possibly new)
    /// slice.
    Append {
        /// Number of appended values.
        n: u16,
    },
    /// Pop a source slice then the destination slice; append all elements
    /// (`append(dst, src...)`).
    AppendSlice,
    /// Pop `n` values then `n` pointers; store value `i` through pointer
    /// `i` (multi-assignment).
    StoreMulti(u8),
    /// Pop container, push its length.
    Len,
    /// Pop container, push its capacity.
    Cap,
    /// Pop key then map, delete the entry.
    DeleteKey,

    /// Pop value then channel, send (may block).
    Send,
    /// Pop channel, receive (may block).
    Recv {
        /// Also push the `ok` flag.
        comma_ok: bool,
    },
    /// Pop channel, close it.
    CloseChan,

    /// Pop `argc` args then the callee; push the single (possibly tuple)
    /// result.
    Call {
        /// Argument count.
        argc: u8,
    },
    /// Pop `argc` args then the callee; spawn a goroutine.
    Go {
        /// Argument count.
        argc: u8,
    },
    /// Pop `argc` args then the callee; record a deferred call.
    DeferCall {
        /// Argument count.
        argc: u8,
    },
    /// Pop `n` values and return (tuple-wrapped if `n != 1`).
    Return {
        /// Returned value count.
        n: u8,
    },
    /// Expand a tuple of exactly `n` values onto the stack (no-op for
    /// `n == 1` on a non-tuple).
    Expand {
        /// Expected value count.
        n: u8,
    },

    /// Unconditional relative jump.
    Jump(i32),
    /// Pop a bool; jump if false.
    JumpIfFalse(i32),
    /// Pop a bool; jump if true.
    JumpIfTrue(i32),

    /// Arithmetic negation.
    Neg,
    /// Logical not.
    Not,
    /// Bitwise complement.
    BitNot,
    /// `+` (numbers and strings).
    Add,
    /// `-`.
    Sub,
    /// `*`.
    Mul,
    /// `/`.
    Div,
    /// `%`.
    Rem,
    /// `==`.
    Eq,
    /// `!=`.
    Ne,
    /// `<`.
    Lt,
    /// `<=`.
    Le,
    /// `>`.
    Gt,
    /// `>=`.
    Ge,
    /// `&`.
    BitAnd,
    /// `|`.
    BitOr,
    /// `^`.
    BitXor,
    /// `<<`.
    Shl,
    /// `>>`.
    Shr,

    /// Initialise an iterator: pop container, push iterator.
    IterInit,
    /// Advance the iterator at top of stack: push `key, value` or jump.
    IterNext(i32),

    /// Execute a `select` (side-table id); case channels/values are on
    /// the stack in case order.
    Select(u32),

    /// Pop a message and panic.
    Panic,
    /// No operation.
    Nop,
}

/// A compiled function.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CompiledFunc {
    /// Function name (methods are `Type.Method`).
    pub name: String,
    /// Source file (index into [`Program::files`]).
    pub file: u32,
    /// Number of parameters (including the receiver for methods).
    pub params: u8,
    /// Parameter names (string-pool ids), for race reports on param cells.
    pub param_names: Vec<u32>,
    /// Number of frame slots.
    pub n_slots: u16,
    /// Number of declared results (0 pushes `nil` on fallthrough return).
    pub results: u8,
    /// Instructions.
    pub code: Vec<Op>,
    /// Source line per instruction (parallel to `code`).
    pub lines: Vec<u32>,
}

/// A named struct type (for zero values and positional literals).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StructTypeDef {
    /// Type name (string-pool id).
    pub name: u32,
    /// `(field name id, zero hint id)` in declaration order.
    pub fields: Vec<(u32, u32)>,
}

/// A package-level variable.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GlobalDef {
    /// Variable name (string-pool id).
    pub name: u32,
    /// Zero hint (side-table id) used before the initialiser runs.
    pub hint: u32,
}

/// A compiled program (one package, possibly many files).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Program {
    /// String pool (identifiers, literals, type names).
    pub pool: Vec<String>,
    /// Source file names.
    pub files: Vec<String>,
    /// Compiled functions; `funcs[0]` is the synthesized global
    /// initialiser when present.
    pub funcs: Vec<CompiledFunc>,
    /// `(type name id, method name id) → func` table.
    pub methods: Vec<(u32, u32, u32)>,
    /// Struct type registry.
    pub types: Vec<StructTypeDef>,
    /// Package-level variables.
    pub globals: Vec<GlobalDef>,
    /// Closure side table.
    pub closures: Vec<ClosureSpec>,
    /// Struct literal side table.
    pub struct_lits: Vec<StructLitSpec>,
    /// Select side table.
    pub selects: Vec<SelectSpec>,
    /// Type hint side table.
    pub hints: Vec<TypeHint>,
    /// Index of the global initialiser function, if any.
    pub init_func: Option<u32>,
}

impl Program {
    /// Finds a function id by name.
    pub fn find_func(&self, name: &str) -> Option<u32> {
        self.funcs
            .iter()
            .position(|f| f.name == name)
            .map(|i| i as u32)
    }

    /// Resolves a pooled string.
    pub fn str(&self, id: u32) -> &str {
        &self.pool[id as usize]
    }

    /// All function names that look like tests (`TestXxx(t *testing.T)`).
    pub fn test_funcs(&self) -> Vec<String> {
        self.funcs
            .iter()
            .filter(|f| f.name.starts_with("Test") && !f.name.contains('.') && f.params == 1)
            .map(|f| f.name.clone())
            .collect()
    }

    /// Looks up a method on a struct type.
    pub fn method_of(&self, type_name: u32, method: u32) -> Option<u32> {
        self.methods
            .iter()
            .find(|(t, m, _)| *t == type_name && *m == method)
            .map(|(_, _, f)| *f)
    }

    /// Looks up a struct type definition by name id.
    pub fn struct_type(&self, name: u32) -> Option<&StructTypeDef> {
        self.types.iter().find(|t| t.name == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn program_lookup_helpers() {
        let mut p = Program::default();
        p.pool.push("T".into());
        p.pool.push("Get".into());
        p.funcs.push(CompiledFunc {
            name: "TestFoo".into(),
            file: 0,
            params: 1,
            param_names: vec![],
            n_slots: 1,
            results: 0,
            code: vec![Op::ConstNil, Op::Return { n: 1 }],
            lines: vec![1, 1],
        });
        p.funcs.push(CompiledFunc {
            name: "T.Get".into(),
            file: 0,
            params: 1,
            param_names: vec![],
            n_slots: 1,
            results: 1,
            code: vec![],
            lines: vec![],
        });
        p.methods.push((0, 1, 1));
        assert_eq!(p.find_func("TestFoo"), Some(0));
        assert_eq!(p.find_func("Missing"), None);
        assert_eq!(p.test_funcs(), vec!["TestFoo"]);
        assert_eq!(p.method_of(0, 1), Some(1));
        assert_eq!(p.method_of(1, 1), None);
        assert_eq!(p.str(0), "T");
    }
}
