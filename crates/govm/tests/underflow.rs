//! Operand-stack underflow is a fatal, reported VM error — never a
//! silent `Nil`.
//!
//! The compiler never emits an unbalanced `Pop`, so the only way to hit
//! this is corrupted or hand-mutated bytecode; the VM must fail loudly
//! rather than compute on phantom values.

use govm::{compile_sources, CompileOptions, Op, Tier, Vm, VmOptions};

fn underflowing_program() -> govm::Program {
    let src = r#"package p

func Main() int {
	x := 1
	return x + 1
}
"#;
    let mut prog = compile_sources(
        &[("m.go".into(), src.to_string())],
        &CompileOptions::default(),
    )
    .expect("compile");
    // Corrupt Main: a `Pop` before anything has been pushed.
    let f = prog.find_func("Main").expect("Main") as usize;
    prog.funcs[f].code.insert(0, Op::Pop);
    prog
}

#[test]
fn stack_underflow_is_fatal() {
    for tier in [Tier::Stack, Tier::Reg] {
        let prog = underflowing_program();
        let mut vm = Vm::new(
            &prog,
            VmOptions {
                seed: 7,
                tier,
                ..VmOptions::default()
            },
        );
        let r = vm.run("Main", vec![]);
        let err = r
            .error
            .unwrap_or_else(|| panic!("{tier:?}: underflow must abort the run"));
        let msg = format!("{err:?}");
        assert!(
            msg.contains("operand stack underflow"),
            "{tier:?}: wrong error: {msg}"
        );
    }
}
