//! Differential property tests: the register tier is bit-identical to
//! the stack tier.
//!
//! The stack `Op` tier is the golden reference; the lowered register
//! tier may only be *physically* faster. Every observable of a run —
//! step count, schedule signature, hot-path counters, race reports and
//! their stable bug hashes, test failures, output — must match bit for
//! bit, on randomly generated `golite` programs, under every seed.
//! `fused_ops` is the one deliberate exception: it is the physical
//! evidence the register tier engaged, and must be zero on the stack
//! tier and positive on fusible programs under the register tier.

use govm::{
    compile_sources, run_test_many, CompileOptions, Program, RunResult, TestConfig, Tier, Vm,
    VmOptions,
};
use proptest::prelude::*;

/// Mutex-guarded counter: race-free, heavy native-call traffic
/// (`Lock`/`Unlock` fuse into `NativeCallStmt`, the add into
/// `AddStore`).
fn locked(workers: u8, iters: u8) -> String {
    format!(
        r#"package p

import "sync"

func Main() int {{
	total := 0
	var mu sync.Mutex
	var wg sync.WaitGroup
	for i := 0; i < {workers}; i++ {{
		wg.Add(1)
		go func(n int) {{
			defer wg.Done()
			for j := 0; j < {iters}; j++ {{
				mu.Lock()
				total = total + n
				mu.Unlock()
			}}
		}}(i)
	}}
	wg.Wait()
	return total
}}
"#
    )
}

/// Unsynchronised counter: races on `total`, exercising the detector's
/// report path (and its stable bug hashes) under both tiers.
fn racy(workers: u8, iters: u8) -> String {
    format!(
        r#"package p

import "sync"

func Main() int {{
	total := 0
	var wg sync.WaitGroup
	for i := 0; i < {workers}; i++ {{
		wg.Add(1)
		go func() {{
			defer wg.Done()
			for j := 0; j < {iters}; j++ {{
				total = total + 1
			}}
		}}()
	}}
	wg.Wait()
	return total
}}
"#
    )
}

/// RWMutex mix: concurrent readers push the detector through the
/// read-shared state and its per-reader sync-epoch records — the cache
/// the register tier generalised.
fn rw_mix(readers: u8, iters: u8) -> String {
    format!(
        r#"package p

import "sync"

func Main() int {{
	var mu sync.RWMutex
	var wg sync.WaitGroup
	total := 0
	value := 0
	wg.Add(1)
	go func() {{
		defer wg.Done()
		for j := 0; j < {iters}; j++ {{
			mu.Lock()
			value = value + 1
			mu.Unlock()
		}}
	}}()
	for i := 0; i < {readers}; i++ {{
		wg.Add(1)
		go func() {{
			defer wg.Done()
			seen := 0
			for j := 0; j < {iters}; j++ {{
				mu.RLock()
				seen = seen + value
				mu.RUnlock()
			}}
			mu.Lock()
			total = total + seen
			mu.Unlock()
		}}()
	}}
	wg.Wait()
	return total + value
}}
"#
    )
}

fn compiled(src: String) -> Program {
    compile_sources(&[("m.go".into(), src)], &CompileOptions::default()).unwrap()
}

fn run_tier(prog: &Program, seed: u64, tier: Tier) -> RunResult {
    let mut vm = Vm::new(
        prog,
        VmOptions {
            seed,
            tier,
            ..VmOptions::default()
        },
    );
    vm.run("Main", vec![])
}

/// Asserts every logical observable of `a` (stack) and `b` (register)
/// matches bit for bit.
fn assert_identical(a: &RunResult, b: &RunResult, ctx: &str) {
    assert_eq!(a.steps, b.steps, "{ctx}: step counts diverged");
    assert_eq!(
        a.schedule_sig, b.schedule_sig,
        "{ctx}: schedule signatures diverged"
    );
    assert_eq!(a.sched_points, b.sched_points, "{ctx}: sched points");
    assert_eq!(a.counters, b.counters, "{ctx}: hot-path counters diverged");
    assert_eq!(a.races, b.races, "{ctx}: race reports diverged");
    let ah: Vec<String> = a.races.iter().map(|r| r.bug_hash()).collect();
    let bh: Vec<String> = b.races.iter().map(|r| r.bug_hash()).collect();
    assert_eq!(ah, bh, "{ctx}: bug hashes diverged");
    assert_eq!(
        format!("{:?}", a.error),
        format!("{:?}", b.error),
        "{ctx}: errors diverged"
    );
    assert_eq!(a.test_failures, b.test_failures, "{ctx}: test failures");
    assert_eq!(a.output, b.output, "{ctx}: captured output diverged");
    assert_eq!(a.fused_ops, 0, "{ctx}: stack tier must never fuse");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn locked_counter_identical_across_tiers(seed in 0u64..5000, w in 1u8..5, k in 1u8..8) {
        let prog = compiled(locked(w, k));
        let a = run_tier(&prog, seed, Tier::Stack);
        let b = run_tier(&prog, seed, Tier::Reg);
        assert_identical(&a, &b, "locked counter");
        // The guarded counter body is exactly the fusible shape; the
        // register tier must actually have engaged.
        prop_assert!(b.fused_ops > 0, "register tier executed no fused ops");
    }

    #[test]
    fn racy_counter_identical_across_tiers(seed in 0u64..5000, w in 2u8..5, k in 1u8..8) {
        let prog = compiled(racy(w, k));
        let a = run_tier(&prog, seed, Tier::Stack);
        let b = run_tier(&prog, seed, Tier::Reg);
        prop_assert!(a.steps > 0, "run did no work");
        assert_identical(&a, &b, "racy counter");
    }

    #[test]
    fn rwmutex_mix_identical_across_tiers(seed in 0u64..5000, r in 1u8..5, k in 1u8..8) {
        let prog = compiled(rw_mix(r, k));
        let a = run_tier(&prog, seed, Tier::Stack);
        let b = run_tier(&prog, seed, Tier::Reg);
        prop_assert!(a.steps > 0, "run did no work");
        assert_identical(&a, &b, "rwmutex mix");
    }
}

/// Campaign-level identity: whole seeded campaigns (dedup bookkeeping,
/// counter aggregation, early-stop reasons) agree across tiers.
#[test]
fn campaigns_identical_across_tiers() {
    for (label, src) in [
        ("locked", locked(3, 6)),
        ("racy", racy(3, 4)),
        ("rw-mix", rw_mix(3, 5)),
    ] {
        // Campaigns drive test functions; wrap `Main` in one.
        let src = src.replace("import \"sync\"", "import (\n\t\"sync\"\n\t\"testing\"\n)")
            + "\nfunc TestMain(t *testing.T) {\n\tMain()\n}\n";
        let prog = compiled(src);
        let outcome = |tier: Tier| {
            run_test_many(
                &prog,
                "TestMain",
                &TestConfig {
                    runs: 12,
                    seed: 0xD1FF,
                    stop_on_race: false,
                    vm: VmOptions {
                        tier,
                        ..VmOptions::default()
                    },
                    ..TestConfig::default()
                },
            )
        };
        let a = outcome(Tier::Stack);
        let b = outcome(Tier::Reg);
        assert!(a.steps > 0, "{label}: campaign did no work");
        assert_eq!(a.steps, b.steps, "{label}: campaign steps");
        assert_eq!(a.counters, b.counters, "{label}: campaign counters");
        assert_eq!(a.races, b.races, "{label}: campaign races");
        assert_eq!(
            a.distinct_schedules, b.distinct_schedules,
            "{label}: schedule dedup diverged"
        );
        assert_eq!(
            a.duplicate_schedules, b.duplicate_schedules,
            "{label}: duplicate bookkeeping diverged"
        );
        assert_eq!(a.test_failures, b.test_failures, "{label}: failures");
        assert_eq!(
            format!("{:?}", a.stop),
            format!("{:?}", b.stop),
            "{label}: stop reason diverged"
        );
    }
}
