//! Property tests: scheduler determinism and generated-program safety.

use govm::{compile_sources, CompileOptions, Vm, VmOptions};
use proptest::prelude::*;

fn program(counter_writes: u8, workers: u8) -> String {
    format!(
        r#"package p

import "sync"

func Main() int {{
	total := 0
	var mu sync.Mutex
	var wg sync.WaitGroup
	for i := 0; i < {workers}; i++ {{
		wg.Add(1)
		go func(n int) {{
			defer wg.Done()
			for j := 0; j < {counter_writes}; j++ {{
				mu.Lock()
				total = total + n
				mu.Unlock()
			}}
		}}(i)
	}}
	wg.Wait()
	return total
}}
"#
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]
    #[test]
    fn same_seed_same_execution(seed in 0u64..5000, w in 1u8..4, k in 1u8..4) {
        let src = program(k, w);
        let prog = compile_sources(
            &[("m.go".into(), src)],
            &CompileOptions::default(),
        ).unwrap();
        let run = |s| {
            let mut vm = Vm::new(&prog, VmOptions { seed: s, ..VmOptions::default() });
            let r = vm.run("Main", vec![]);
            (r.steps, r.races.len(), r.error.clone(), r.output)
        };
        prop_assert_eq!(run(seed), run(seed), "identical seeds must replay identically");
    }

    #[test]
    fn locked_counter_is_race_free_and_correct(seed in 0u64..2000, w in 1u8..5, k in 1u8..5) {
        let src = program(k, w);
        let prog = compile_sources(
            &[("m.go".into(), src)],
            &CompileOptions::default(),
        ).unwrap();
        let mut vm = Vm::new(&prog, VmOptions { seed, ..VmOptions::default() });
        let r = vm.run("Main", vec![]);
        prop_assert!(r.races.is_empty(), "locked counter raced");
        prop_assert!(r.error.is_none(), "error: {:?}", r.error);
    }
}
