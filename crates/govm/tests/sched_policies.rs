//! Scheduler-refactor contract tests.
//!
//! Three families:
//!
//! 1. **Pre-refactor goldens** — per-seed `run_test` results and
//!    `TestConfig::legacy` campaign aggregates captured from the VM
//!    *before* the `govm::sched` refactor. The random policy with the
//!    same seeds must stay bit-identical to them forever.
//! 2. **Determinism properties** — the same `(policy, seed)` always
//!    yields the identical race set, step count and schedule signature.
//! 3. **Seed-stream / dedup / early-exit semantics** — the splitmix
//!    regression fix and the schedule-saturation exits.

use govm::sched::{SeedStream, SIGNATURE_SEED};
use govm::{
    compile_sources, run_test, run_test_many, run_test_with, CompileOptions, Program,
    SchedulePolicy, StopReason, TestConfig, VmOptions,
};
use proptest::prelude::*;

const RACY: &str = r#"package app

import (
	"sync"
	"testing"
)

func Work() int {
	n := 0
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		n = n + 1
	}()
	go func() {
		defer wg.Done()
		n = n + 2
	}()
	wg.Wait()
	return n
}

func TestWork(t *testing.T) {
	Work()
}
"#;

const CHANNELS: &str = r#"package app

import (
	"testing"
	"time"
)

func Pipe() int {
	ch := make(chan int, 1)
	done := make(chan bool)
	total := 0
	go func() {
		for i := 0; i < 4; i++ {
			ch <- i
		}
		close(ch)
	}()
	go func() {
		for {
			select {
			case v, ok := <-ch:
				if !ok {
					done <- true
					return
				}
				total = total + v
			case <-time.After(50 * time.Millisecond):
				done <- true
				return
			}
		}
	}()
	<-done
	return total
}

func TestPipe(t *testing.T) {
	if Pipe() < 0 {
		t.Errorf("bad")
	}
}
"#;

const CLEAN: &str = r#"package app

import (
	"sync"
	"testing"
)

func Guarded() int {
	n := 0
	var mu sync.Mutex
	var wg sync.WaitGroup
	wg.Add(3)
	for i := 0; i < 3; i++ {
		go func() {
			defer wg.Done()
			mu.Lock()
			n = n + 1
			mu.Unlock()
		}()
	}
	wg.Wait()
	return n
}

func TestGuarded(t *testing.T) {
	if Guarded() != 3 {
		t.Errorf("lost update")
	}
}
"#;

fn compile(src: &str) -> Program {
    compile_sources(&[("a.go".into(), src.into())], &CompileOptions::default()).unwrap()
}

// ------------------------------------------------- pre-refactor goldens

/// `(seed, races, steps)` triples captured from the scheduler BEFORE the
/// `govm::sched` refactor (uniform-random pick + quantum from the shared
/// VM rng). The random policy must reproduce them exactly.
#[test]
fn random_policy_matches_prerefactor_run_goldens() {
    let racy_gold: &[(u64, usize, u64)] = &[
        (0, 1, 45),
        (1, 1, 45),
        (2, 1, 45),
        (3, 1, 44),
        (4, 1, 45),
        (5, 1, 45),
        (6, 1, 45),
        (7, 1, 45),
    ];
    let chans_gold: &[(u64, usize, u64)] = &[
        (0, 0, 173),
        (1, 0, 55),
        (2, 0, 174),
        (3, 0, 173),
        (4, 0, 173),
        (5, 0, 173),
        (6, 0, 173),
        (7, 0, 173),
    ];
    let clean_gold: &[(u64, usize, u64)] = &[
        (0, 0, 118),
        (1, 0, 119),
        (2, 0, 118),
        (3, 0, 118),
        (4, 0, 118),
        (5, 0, 118),
        (6, 0, 120),
        (7, 0, 118),
    ];
    for (src, test, gold) in [
        (RACY, "TestWork", racy_gold),
        (CHANNELS, "TestPipe", chans_gold),
        (CLEAN, "TestGuarded", clean_gold),
    ] {
        let prog = compile(src);
        for &(seed, races, steps) in gold {
            let r = run_test(&prog, test, seed);
            assert_eq!(r.races.len(), races, "{test} seed {seed}: race count");
            assert_eq!(r.steps, steps, "{test} seed {seed}: steps");
            assert!(r.error.is_none(), "{test} seed {seed}: {:?}", r.error);
        }
    }
    // The racy program's bug hash, pre-refactor.
    let prog = compile(RACY);
    let r = run_test(&prog, "TestWork", 0);
    assert_eq!(r.races[0].bug_hash(), "fe4cadd038a72ce8");
}

/// Campaign aggregates captured pre-refactor (`seed + i` per-run seeds,
/// uniform-random policy). `TestConfig::legacy` must replay them.
type CampaignGold = (&'static str, &'static str, u32, u64, bool, usize, u32, u64);

#[test]
fn legacy_campaigns_match_prerefactor_goldens() {
    // (src, test, runs, base, stop_on_race, races, ran, steps)
    let gold: &[CampaignGold] = &[
        (RACY, "TestWork", 6, 3, false, 1, 6, 269),
        (RACY, "TestWork", 10, 7, true, 1, 1, 45),
        (CHANNELS, "TestPipe", 6, 3, false, 0, 6, 1037),
        (CHANNELS, "TestPipe", 10, 7, true, 0, 10, 1560),
        (CLEAN, "TestGuarded", 6, 3, false, 0, 6, 710),
        (CLEAN, "TestGuarded", 10, 7, true, 0, 10, 1185),
    ];
    for &(src, test, runs, base, stop, races, ran, steps) in gold {
        let prog = compile(src);
        let out = run_test_many(&prog, test, &TestConfig::legacy(runs, base, stop));
        assert_eq!(out.races.len(), races, "{test} base {base}: races");
        assert_eq!(out.runs, ran, "{test} base {base}: runs executed");
        assert_eq!(out.steps, steps, "{test} base {base}: total steps");
    }
}

// ----------------------------------------------- determinism properties

fn policies() -> Vec<SchedulePolicy> {
    vec![
        SchedulePolicy::Random,
        SchedulePolicy::pct(),
        SchedulePolicy::Pct {
            depth: 8,
            budget: 256,
        },
        SchedulePolicy::Sweep,
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    // The same `(policy, seed)` pair always produces the identical
    // race set, step count, output and schedule signature.
    #[test]
    fn same_policy_and_seed_is_deterministic(seed in 0u64..5000, pidx in 0usize..4) {
        let policy = policies()[pidx].clone();
        let prog = compile(RACY);
        let opts = VmOptions { seed, policy, ..VmOptions::default() };
        let a = run_test_with(&prog, "TestWork", opts.clone());
        let b = run_test_with(&prog, "TestWork", opts);
        let hashes = |r: &govm::RunResult| {
            let mut h: Vec<String> = r.races.iter().map(|x| x.bug_hash()).collect();
            h.sort();
            h
        };
        prop_assert_eq!(hashes(&a), hashes(&b));
        prop_assert_eq!(a.steps, b.steps);
        prop_assert_eq!(a.schedule_sig, b.schedule_sig);
        prop_assert_eq!(a.sched_points, b.sched_points);
        prop_assert_eq!(a.output, b.output);
    }

    // The random policy run through `run_test_with` equals `run_test`
    // (the pre-refactor entry point) for every seed.
    #[test]
    fn run_test_is_random_policy(seed in 0u64..5000) {
        let prog = compile(CHANNELS);
        let a = run_test(&prog, "TestPipe", seed);
        let b = run_test_with(
            &prog,
            "TestPipe",
            VmOptions { seed, policy: SchedulePolicy::Random, ..VmOptions::default() },
        );
        prop_assert_eq!(a.steps, b.steps);
        prop_assert_eq!(a.schedule_sig, b.schedule_sig);
        prop_assert_eq!(a.races.len(), b.races.len());
    }
}

/// One signature ↔ one interleaving: equal signatures imply equal step
/// counts; the signature never stays at its seed value once the program
/// schedules anything.
#[test]
fn schedule_signature_identifies_interleavings() {
    let prog = compile(RACY);
    let mut by_sig: std::collections::HashMap<u64, u64> = std::collections::HashMap::new();
    let mut distinct = std::collections::HashSet::new();
    for seed in 0..64u64 {
        let r = run_test(&prog, "TestWork", seed);
        assert_ne!(
            r.schedule_sig, SIGNATURE_SEED,
            "signature must fold decisions"
        );
        assert!(r.sched_points > 0);
        if let Some(prev) = by_sig.insert(r.schedule_sig, r.steps) {
            assert_eq!(prev, r.steps, "same signature, different step count");
        }
        distinct.insert(r.schedule_sig);
    }
    assert!(distinct.len() > 1, "64 seeds must explore >1 interleaving");
}

/// Bug hashes are stable across schedule permutations: every seed and
/// every policy that exposes the planted race reports the same hash.
#[test]
fn bug_hash_is_stable_across_schedules_and_policies() {
    let prog = compile(RACY);
    let mut hashes = std::collections::HashSet::new();
    for policy in policies() {
        for seed in 0..24u64 {
            let r = run_test_with(
                &prog,
                "TestWork",
                VmOptions {
                    seed,
                    policy: policy.clone(),
                    ..VmOptions::default()
                },
            );
            for race in &r.races {
                hashes.insert(race.bug_hash());
            }
        }
    }
    assert_eq!(
        hashes.len(),
        1,
        "one planted race must yield one stable hash: {hashes:?}"
    );
}

// --------------------------------------- seed streams, dedup, early exit

/// Regression for the correlated-seed-stream bug: with the legacy
/// `seed + i` derivation, campaigns with nearby base seeds re-explore
/// almost all of each other's schedules; with the splitmix default they
/// share none.
#[test]
fn nearby_base_seeds_no_longer_share_schedules() {
    let runs = 16u64;
    let seq_a: Vec<u64> = (0..runs)
        .map(|i| SeedStream::Sequential.derive(100, i))
        .collect();
    let seq_b: Vec<u64> = (0..runs)
        .map(|i| SeedStream::Sequential.derive(101, i))
        .collect();
    let overlap = seq_a.iter().filter(|s| seq_b.contains(s)).count();
    assert_eq!(overlap as u64, runs - 1, "the bug: all but one seed shared");

    let split_a: Vec<u64> = (0..runs)
        .map(|i| SeedStream::Split.derive(100, i))
        .collect();
    let split_b: Vec<u64> = (0..runs)
        .map(|i| SeedStream::Split.derive(101, i))
        .collect();
    assert!(
        split_a.iter().all(|s| !split_b.contains(s)),
        "split streams must be disjoint"
    );

    // And the default TestConfig uses the fixed stream.
    assert_eq!(TestConfig::default().seed_stream, SeedStream::Split);
}

/// A single-goroutine program has exactly one interleaving: dedup
/// detects the saturation and the streak exit stops the campaign.
#[test]
fn dedup_streak_stops_saturated_campaigns() {
    let src = r#"package app

import "testing"

func Sum() int {
	total := 0
	for i := 0; i < 10; i++ {
		total = total + i
	}
	return total
}

func TestSum(t *testing.T) {
	if Sum() != 45 {
		t.Errorf("bad")
	}
}
"#;
    let prog = compile(src);
    let unbounded = run_test_many(
        &prog,
        "TestSum",
        &TestConfig {
            runs: 50,
            ..TestConfig::default()
        },
    );
    assert_eq!(unbounded.runs, 50);
    assert_eq!(unbounded.distinct_schedules, 1);
    assert_eq!(unbounded.duplicate_schedules, 49);

    let bounded = run_test_many(
        &prog,
        "TestSum",
        &TestConfig {
            runs: 50,
            dedup_streak: Some(3),
            ..TestConfig::default()
        },
    );
    assert_eq!(bounded.runs, 4, "1 fresh + 3 duplicate runs, then exit");
    assert!(bounded.is_clean());
    assert!(
        bounded.steps < unbounded.steps / 5,
        "dedup exit must save instructions: {} vs {}",
        bounded.steps,
        unbounded.steps
    );
    // The exit reasons are distinguishable.
    assert_eq!(unbounded.stop, StopReason::Completed);
    assert_eq!(bounded.stop, StopReason::DedupSaturated);
}

/// Golden pinning of the two early-exit reasons (satellite of the
/// lock-aware-cache PR): the same multi-schedule program stopped by
/// schedule saturation vs by the instruction budget must report
/// different [`StopReason`]s with exactly reproducible run/step
/// bookkeeping.
#[test]
fn early_exit_reasons_are_distinguishable_goldens() {
    // Multi-goroutine: many distinct schedules, so only an explicit
    // limit stops it early.
    let src = r#"package app

import (
	"sync"
	"testing"
)

func Spin() int {
	n := 0
	var mu sync.Mutex
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 6; j++ {
				mu.Lock()
				n = n + 1
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	return n
}

func TestSpin(t *testing.T) {
	if Spin() != 12 {
		t.Errorf("lost updates")
	}
}
"#;
    let prog = compile(src);

    // Budget exit: the campaign must stop as soon as the summed steps
    // cross the budget, after at least one run.
    let budget = run_test_many(
        &prog,
        "TestSpin",
        &TestConfig {
            runs: 64,
            seed: 7,
            max_total_steps: Some(1),
            ..TestConfig::default()
        },
    );
    assert_eq!(budget.stop, StopReason::BudgetExhausted);
    assert_eq!(budget.runs, 1, "a 1-step budget still runs one schedule");
    assert!(budget.steps > 0);
    assert!(budget.is_clean());

    // With no limits at all, the same program completes every run —
    // pinning that `Completed` is reserved for full campaigns.
    let complete = run_test_many(
        &prog,
        "TestSpin",
        &TestConfig {
            runs: 8,
            seed: 7,
            ..TestConfig::default()
        },
    );
    assert_eq!(complete.stop, StopReason::Completed);
    assert_eq!(complete.runs, 8);

    // And the race-exposure exit stays distinguishable from both.
    let racy = compile(RACY);
    let exposed = run_test_many(
        &racy,
        "TestWork",
        &TestConfig {
            runs: 64,
            seed: 0,
            stop_on_race: true,
            ..TestConfig::default()
        },
    );
    assert_eq!(exposed.stop, StopReason::RaceExposed);
    assert!(!exposed.races.is_empty());
    assert!(exposed.runs < 64);

    // Exit reasons, like every other campaign observable, replay
    // bit-identically.
    let budget2 = run_test_many(
        &prog,
        "TestSpin",
        &TestConfig {
            runs: 64,
            seed: 7,
            max_total_steps: Some(1),
            ..TestConfig::default()
        },
    );
    assert_eq!(budget.runs, budget2.runs);
    assert_eq!(budget.steps, budget2.steps);
    assert_eq!(budget.stop, budget2.stop);
}

/// The saturation streak resets on *any* novel signature: duplicates
/// separated by fresh schedules never accumulate into an exit.
#[test]
fn dedup_streak_resets_on_novel_signatures() {
    // Two goroutines: a handful of distinct schedules that the random
    // policy revisits with duplicates interleaved between novelties.
    let src = r#"package app

import (
	"sync"
	"testing"
)

func Pair() int {
	n := 0
	var mu sync.Mutex
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			mu.Lock()
			n = n + 1
			mu.Unlock()
		}()
	}
	wg.Wait()
	return n
}

func TestPair(t *testing.T) {
	if Pair() != 2 {
		t.Errorf("lost updates")
	}
}
"#;
    let prog = compile(src);
    let unbounded = run_test_many(
        &prog,
        "TestPair",
        &TestConfig {
            runs: 48,
            seed: 3,
            ..TestConfig::default()
        },
    );
    // Replay the same campaign with a streak limit. Reconstruct, run by
    // run, what the streak-with-reset semantics must do, and check the
    // campaign agrees exactly.
    let k = 4u32;
    let bounded = run_test_many(
        &prog,
        "TestPair",
        &TestConfig {
            runs: 48,
            seed: 3,
            dedup_streak: Some(k),
            ..TestConfig::default()
        },
    );
    // Derive the expected exit point from the unbounded campaign's
    // per-run signatures (recomputed via single runs on the same seed
    // stream).
    let mut seen = std::collections::HashSet::new();
    let mut streak = 0u32;
    let mut expected_runs = 0u32;
    let mut saturated = false;
    for i in 0..48u64 {
        let seed = govm::SeedStream::Split.derive(3, i);
        let r = run_test_with(
            &prog,
            "TestPair",
            VmOptions {
                seed,
                ..VmOptions::default()
            },
        );
        expected_runs += 1;
        if seen.insert(r.schedule_sig) {
            streak = 0; // novel schedule: the streak resets
        } else {
            streak += 1;
        }
        if streak >= k {
            saturated = true;
            break;
        }
    }
    assert_eq!(bounded.runs, expected_runs, "streak must reset on novelty");
    if saturated {
        assert_eq!(bounded.stop, StopReason::DedupSaturated);
        assert!(
            bounded.distinct_schedules > 1,
            "novel schedules appeared before saturation: {bounded:?}"
        );
    } else {
        assert_eq!(bounded.stop, StopReason::Completed);
    }
    // Sanity: the unbounded campaign saw duplicates *and* novelties, so
    // the reset semantics were actually exercised.
    assert!(unbounded.duplicate_schedules > 0);
    assert!(unbounded.distinct_schedules > 1);
}

/// The campaign-wide instruction budget stops a campaign mid-flight.
#[test]
fn step_budget_bounds_campaign_cost() {
    let prog = compile(CLEAN);
    let full = run_test_many(
        &prog,
        "TestGuarded",
        &TestConfig {
            runs: 32,
            ..TestConfig::default()
        },
    );
    assert_eq!(full.runs, 32);
    let per_run = full.steps / full.runs as u64;
    let budget = per_run * 5;
    let capped = run_test_many(
        &prog,
        "TestGuarded",
        &TestConfig {
            runs: 32,
            max_total_steps: Some(budget),
            ..TestConfig::default()
        },
    );
    assert!(capped.runs < full.runs, "budget must stop early");
    // The budget check runs between schedules, so the overshoot is at
    // most one run.
    assert!(
        capped.steps <= budget + 2 * per_run,
        "{} vs {budget}",
        capped.steps
    );
}

/// PCT and sweep explore at least as many distinct interleavings as the
/// uniform policy on the same budget (they are built to diversify).
#[test]
fn exploration_policies_produce_distinct_schedules() {
    let prog = compile(CHANNELS);
    for policy in policies() {
        let out = run_test_many(
            &prog,
            "TestPipe",
            &TestConfig {
                runs: 16,
                policy: policy.clone(),
                ..TestConfig::default()
            },
        );
        assert!(
            out.distinct_schedules >= 2,
            "{}: 16 runs explored {} schedules",
            policy.label(),
            out.distinct_schedules
        );
    }
}
