//! End-to-end VM tests: compile Go-subset programs, run them under
//! seeded schedules, and check both semantics and race detection.

use govm::{compile_sources, CompileOptions, TestConfig, Vm, VmOptions};

fn compile(src: &str) -> govm::Program {
    compile_sources(
        &[("main.go".to_owned(), src.to_owned())],
        &CompileOptions::default(),
    )
    .unwrap_or_else(|e| panic!("compile failed: {e}"))
}

fn run(src: &str, entry: &str) -> govm::RunResult {
    let prog = compile(src);
    let mut vm = Vm::new(&prog, VmOptions::default());
    vm.run(entry, vec![])
}

/// Runs under many seeds; returns true if any run detects a race.
fn races_somewhere(src: &str, entry: &str, runs: u64) -> bool {
    let prog = compile(src);
    for seed in 0..runs {
        let mut vm = Vm::new(
            &prog,
            VmOptions {
                seed,
                ..VmOptions::default()
            },
        );
        let r = vm.run(entry, vec![]);
        if let Some(e) = &r.error {
            panic!("unexpected error under seed {seed}: {e}");
        }
        if !r.races.is_empty() {
            return true;
        }
    }
    false
}

fn never_races(src: &str, entry: &str, runs: u64) {
    let prog = compile(src);
    for seed in 0..runs {
        let mut vm = Vm::new(
            &prog,
            VmOptions {
                seed,
                ..VmOptions::default()
            },
        );
        let r = vm.run(entry, vec![]);
        assert!(
            r.races.is_empty(),
            "seed {seed} raced: {}",
            r.races[0].render()
        );
        assert!(r.error.is_none(), "seed {seed} errored: {:?}", r.error);
    }
}

// ------------------------------------------------------------ semantics

#[test]
fn arithmetic_and_control_flow() {
    let r = run(
        r#"
package main

import "fmt"

func Main() {
	total := 0
	for i := 1; i <= 10; i++ {
		if i%2 == 0 {
			total += i
		}
	}
	fmt.Println(total)
}
"#,
        "Main",
    );
    assert!(r.error.is_none(), "{:?}", r.error);
    assert_eq!(r.output, "30\n");
}

#[test]
fn recursion_and_multi_return() {
    let r = run(
        r#"
package main

import "fmt"

func fib(n int) int {
	if n < 2 {
		return n
	}
	return fib(n-1) + fib(n-2)
}

func divmod(a, b int) (int, int) {
	return a / b, a % b
}

func Main() {
	q, rem := divmod(17, 5)
	fmt.Println(fib(10), q, rem)
}
"#,
        "Main",
    );
    assert_eq!(r.output, "55 3 2\n");
}

#[test]
fn closures_capture_by_reference() {
    let r = run(
        r#"
package main

import "fmt"

func Main() {
	x := 1
	bump := func() {
		x = x + 10
	}
	bump()
	bump()
	fmt.Println(x)
}
"#,
        "Main",
    );
    assert_eq!(r.output, "21\n");
}

#[test]
fn structs_methods_and_pointers() {
    let r = run(
        r#"
package main

import "fmt"

type Counter struct {
	n int
}

func (c *Counter) Inc(by int) {
	c.n += by
}

func (c *Counter) Get() int {
	return c.n
}

func Main() {
	c := &Counter{n: 5}
	c.Inc(3)
	c.Inc(2)
	fmt.Println(c.Get())
}
"#,
        "Main",
    );
    assert_eq!(r.output, "10\n");
}

#[test]
fn maps_slices_append_delete() {
    let r = run(
        r#"
package main

import "fmt"

func Main() {
	m := map[string]int{"a": 1, "b": 2}
	m["c"] = 3
	delete(m, "a")
	xs := []int{1, 2}
	xs = append(xs, 3, 4)
	v, ok := m["c"]
	_, missing := m["a"]
	fmt.Println(len(m), len(xs), xs[3], v, ok, missing)
}
"#,
        "Main",
    );
    assert_eq!(r.output, "2 4 4 3 true false\n");
}

#[test]
fn range_over_slice_and_map() {
    let r = run(
        r#"
package main

import "fmt"

func Main() {
	sum := 0
	for i, v := range []int{10, 20, 30} {
		sum += i + v
	}
	m := map[string]int{"x": 1, "y": 2}
	keys := ""
	for k := range m {
		keys = keys + k
	}
	fmt.Println(sum, keys)
}
"#,
        "Main",
    );
    // Map iteration is deterministic (sorted keys).
    assert_eq!(r.output, "63 xy\n");
}

#[test]
fn defer_runs_lifo() {
    let r = run(
        r#"
package main

import "fmt"

func Main() {
	fmt.Println(work())
}

func work() int {
	x := 0
	defer bump(&x)
	x = 1
	return x
}

func bump(p *int) {
	*p = *p + 100
}
"#,
        "Main",
    );
    // Defers run before the frame pops but after the return value is
    // captured — x was 1 at return.
    assert_eq!(r.output, "1\n");
}

#[test]
fn channels_buffered_roundtrip() {
    let r = run(
        r#"
package main

import "fmt"

func Main() {
	ch := make(chan int, 2)
	ch <- 1
	ch <- 2
	a := <-ch
	b := <-ch
	fmt.Println(a, b)
}
"#,
        "Main",
    );
    assert_eq!(r.output, "1 2\n");
}

#[test]
fn unbuffered_rendezvous_and_waitgroup() {
    let r = run(
        r#"
package main

import "sync"
import "fmt"

func Main() {
	ch := make(chan int)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		ch <- 42
	}()
	v := <-ch
	wg.Wait()
	fmt.Println(v)
}
"#,
        "Main",
    );
    assert!(r.error.is_none(), "{:?}", r.error);
    assert_eq!(r.output, "42\n");
    assert!(r.races.is_empty());
}

#[test]
fn select_with_default_and_close() {
    let r = run(
        r#"
package main

import "fmt"

func Main() {
	ch := make(chan int, 1)
	got := 0
	select {
	case v := <-ch:
		got = v
	default:
		got = -1
	}
	ch <- 7
	select {
	case v := <-ch:
		got = got + v
	default:
		got = -100
	}
	done := make(chan struct{})
	close(done)
	select {
	case <-done:
		got = got + 100
	}
	fmt.Println(got)
}
"#,
        "Main",
    );
    assert_eq!(r.output, "106\n");
}

#[test]
fn switch_statement() {
    let r = run(
        r#"
package main

import "fmt"

func classify(x int) string {
	switch x {
	case 0:
		return "zero"
	case 1, 2:
		return "small"
	default:
		return "big"
	}
}

func Main() {
	fmt.Println(classify(0), classify(2), classify(9))
}
"#,
        "Main",
    );
    assert_eq!(r.output, "zero small big\n");
}

#[test]
fn deadlock_is_reported() {
    let r = run(
        r#"
package main

func Main() {
	ch := make(chan int)
	<-ch
}
"#,
        "Main",
    );
    assert!(matches!(r.error, Some(govm::RunError::Deadlock(_))));
}

#[test]
fn panic_on_out_of_bounds() {
    let r = run(
        r#"
package main

func Main() {
	xs := []int{1}
	use(xs[3])
}

func use(x int) {}
"#,
        "Main",
    );
    assert!(matches!(r.error, Some(govm::RunError::Panic(_))));
}

// --------------------------------------------------------- race detection

const LISTING1_RACY: &str = r#"
package main

import "sync"

func SomeFunction() error {
	err := someWork()
	if err != nil {
		return err
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if err = task1(); err != nil {
			note()
		}
	}()
	if err = task2(); err != nil {
		note()
	}
	wg.Wait()
	return err
}

func someWork() error { return nil }
func task1() error    { return nil }
func task2() error    { return nil }
func note()           {}
"#;

const LISTING2_FIXED: &str = r#"
package main

import "sync"

func SomeFunction() error {
	err := someWork()
	if err != nil {
		return err
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if err := task1(); err != nil {
			note()
		}
	}()
	if err = task2(); err != nil {
		note()
	}
	wg.Wait()
	return err
}

func someWork() error { return nil }
func task1() error    { return nil }
func task2() error    { return nil }
func note()           {}
"#;

#[test]
fn listing1_err_capture_races() {
    assert!(races_somewhere(LISTING1_RACY, "SomeFunction", 12));
}

#[test]
fn listing2_redeclare_fix_is_clean() {
    never_races(LISTING2_FIXED, "SomeFunction", 24);
}

#[test]
fn race_report_has_stacks_and_stable_hash() {
    let prog = compile(LISTING1_RACY);
    let mut hash = None;
    for seed in 0..16 {
        let mut vm = Vm::new(
            &prog,
            VmOptions {
                seed,
                ..VmOptions::default()
            },
        );
        let r = vm.run("SomeFunction", vec![]);
        if let Some(race) = r.races.first() {
            assert_eq!(race.var_name, "err");
            // The closure and the parent both appear.
            let funcs: Vec<&str> = race
                .accesses
                .iter()
                .flat_map(|a| a.stack.iter().map(|f| f.function.as_str()))
                .collect();
            assert!(funcs.iter().any(|f| f.contains("SomeFunction")));
            match &hash {
                None => hash = Some(race.bug_hash()),
                Some(h) => assert_eq!(h, &race.bug_hash(), "bug hash is schedule-stable"),
            }
        }
    }
    assert!(hash.is_some(), "race observed under at least one seed");
}

#[test]
fn loop_variable_capture_races_and_privatization_fixes() {
    let racy = r#"
package main

import "sync"

func Main() {
	nums := []int{0, 1, 2, 3, 4}
	var wg sync.WaitGroup
	for _, num := range nums {
		wg.Add(1)
		go func() {
			defer wg.Done()
			use(num)
		}()
	}
	wg.Wait()
}

func use(x int) {}
"#;
    let fixed = r#"
package main

import "sync"

func Main() {
	nums := []int{0, 1, 2, 3, 4}
	var wg sync.WaitGroup
	for _, num := range nums {
		num := num
		wg.Add(1)
		go func() {
			defer wg.Done()
			use(num)
		}()
	}
	wg.Wait()
}

func use(x int) {}
"#;
    assert!(races_somewhere(racy, "Main", 12));
    never_races(fixed, "Main", 24);
}

#[test]
fn go122_loopvar_semantics_option_removes_race() {
    let racy = r#"
package main

import "sync"

func Main() {
	nums := []int{0, 1, 2}
	var wg sync.WaitGroup
	for _, num := range nums {
		wg.Add(1)
		go func() {
			defer wg.Done()
			use(num)
		}()
	}
	wg.Wait()
}

func use(x int) {}
"#;
    let prog = compile_sources(
        &[("main.go".to_owned(), racy.to_owned())],
        &CompileOptions {
            loopvar_per_iteration: true,
        },
    )
    .unwrap();
    for seed in 0..16 {
        let mut vm = Vm::new(
            &prog,
            VmOptions {
                seed,
                ..VmOptions::default()
            },
        );
        let r = vm.run("Main", vec![]);
        assert!(r.races.is_empty(), "go 1.22 semantics should not race");
    }
}

#[test]
fn mutex_protected_counter_is_clean_and_unprotected_races() {
    let racy = r#"
package main

import "sync"

func Main() {
	counter := 0
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			counter = counter + 1
		}()
	}
	wg.Wait()
	use(counter)
}

func use(x int) {}
"#;
    let fixed = r#"
package main

import "sync"

func Main() {
	counter := 0
	var mu sync.Mutex
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			mu.Lock()
			counter = counter + 1
			mu.Unlock()
		}()
	}
	wg.Wait()
	use(counter)
}

func use(x int) {}
"#;
    assert!(races_somewhere(racy, "Main", 12));
    never_races(fixed, "Main", 24);
}

#[test]
fn wg_add_inside_goroutine_races_with_parent_map_access() {
    // Listing 6 pattern: Add after spawn lets Wait pass early.
    let racy = r#"
package main

import "sync"

func Main() {
	m := make(map[int]int)
	var mu sync.Mutex
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		go func(n int) {
			wg.Add(1)
			defer wg.Done()
			mu.Lock()
			m[n] = n
			mu.Unlock()
		}(i)
	}
	wg.Wait()
	for k := range m {
		use(k)
	}
}

func use(x int) {}
"#;
    let fixed = r#"
package main

import "sync"

func Main() {
	m := make(map[int]int)
	var mu sync.Mutex
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(n int) {
			defer wg.Done()
			mu.Lock()
			m[n] = n
			mu.Unlock()
		}(i)
	}
	wg.Wait()
	for k := range m {
		use(k)
	}
}

func use(x int) {}
"#;
    assert!(races_somewhere(racy, "Main", 48));
    never_races(fixed, "Main", 24);
}

#[test]
fn concurrent_map_access_races_and_syncmap_fixes() {
    let racy = r#"
package main

import "sync"

func Main() {
	m := make(map[int]int)
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func(n int) {
			defer wg.Done()
			m[n] = n
		}(i)
	}
	wg.Wait()
}
"#;
    let fixed = r#"
package main

import "sync"

func Main() {
	var m sync.Map
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func(n int) {
			defer wg.Done()
			m.Store(n, n)
		}(i)
	}
	wg.Wait()
	total := 0
	m.Range(func(key, value interface{}) bool {
		total = total + 1
		return true
	})
	use(total)
}

func use(x int) {}
"#;
    assert!(races_somewhere(racy, "Main", 12));
    never_races(fixed, "Main", 24);
}

#[test]
fn atomic_counter_is_clean_plain_counter_races() {
    let fixed = r#"
package main

import (
	"sync"
	"sync/atomic"
)

func Main() {
	var cnt int32
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			atomic.AddInt32(&cnt, 1)
		}()
	}
	wg.Wait()
	use(atomic.LoadInt32(&cnt))
}

func use(x int) {}
"#;
    never_races(fixed, "Main", 24);
}

#[test]
fn parallel_subtests_share_hash_race_and_per_case_fix() {
    let racy = r#"
package main

import (
	"testing"
	"crypto/md5"
)

func TestRead(t *testing.T) {
	sampleHash := md5.New()
	tests := []struct {
		name string
	}{
		{name: "one"},
		{name: "two"},
	}
	for _, tt := range tests {
		tt := tt
		t.Run(tt.name, func(t *testing.T) {
			t.Parallel()
			sampleHash.Write(tt.name)
		})
	}
}
"#;
    let fixed = r#"
package main

import (
	"testing"
	"crypto/md5"
)

func TestRead(t *testing.T) {
	tests := []struct {
		name string
	}{
		{name: "one"},
		{name: "two"},
	}
	for _, tt := range tests {
		tt := tt
		t.Run(tt.name, func(t *testing.T) {
			t.Parallel()
			h := md5.New()
			h.Write(tt.name)
		})
	}
}
"#;
    let prog = compile(racy);
    let cfg = TestConfig {
        runs: 24,
        ..TestConfig::default()
    };
    let out = govm::run_test_many(&prog, "TestRead", &cfg);
    assert!(
        !out.races.is_empty(),
        "shared hash must race across subtests"
    );

    let prog2 = compile(fixed);
    let out2 = govm::run_test_many(&prog2, "TestRead", &cfg);
    assert!(
        out2.races.is_empty(),
        "per-case hash is clean: {:?}",
        out2.races.first().map(|r| r.render())
    );
    assert!(out2.error.is_none(), "{:?}", out2.error);
}

#[test]
fn channel_result_passing_is_clean() {
    // Listing 10's fixed shape: err flows through a channel.
    let fixed = r#"
package main

import "fmt"

func Main() {
	resultChan := make(chan int, 1)
	errChan := make(chan error, 1)
	go func() {
		result, err := evaluate()
		resultChan <- result
		errChan <- err
	}()
	result := <-resultChan
	err := <-errChan
	fmt.Println(result, err)
}

func evaluate() (int, error) {
	return 7, nil
}
"#;
    never_races(fixed, "Main", 24);
}

#[test]
fn ctx_timeout_select_race_appears_across_seeds() {
    // Listing 10's racy shape: err captured by reference, parent may take
    // the ctx.Done arm while the child writes err.
    let racy = r#"
package main

import "context"
import "time"

func Main() {
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	resultChan := make(chan int, 1)
	var err error
	go func() {
		var result int
		result, err = evaluate()
		resultChan <- result
	}()
	select {
	case r := <-resultChan:
		use(r)
	case <-ctx.Done():
		use(0)
	}
	if err != nil {
		use(1)
	}
	cancel()
}

func evaluate() (int, error) {
	total := 0
	for i := 0; i < 30; i++ {
		total += i
	}
	return total, nil
}

func use(x int) {}
"#;
    assert!(races_somewhere(racy, "Main", 64));
}

#[test]
fn shared_rand_source_races_per_request_source_is_clean() {
    let racy = r#"
package main

import (
	"sync"
	"math/rand"
)

var source = rand.NewSource(1001)

func Main() {
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			random := rand.New(source)
			use(random.Intn(10))
		}()
	}
	wg.Wait()
}

func use(x int) {}
"#;
    let fixed = r#"
package main

import (
	"sync"
	"math/rand"
)

func Main() {
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			random := rand.New(rand.NewSource(1001))
			use(random.Intn(10))
		}()
	}
	wg.Wait()
}

func use(x int) {}
"#;
    assert!(races_somewhere(racy, "Main", 12));
    never_races(fixed, "Main", 24);
}

#[test]
fn slice_append_vs_index_races_mutex_fixes() {
    let racy = r#"
package main

import "sync"

func Main() {
	xs := []int{1, 2, 3}
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		xs = append(xs, 4)
	}()
	go func() {
		defer wg.Done()
		use(xs[0])
	}()
	wg.Wait()
}

func use(x int) {}
"#;
    let fixed = r#"
package main

import "sync"

func Main() {
	xs := []int{1, 2, 3}
	var mu sync.Mutex
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		mu.Lock()
		xs = append(xs, 4)
		mu.Unlock()
	}()
	go func() {
		defer wg.Done()
		mu.Lock()
		use(xs[0])
		mu.Unlock()
	}()
	wg.Wait()
}

func use(x int) {}
"#;
    assert!(races_somewhere(racy, "Main", 12));
    never_races(fixed, "Main", 24);
}

#[test]
fn rwmutex_readers_do_not_race_with_each_other() {
    let src = r#"
package main

import "sync"

func Main() {
	data := map[string]int{"k": 1}
	var mu sync.RWMutex
	var wg sync.WaitGroup
	wg.Add(3)
	go func() {
		defer wg.Done()
		mu.Lock()
		data["k"] = 2
		mu.Unlock()
	}()
	for i := 0; i < 2; i++ {
		go func() {
			defer wg.Done()
			mu.RLock()
			use(data["k"])
			mu.RUnlock()
		}()
	}
	wg.Wait()
}

func use(x int) {}
"#;
    never_races(src, "Main", 32);
}

#[test]
fn struct_copy_fix_is_clean_shared_struct_races() {
    let racy = r#"
package main

import "sync"

type Config struct {
	Limit int
}

func Main() {
	cfg := &Config{Limit: 1}
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		cfg.Limit = 5
		use(cfg)
	}()
	go func() {
		defer wg.Done()
		cfg.Limit = 9
		use(cfg)
	}()
	wg.Wait()
}

func use(c *Config) {}
"#;
    let fixed = r#"
package main

import "sync"

type Config struct {
	Limit int
}

func Main() {
	cfg := &Config{Limit: 1}
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		local := Config{Limit: cfg.Limit}
		local.Limit = 5
		use(&local)
	}()
	go func() {
		defer wg.Done()
		local := Config{Limit: cfg.Limit}
		local.Limit = 9
		use(&local)
	}()
	wg.Wait()
}

func use(c *Config) {}
"#;
    assert!(races_somewhere(racy, "Main", 12));
    never_races(fixed, "Main", 24);
}
