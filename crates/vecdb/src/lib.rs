//! `vecdb` — an in-memory vector database (the ChromaDB substitute,
//! Table 2 of the paper).
//!
//! Dr.Fix stores `(skeleton embedding) → (racy code, fixed code)` entries
//! and retrieves the nearest example by cosine similarity (§3.1, §3.4).
//! This store keeps vectors in a flat arena and brute-force scans on
//! query — exact top-k, deterministic ties (lowest insertion id wins),
//! JSON persistence. Queries use partial top-k selection
//! (`select_nth_unstable` then a sort of the k survivors), so per-query
//! cost is O(n + k log k) instead of the full O(n log n) sort; the
//! full-sort reference survives as [`VectorStore::query_exhaustive`] and
//! a property test pins the two hit-for-hit identical.
//!
//! # Example
//!
//! ```
//! use vecdb::VectorStore;
//!
//! let mut db: VectorStore<&str> = VectorStore::new(3);
//! db.insert(vec![1.0, 0.0, 0.0], "x-axis")?;
//! db.insert(vec![0.0, 1.0, 0.0], "y-axis")?;
//! let hits = db.query(&[0.9, 0.1, 0.0], 1);
//! assert_eq!(*hits[0].item, "x-axis");
//! # Ok::<(), vecdb::DimensionError>(())
//! ```

#![warn(missing_docs)]

use serde::de::DeserializeOwned;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Error returned when a vector's dimensionality does not match the store.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DimensionError {
    /// Expected dimensionality.
    pub expected: usize,
    /// Provided dimensionality.
    pub got: usize,
}

impl fmt::Display for DimensionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "vector dimensionality mismatch: expected {}, got {}",
            self.expected, self.got
        )
    }
}

impl std::error::Error for DimensionError {}

/// One query hit.
#[derive(Debug, Clone, PartialEq)]
pub struct Hit<'a, M> {
    /// Insertion id of the entry.
    pub id: usize,
    /// Cosine similarity to the query.
    pub score: f32,
    /// The stored metadata.
    pub item: &'a M,
}

/// A brute-force exact-cosine vector store.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct VectorStore<M> {
    dim: usize,
    vectors: Vec<Vec<f32>>,
    items: Vec<M>,
}

impl<M> VectorStore<M> {
    /// Creates an empty store for `dim`-dimensional vectors.
    pub fn new(dim: usize) -> Self {
        VectorStore {
            dim,
            vectors: Vec::new(),
            items: Vec::new(),
        }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Store dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Inserts a vector with its metadata; returns the entry id.
    ///
    /// # Errors
    ///
    /// Returns [`DimensionError`] when the vector has the wrong length.
    pub fn insert(&mut self, vector: Vec<f32>, item: M) -> Result<usize, DimensionError> {
        if vector.len() != self.dim {
            return Err(DimensionError {
                expected: self.dim,
                got: vector.len(),
            });
        }
        self.vectors.push(vector);
        self.items.push(item);
        Ok(self.items.len() - 1)
    }

    /// Returns the `k` nearest entries by cosine similarity, best first.
    /// Ties break toward the earliest-inserted entry, so queries are
    /// fully deterministic.
    ///
    /// Uses partial selection: only the k best entries are ever sorted,
    /// so the cost is O(n + k log k) rather than O(n log n). The
    /// ordering is identical to [`VectorStore::query_exhaustive`] —
    /// `(score desc, insertion id asc)` is a total order, so the
    /// selected prefix and its sort are unique.
    pub fn query(&self, vector: &[f32], k: usize) -> Vec<Hit<'_, M>> {
        if k == 0 || self.items.is_empty() {
            return Vec::new();
        }
        let mut scored = self.score_all(vector);
        if k < scored.len() {
            scored.select_nth_unstable_by(k - 1, rank);
            scored.truncate(k);
        }
        scored.sort_unstable_by(rank);
        self.to_hits(scored)
    }

    /// The full-sort reference implementation of [`VectorStore::query`],
    /// kept for differential testing (and for callers that prefer the
    /// simplest possible code path).
    pub fn query_exhaustive(&self, vector: &[f32], k: usize) -> Vec<Hit<'_, M>> {
        let mut scored = self.score_all(vector);
        scored.sort_by(rank);
        scored.truncate(k);
        self.to_hits(scored)
    }

    fn score_all(&self, vector: &[f32]) -> Vec<(usize, f32)> {
        self.vectors
            .iter()
            .enumerate()
            .map(|(i, v)| (i, cosine(vector, v)))
            .collect()
    }

    fn to_hits(&self, scored: Vec<(usize, f32)>) -> Vec<Hit<'_, M>> {
        scored
            .into_iter()
            .map(|(i, score)| Hit {
                id: i,
                score,
                item: &self.items[i],
            })
            .collect()
    }

    /// Returns the stored entry by id.
    pub fn get(&self, id: usize) -> Option<&M> {
        self.items.get(id)
    }

    /// Iterates all `(id, item)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (usize, &M)> {
        self.items.iter().enumerate()
    }
}

impl<M: Serialize> VectorStore<M> {
    /// Serialises the store to JSON.
    ///
    /// # Errors
    ///
    /// Returns a `serde_json` error if metadata fails to serialise.
    pub fn to_json(&self) -> serde_json::Result<String> {
        serde_json::to_string(self)
    }
}

impl<M: DeserializeOwned> VectorStore<M> {
    /// Restores a store from JSON produced by [`VectorStore::to_json`].
    ///
    /// # Errors
    ///
    /// Returns a `serde_json` error on malformed input.
    pub fn from_json(json: &str) -> serde_json::Result<Self> {
        serde_json::from_str(json)
    }
}

/// The query ranking: score descending, then insertion id ascending.
/// Cosine scores are never NaN (zero norms map to 0.0), and the id
/// tiebreak makes this a total order — required for `select_nth` and
/// sort to agree exactly.
fn rank(a: &(usize, f32), b: &(usize, f32)) -> std::cmp::Ordering {
    b.1.partial_cmp(&a.1)
        .unwrap_or(std::cmp::Ordering::Equal)
        .then(a.0.cmp(&b.0))
}

fn cosine(a: &[f32], b: &[f32]) -> f32 {
    let dot: f32 = a.iter().zip(b).map(|(x, y)| x * y).sum();
    let na: f32 = a.iter().map(|x| x * x).sum::<f32>().sqrt();
    let nb: f32 = b.iter().map(|x| x * x).sum::<f32>().sqrt();
    if na == 0.0 || nb == 0.0 {
        0.0
    } else {
        dot / (na * nb)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_and_query_top1() {
        let mut db = VectorStore::new(2);
        db.insert(vec![1.0, 0.0], "east").unwrap();
        db.insert(vec![0.0, 1.0], "north").unwrap();
        let hits = db.query(&[0.8, 0.2], 1);
        assert_eq!(hits.len(), 1);
        assert_eq!(*hits[0].item, "east");
        assert!(hits[0].score > 0.9);
    }

    #[test]
    fn query_orders_by_similarity() {
        let mut db = VectorStore::new(3);
        db.insert(vec![1.0, 0.0, 0.0], 0).unwrap();
        db.insert(vec![0.7, 0.7, 0.0], 1).unwrap();
        db.insert(vec![0.0, 0.0, 1.0], 2).unwrap();
        let hits = db.query(&[1.0, 0.1, 0.0], 3);
        let order: Vec<i32> = hits.iter().map(|h| *h.item).collect();
        assert_eq!(order, vec![0, 1, 2]);
        assert!(hits[0].score >= hits[1].score);
        assert!(hits[1].score >= hits[2].score);
    }

    #[test]
    fn ties_break_deterministically_by_insertion_order() {
        let mut db = VectorStore::new(2);
        db.insert(vec![1.0, 0.0], "first").unwrap();
        db.insert(vec![1.0, 0.0], "second").unwrap();
        let hits = db.query(&[1.0, 0.0], 2);
        assert_eq!(*hits[0].item, "first");
        assert_eq!(*hits[1].item, "second");
    }

    #[test]
    fn dimension_mismatch_is_an_error() {
        let mut db: VectorStore<()> = VectorStore::new(3);
        let err = db.insert(vec![1.0], ()).unwrap_err();
        assert_eq!(err.expected, 3);
        assert_eq!(err.got, 1);
        assert!(err.to_string().contains("mismatch"));
    }

    #[test]
    fn k_larger_than_len_returns_all() {
        let mut db = VectorStore::new(1);
        db.insert(vec![1.0], "only").unwrap();
        let hits = db.query(&[1.0], 10);
        assert_eq!(hits.len(), 1);
    }

    #[test]
    fn json_roundtrip_preserves_queries() {
        let mut db = VectorStore::new(2);
        db.insert(vec![1.0, 0.0], "a".to_owned()).unwrap();
        db.insert(vec![0.0, 1.0], "b".to_owned()).unwrap();
        let json = db.to_json().unwrap();
        let db2: VectorStore<String> = VectorStore::from_json(&json).unwrap();
        assert_eq!(db2.len(), 2);
        assert_eq!(*db2.query(&[0.0, 0.9], 1)[0].item, "b");
    }

    #[test]
    fn empty_store_returns_no_hits() {
        let db: VectorStore<u8> = VectorStore::new(4);
        assert!(db.query(&[1.0, 0.0, 0.0, 0.0], 3).is_empty());
        assert!(db.is_empty());
    }
}
