//! Property tests: top-k queries match a brute-force scan exactly.

use proptest::prelude::*;
use vecdb::VectorStore;

fn cosine(a: &[f32], b: &[f32]) -> f32 {
    let dot: f32 = a.iter().zip(b).map(|(x, y)| x * y).sum();
    let na: f32 = a.iter().map(|x| x * x).sum::<f32>().sqrt();
    let nb: f32 = b.iter().map(|x| x * x).sum::<f32>().sqrt();
    if na == 0.0 || nb == 0.0 {
        0.0
    } else {
        dot / (na * nb)
    }
}

proptest! {
    #[test]
    fn query_matches_brute_force(
        vecs in proptest::collection::vec(
            proptest::collection::vec(-10.0f32..10.0, 4), 1..30),
        q in proptest::collection::vec(-10.0f32..10.0, 4),
        k in 1usize..5,
    ) {
        let mut store = VectorStore::new(4);
        for (i, v) in vecs.iter().enumerate() {
            store.insert(v.clone(), i).unwrap();
        }
        let hits = store.query(&q, k);
        let mut scored: Vec<(usize, f32)> = vecs
            .iter()
            .enumerate()
            .map(|(i, v)| (i, cosine(&q, v)))
            .collect();
        scored.sort_by(|a, b| {
            b.1.partial_cmp(&a.1).unwrap().then(a.0.cmp(&b.0))
        });
        for (hit, (want_id, want_score)) in hits.iter().zip(scored.iter()) {
            prop_assert_eq!(hit.id, *want_id);
            prop_assert!((hit.score - want_score).abs() < 1e-5);
        }
        prop_assert_eq!(hits.len(), k.min(vecs.len()));
    }

    #[test]
    fn json_roundtrip_is_lossless(
        vecs in proptest::collection::vec(
            proptest::collection::vec(-5.0f32..5.0, 3), 0..10),
    ) {
        let mut store = VectorStore::new(3);
        for (i, v) in vecs.iter().enumerate() {
            store.insert(v.clone(), i as u32).unwrap();
        }
        let json = store.to_json().unwrap();
        let back: VectorStore<u32> = VectorStore::from_json(&json).unwrap();
        prop_assert_eq!(back.len(), store.len());
    }
}
