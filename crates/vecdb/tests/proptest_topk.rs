//! Differential property tests: the partial top-k `query` must be
//! hit-for-hit identical to the full-sort `query_exhaustive` reference —
//! same ids, same scores, same order — including tied scores (duplicated
//! vectors) and zero-norm vectors (which all score 0.0 and tie).

use proptest::prelude::*;
use vecdb::VectorStore;

/// Builds a store whose entries deliberately include exact duplicates
/// (score ties) and all-zero vectors (zero-norm ties at 0.0).
fn build_store(vecs: &[Vec<f32>], dup_every: usize, zero_every: usize) -> VectorStore<usize> {
    let dim = vecs.first().map(|v| v.len()).unwrap_or(3);
    let mut store = VectorStore::new(dim);
    let mut id = 0usize;
    for (i, v) in vecs.iter().enumerate() {
        let v = if zero_every > 0 && i % zero_every == 0 {
            vec![0.0; dim]
        } else {
            v.clone()
        };
        store.insert(v.clone(), id).unwrap();
        id += 1;
        if dup_every > 0 && i % dup_every == 0 {
            store.insert(v, id).unwrap();
            id += 1;
        }
    }
    store
}

proptest! {
    #[test]
    fn partial_topk_is_identical_to_full_sort(
        vecs in proptest::collection::vec(
            proptest::collection::vec(-4.0f32..4.0, 3), 1..40),
        q in proptest::collection::vec(-4.0f32..4.0, 3),
        k in 0usize..45,
        dup_every in 0usize..4,
        zero_every in 0usize..5,
    ) {
        let store = build_store(&vecs, dup_every, zero_every);
        let fast = store.query(&q, k);
        let slow = store.query_exhaustive(&q, k);
        prop_assert_eq!(fast.len(), slow.len());
        for (f, s) in fast.iter().zip(slow.iter()) {
            prop_assert_eq!(f.id, s.id, "ids diverged at k={}", k);
            // Same entry, same arithmetic: scores must be bitwise equal.
            prop_assert_eq!(f.score.to_bits(), s.score.to_bits());
            prop_assert_eq!(*f.item, *s.item);
        }
    }

    #[test]
    fn zero_norm_queries_tie_everywhere_and_still_agree(
        vecs in proptest::collection::vec(
            proptest::collection::vec(-4.0f32..4.0, 3), 1..25),
        k in 1usize..30,
    ) {
        // A zero query scores every entry 0.0: the whole store is one
        // giant tie, so this pins the tie-break path specifically.
        let store = build_store(&vecs, 2, 3);
        let fast = store.query(&[0.0, 0.0, 0.0], k);
        let slow = store.query_exhaustive(&[0.0, 0.0, 0.0], k);
        let fast_ids: Vec<usize> = fast.iter().map(|h| h.id).collect();
        let slow_ids: Vec<usize> = slow.iter().map(|h| h.id).collect();
        prop_assert_eq!(&fast_ids, &slow_ids);
        // Ties break toward insertion order: ids must be ascending.
        prop_assert!(fast_ids.windows(2).all(|w| w[0] < w[1]));
    }
}
