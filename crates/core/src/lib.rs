//! `drfix` — the paper's primary contribution: an automated data-race
//! fixing pipeline combining program analysis with an LLM (PLDI 2025).
//!
//! The flow mirrors Fig. 1 of the paper:
//!
//! 1. **Race Info Extractor** ([`raceinfo`]): parses the ThreadSanitizer-
//!    style report into candidate fix locations (test / leaf / LCA) and
//!    scopes (function / file);
//! 2. **Example database** ([`database`]): curated `(racy, fixed)` pairs
//!    keyed by embeddings of their concurrency skeletons (or raw text,
//!    for the ablation arm);
//! 3. **Fix Generator** ([`pipeline`]): Listing 13's loop — locations ×
//!    scopes × examples × retries with failure feedback, each attempt one
//!    LLM call;
//! 4. **Fix Validator** ([`validate`]): rebuild and re-run the tests
//!    under many schedules, checking the stable bug hash;
//! 5. **Developer validation** ([`review`]): the seeded review/survey
//!    model behind the RQ1/RQ4 tables;
//! 6. **Fleet execution** ([`fleet`]): the deployment-scale work-queue
//!    executor (§2.2) that shards cases across worker threads with
//!    per-case derived seeds, bit-identical to the serial path.
//!
//! # Example
//!
//! ```
//! use drfix::{DrFix, PipelineConfig};
//!
//! let files = vec![(
//!     "counter.go".to_string(),
//!     r#"package app
//!
//! import (
//!     "sync"
//!     "testing"
//! )
//!
//! func Bump() int {
//!     n := 0
//!     var wg sync.WaitGroup
//!     wg.Add(2)
//!     go func() {
//!         defer wg.Done()
//!         n = n + 1
//!     }()
//!     go func() {
//!         defer wg.Done()
//!         n = n + 2
//!     }()
//!     wg.Wait()
//!     return n
//! }
//!
//! func TestBump(t *testing.T) {
//!     Bump()
//! }
//! "#
//!     .to_string(),
//! )];
//! let drfix = DrFix::new(PipelineConfig::default(), None);
//! let outcome = drfix.fix_case(&files, "TestBump");
//! assert!(outcome.fixed);
//! ```

#![warn(missing_docs)]

pub mod campaign;
pub mod database;
pub mod fleet;
pub mod pipeline;
pub mod raceinfo;
pub mod review;
pub mod tournament;
pub mod validate;

pub use campaign::{
    run_campaign, CampaignConfig, CampaignMetrics, CampaignMode, CampaignRun, CaseOutcome,
    ShardProgress, Snapshot, Tallies, CAMPAIGN_SCHEMA,
};
pub use database::{ExampleDb, RagMode};
pub use fleet::{FleetConfig, FleetRun, FleetStats};
pub use govm::{SchedulePolicy, SeedStream};
pub use pipeline::{DrFix, FailureKind, FixOutcome, PipelineConfig};
pub use raceinfo::{extract, FixLocation, LocationKind, RaceInfo};
pub use review::{review_fix, survey, ReviewOutcome};
pub use tournament::{
    candidate_rank, CandidateOutcome, CandidateReport, CandidateSelection, TournamentConfig,
    TournamentReport,
};
pub use validate::{
    static_probe, validate_patch, validate_patch_report, validate_patch_with, StaticProbe,
    ValidationOptions, ValidationOutcome, Verdict,
};
