//! The tournament arm of the pipeline: multi-candidate generation with
//! an iterated static-repair loop.
//!
//! The single-path loop in [`crate::pipeline`] is the paper's Listing 13
//! and stays the golden reference: one candidate per `(location, scope,
//! example, retry)` combination, first validated patch wins. The
//! tournament arm instead *enumerates* a pool of candidates per
//! combination (Snippet-1 style `Best`/`ById`/`All` selection over
//! per-candidate confidence scores), iterates each candidate against
//! `statcheck` diagnostics until lint-clean or the repair budget runs
//! out (Snippet-2's `repair_max_iters` shape) — spending **zero**
//! dynamic schedules on that loop — and only then validates survivors
//! under schedule-diverse campaigns, picking the winner by
//! `(validation-clean, confidence, patch-LoC)` with a deterministic
//! id tie-break so outcomes are bit-identical at any `DRFIX_THREADS`.
//!
//! Two invariants matter:
//!
//! - **Superset of single-path.** The pool always contains every
//!   candidate the single-path loop would have validated: enumeration
//!   reuses the same capability dice (race-keyed, so attempt and arm
//!   don't change the roll), and repair outputs are *appended* as new
//!   candidates rather than replacing their parent — a repair can never
//!   evict a patch single-path would have accepted.
//! - **Zero schedules on lint.** The repair loop consults only
//!   [`crate::validate::static_probe`]; candidates whose final probe
//!   still carries error-tier findings are rejected without running a
//!   single VM instruction. Warning-tier findings trigger repair but
//!   never rejection (they are heuristic, and must not override a
//!   dynamically-clean patch).

use crate::pipeline::{patch_loc, DrFix, FailureKind, FixOutcome};
use crate::raceinfo::{self, FixLocation, LocationKind};
use crate::validate::{
    static_probe, validate_patch_report, StaticProbe, ValidationOptions, Verdict,
};
use govm::{TestConfig, VmOptions};
use synthllm::{Candidate, Feedback, FixRequest, RaceCategory, Scope, StrategyKind, SynthLlm};

/// Configuration of the tournament arm. `None` on
/// [`crate::PipelineConfig::tournament`] keeps the single-path loop.
#[derive(Debug, Clone, PartialEq)]
pub struct TournamentConfig {
    /// Candidates enumerated per `(location, scope, example)` request.
    /// Must stay ≥ 5 for the superset guarantee: feedback exclusions can
    /// shift single-path's top-4 ranking window by one.
    pub max_candidates: usize,
    /// Repair iterations per candidate lineage before lint findings are
    /// final (error tier → rejected, warning tier → proceed anyway).
    pub repair_max_iters: u32,
    /// Which survivors get a validation campaign.
    pub selection: CandidateSelection,
    /// Retain every candidate's patched sources in the report (tests use
    /// this to re-validate losers; costs memory, off by default).
    pub keep_candidates: bool,
}

impl Default for TournamentConfig {
    fn default() -> Self {
        TournamentConfig {
            max_candidates: 8,
            repair_max_iters: 2,
            selection: CandidateSelection::Best,
            keep_candidates: false,
        }
    }
}

/// Snippet-1 style winner selection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CandidateSelection {
    /// Validate in rank order, stop at the first clean candidate.
    Best,
    /// Validate only the candidate with this enumeration id.
    ById(usize),
    /// Validate every static-clean survivor (the winner is still the
    /// best-ranked clean one); used for gate-accounting studies.
    All,
}

/// What happened to one candidate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CandidateOutcome {
    /// Won the tournament: validation-clean and best-ranked.
    Won,
    /// Rejected by the static gate's error tier — zero VM steps spent.
    RejectedStatic {
        /// The lint rule that condemned it.
        rule: String,
    },
    /// Validated and failed dynamically.
    FailedValidation {
        /// The validator's failure message.
        reason: String,
    },
    /// Validated clean under an [`CandidateSelection::All`] sweep but
    /// ranked after the winner.
    Outranked,
    /// Never validated (ranked after the winner, or outside `ById`).
    NotValidated,
}

/// Per-candidate accounting in the tournament report.
#[derive(Debug, Clone, PartialEq)]
pub struct CandidateReport {
    /// Enumeration id (position in discovery order; the tie-break key).
    pub id: usize,
    /// Strategy the candidate applied.
    pub strategy: StrategyKind,
    /// Fix-location kind that hosted it.
    pub location: LocationKind,
    /// Prompt scope it was generated under.
    pub scope: Scope,
    /// Whether a retrieved example guided it.
    pub example_used: bool,
    /// Model-reported confidence in `(0, 1]`.
    pub confidence: f64,
    /// Changed-line count of its patch.
    pub patch_loc: usize,
    /// Repair iterations in this candidate's lineage (0 = original).
    pub repair_iters: u32,
    /// Whether the capability model degraded the application.
    pub degraded: bool,
    /// Final disposition.
    pub outcome: CandidateOutcome,
    /// The candidate's patched sources, when
    /// [`TournamentConfig::keep_candidates`] is set.
    pub patch: Option<Vec<(String, String)>>,
}

/// The full tournament trace attached to [`FixOutcome`].
#[derive(Debug, Clone, PartialEq)]
pub struct TournamentReport {
    /// Every distinct candidate, in discovery order (id = index).
    pub candidates: Vec<CandidateReport>,
    /// Id of the winning candidate, if any.
    pub winner: Option<usize>,
    /// Total repair iterations spent across all lineages.
    pub repair_iters: u32,
    /// Static probes run (the whole repair loop's cost — all zero-VM).
    pub lint_probes: u32,
}

/// The tournament ranking: confidence (desc), then patch LoC (asc),
/// then enumeration id (asc). The id tie-break is what pins ties
/// deterministically — ids follow discovery order, which depends only
/// on the seed and the case, never on thread count.
pub fn candidate_rank(a: (f64, usize, usize), b: (f64, usize, usize)) -> std::cmp::Ordering {
    b.0.total_cmp(&a.0).then(a.1.cmp(&b.1)).then(a.2.cmp(&b.2))
}

/// One candidate plus everything needed to repair and validate it.
pub(crate) struct PoolEntry {
    cand: Candidate,
    req: FixRequest,
    kind: LocationKind,
    loc: FixLocation,
    scope: Scope,
    example_used: bool,
    example_category: Option<RaceCategory>,
    patched: Vec<(String, String)>,
    ploc: usize,
    repair_iters: u32,
    probe: StaticProbe,
}

/// Dedup key over a patched codebase: the exact bytes, file by file.
fn pool_key(patched: &[(String, String)]) -> String {
    let mut key = String::new();
    for (name, src) in patched {
        key.push_str(name);
        key.push('\0');
        key.push_str(src);
        key.push('\0');
    }
    key
}

/// The output of the tournament's static half (phases 1–2): the
/// candidate pool in discovery order plus the accounting accrued while
/// building it. The campaign orchestrator carries this value from its
/// fix stage (zero VM steps) to its validate stage; within one process
/// the split is invisible — [`DrFix::fix_from_report_tournament`] is
/// exactly `tournament_pool` then `tournament_decide`.
pub(crate) struct PoolBuild {
    pool: Vec<PoolEntry>,
    llm_calls: u32,
    lint_probes: u32,
    total_repairs: u32,
}

impl DrFix<'_> {
    /// Runs one reproduced case through the tournament arm.
    pub(crate) fn fix_from_report_tournament(
        &self,
        files: &[(String, String)],
        test: &str,
        report: &racedet::RaceReport,
        tcfg: &TournamentConfig,
    ) -> FixOutcome {
        let info = raceinfo::extract(report, files);
        let build = self.tournament_pool(files, &info, tcfg);
        self.tournament_decide(test, &info, tcfg, build)
    }

    /// Phases 1–2: enumerate the candidate pool and run the iterated
    /// static-repair loop. Consults only the synthetic model and
    /// `statcheck` — **zero VM instructions** — so the campaign can run
    /// it in a stage that never touches the scheduler.
    pub(crate) fn tournament_pool(
        &self,
        files: &[(String, String)],
        info: &raceinfo::RaceInfo,
        tcfg: &TournamentConfig,
    ) -> PoolBuild {
        let mut llm_calls = 0u32;
        let llm = SynthLlm::new(self.cfg.tier, self.cfg.seed);
        let visible = |name: &str| !name.starts_with("vendor_");

        // ── Phase 1: enumerate the candidate pool ────────────────────
        //
        // Same (location, scope, example) sweep as single-path, but each
        // request enumerates up to `max_candidates` ranked candidates
        // instead of committing to the top one. A second pass per arm
        // replays the request under synthetic attempt-1 feedback: the
        // capability dice key mislocalisation on the attempt ordinal, so
        // this is exactly the extra chance single-path's feedback retry
        // gets — without it the pool could miss a retry-only win.
        let mut pool: Vec<PoolEntry> = Vec::new();
        let mut seen = std::collections::HashSet::new();
        let passes: u32 = if self.cfg.feedback {
            self.cfg.retries + 1
        } else {
            1
        };
        for kind in &self.cfg.locations {
            let locations: Vec<&FixLocation> = info
                .locations
                .iter()
                .filter(|l| l.kind == *kind && visible(&l.file))
                .collect();
            for loc in locations {
                for &scope in &self.cfg.scopes {
                    let Some((code, context_funcs)) = self.scope_code(files, loc, scope) else {
                        continue;
                    };
                    let mut example_arms = vec![None];
                    if self.cfg.rag != crate::database::RagMode::None {
                        if let Some(db) = self.db {
                            if let Some((ex, cat, _score)) =
                                db.retrieve(self.cfg.rag, &code, &info.racy_var, &loc.lines)
                            {
                                example_arms.push(Some((ex, cat)));
                            }
                        }
                    }
                    for arm in &example_arms {
                        for pass in 0..passes {
                            // Synthetic feedback reproduces the attempt
                            // ordinal without naming a failed strategy:
                            // exclusions only shrink the ranking, and
                            // the pool already holds the whole window.
                            let feedback: Vec<Feedback> = (0..pass)
                                .map(|_| Feedback {
                                    strategy: None,
                                    message: "prior candidate failed validation".into(),
                                })
                                .collect();
                            let req = FixRequest {
                                code: code.clone(),
                                scope,
                                racy_var: info.racy_var.clone(),
                                racy_lines: loc.lines.clone(),
                                example: arm.as_ref().map(|(e, _)| e.clone()),
                                feedback,
                                context_funcs,
                                focus_func: Some(loc.function.clone()),
                                case_key: info.bug_hash.clone(),
                            };
                            llm_calls += 1;
                            let cands = llm.enumerate(&req, tcfg.max_candidates);
                            for cand in cands {
                                let Ok(patched) = self.integrate(files, loc, scope, &cand.code)
                                else {
                                    continue;
                                };
                                if !seen.insert(pool_key(&patched)) {
                                    continue;
                                }
                                let ploc = patch_loc(files, &patched);
                                pool.push(PoolEntry {
                                    cand,
                                    req: req.clone(),
                                    kind: *kind,
                                    loc: loc.clone(),
                                    scope,
                                    example_used: arm.is_some(),
                                    example_category: arm.as_ref().map(|(_, c)| *c),
                                    patched,
                                    ploc,
                                    repair_iters: 0,
                                    probe: StaticProbe {
                                        errors: 0,
                                        warnings: 0,
                                        first_rule: None,
                                        broken: false,
                                    },
                                });
                            }
                        }
                    }
                }
            }
        }

        // ── Phase 2: iterated repair against statcheck ───────────────
        //
        // Every candidate is probed; findings (errors *or* warnings)
        // trigger a bounded repair chain. Repaired code joins the pool
        // as a fresh candidate — the parent stays, preserving the
        // superset invariant — and the chain continues from the newest
        // link. Not one VM instruction is spent here.
        let mut lint_probes = 0u32;
        let mut total_repairs = 0u32;
        let base_len = pool.len();
        for i in 0..base_len {
            pool[i].probe = static_probe(&pool[i].patched);
            lint_probes += 1;
            let mut current = i;
            let mut iter = 0u32;
            while iter < tcfg.repair_max_iters {
                let probe = &pool[current].probe;
                if probe.clean() || probe.broken {
                    break;
                }
                let rule = probe.first_rule.clone().unwrap_or_else(|| "unknown".into());
                llm_calls += 1;
                let Some(rep) = llm.repair(&pool[current].req, &pool[current].cand, &rule, iter)
                else {
                    break;
                };
                iter += 1;
                total_repairs += 1;
                if rep.code == pool[current].cand.code {
                    break; // the model reproduced itself: converged
                }
                let Ok(patched) =
                    self.integrate(files, &pool[current].loc, pool[current].scope, &rep.code)
                else {
                    break;
                };
                if !seen.insert(pool_key(&patched)) {
                    break; // converged onto an already-known candidate
                }
                let ploc = patch_loc(files, &patched);
                let probe = static_probe(&patched);
                lint_probes += 1;
                pool.push(PoolEntry {
                    cand: rep,
                    req: pool[current].req.clone(),
                    kind: pool[current].kind,
                    loc: pool[current].loc.clone(),
                    scope: pool[current].scope,
                    example_used: pool[current].example_used,
                    example_category: pool[current].example_category,
                    patched,
                    ploc,
                    repair_iters: iter,
                    probe,
                });
                current = pool.len() - 1;
            }
        }
        PoolBuild {
            pool,
            llm_calls,
            lint_probes,
            total_repairs,
        }
    }

    /// Phase 3: rank the pool, validate survivors under schedule-diverse
    /// campaigns, crown the winner, and assemble the [`FixOutcome`].
    /// This is the tournament's only dynamic stage.
    pub(crate) fn tournament_decide(
        &self,
        test: &str,
        info: &raceinfo::RaceInfo,
        tcfg: &TournamentConfig,
        build: PoolBuild,
    ) -> FixOutcome {
        let PoolBuild {
            pool,
            llm_calls,
            lint_probes,
            total_repairs,
        } = build;
        let mut out = FixOutcome {
            fixed: false,
            patch: None,
            strategy: None,
            location: None,
            scope: None,
            example_used: false,
            example_category: None,
            llm_calls,
            validations: 0,
            rejected_static: 0,
            validation_vm_steps: 0,
            duration_minutes: 0.0,
            patch_loc: None,
            failure: None,
            bug_hash: Some(info.bug_hash.clone()),
            racy_var: Some(info.racy_var.clone()),
            tournament: None,
        };

        // ── Phase 3: rank, validate survivors, crown the winner ──────
        let mut order: Vec<usize> = (0..pool.len()).collect();
        order.sort_by(|&a, &b| {
            candidate_rank(
                (pool[a].cand.confidence, pool[a].ploc, a),
                (pool[b].cand.confidence, pool[b].ploc, b),
            )
        });
        if let CandidateSelection::ById(id) = tcfg.selection {
            order.retain(|&i| i == id);
        }

        let mut outcomes: Vec<CandidateOutcome> = vec![CandidateOutcome::NotValidated; pool.len()];
        let mut winner: Option<usize> = None;
        for &i in &order {
            if winner.is_some() && tcfg.selection != CandidateSelection::All {
                break;
            }
            let entry = &pool[i];
            // The error tier is sound for rejection: condemned
            // candidates burn zero schedules (this is the per-candidate
            // gate accounting the single-path gate does per attempt).
            if entry.probe.broken || entry.probe.errors > 0 {
                out.validations += 1;
                out.rejected_static += 1;
                outcomes[i] = CandidateOutcome::RejectedStatic {
                    rule: entry
                        .probe
                        .first_rule
                        .clone()
                        .unwrap_or_else(|| "unparseable".into()),
                };
                continue;
            }
            out.validations += 1;
            let validation_seed = crate::fleet::derive_validation_seed(
                self.cfg.seed,
                &info.bug_hash,
                // Key the campaign on the candidate id, not the sweep
                // position: the schedule set a candidate faces must not
                // depend on which others entered or left the pool.
                i as u32 + 1,
            );
            let vcfg = TestConfig {
                runs: self.cfg.validation_runs,
                seed: validation_seed,
                stop_on_race: false,
                policy: self.cfg.validate_policy.clone(),
                max_total_steps: self.cfg.validation_step_budget,
                dedup_streak: self.cfg.validation_dedup_streak,
                vm: VmOptions {
                    tier: self.cfg.vm_tier,
                    ..VmOptions::default()
                },
                ..TestConfig::default()
            };
            let vreport = validate_patch_report(
                &entry.patched,
                test,
                &info.bug_hash,
                &vcfg,
                &ValidationOptions {
                    static_gate: self.cfg.static_gate,
                },
            );
            out.validation_vm_steps += vreport.vm_steps;
            if vreport.rejected_static {
                out.rejected_static += 1;
            }
            match vreport.verdict {
                Verdict::Ok => {
                    if winner.is_none() {
                        winner = Some(i);
                        outcomes[i] = CandidateOutcome::Won;
                    } else {
                        // An `All` sweep: clean but outranked.
                        outcomes[i] = CandidateOutcome::Outranked;
                    }
                }
                Verdict::Fail(msg) => {
                    outcomes[i] = CandidateOutcome::FailedValidation { reason: msg };
                }
            }
        }

        let candidates: Vec<CandidateReport> = pool
            .iter()
            .enumerate()
            .map(|(i, e)| CandidateReport {
                id: i,
                strategy: e.cand.strategy,
                location: e.kind,
                scope: e.scope,
                example_used: e.example_used,
                confidence: e.cand.confidence,
                patch_loc: e.ploc,
                repair_iters: e.repair_iters,
                degraded: e.cand.degraded,
                outcome: outcomes[i].clone(),
                patch: tcfg.keep_candidates.then(|| e.patched.clone()),
            })
            .collect();

        if let Some(w) = winner {
            let e = &pool[w];
            out.fixed = true;
            out.patch_loc = Some(e.ploc);
            out.patch = Some(e.patched.clone());
            out.strategy = Some(e.cand.strategy);
            out.location = Some(e.kind);
            out.scope = Some(e.scope);
            out.example_used = e.example_used;
            out.example_category = e.example_category;
        } else {
            out.failure = Some(FailureKind::Unfixed);
        }
        out.duration_minutes = crate::pipeline::duration_minutes(out.llm_calls, out.validations);
        out.tournament = Some(TournamentReport {
            candidates,
            winner,
            repair_iters: total_repairs,
            lint_probes,
        });
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rank_prefers_confidence_then_loc_then_id() {
        use std::cmp::Ordering;
        // Higher confidence wins regardless of LoC.
        assert_eq!(candidate_rank((0.9, 50, 3), (0.5, 2, 0)), Ordering::Less);
        // Equal confidence: smaller patch wins.
        assert_eq!(candidate_rank((0.7, 3, 5), (0.7, 9, 1)), Ordering::Less);
        // Full tie: earlier enumeration id wins (the determinism pin).
        assert_eq!(candidate_rank((0.7, 3, 2), (0.7, 3, 4)), Ordering::Less);
        assert_eq!(candidate_rank((0.7, 3, 4), (0.7, 3, 2)), Ordering::Greater);
        assert_eq!(candidate_rank((0.7, 3, 2), (0.7, 3, 2)), Ordering::Equal);
    }

    #[test]
    fn rank_sorts_a_roster_deterministically() {
        let mut order: Vec<usize> = (0..4).collect();
        let rows = [(0.5, 4, 0), (0.9, 9, 1), (0.9, 2, 2), (0.5, 4, 3)];
        order.sort_by(|&a, &b| candidate_rank(rows[a], rows[b]));
        assert_eq!(order, vec![2, 1, 0, 3]);
    }
}
