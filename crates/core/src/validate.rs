//! Fix validation (§4.4.1): build the patched package, run the test
//! under many schedules, and confirm the reported race is gone.
//!
//! The schedule set a campaign explores is controlled by the
//! [`govm::sched::SchedulePolicy`] carried in the [`TestConfig`]:
//! [`validate_patch_with`] accepts the full campaign configuration
//! (policy, per-run seed stream, dedup early-exit, instruction budget),
//! while [`validate_patch`] keeps the simple runs-plus-seed entry point.

use govm::{compile_sources, CompileOptions, TestConfig};

/// Validation verdict.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Verdict {
    /// The patch builds, the race is gone, and all tests pass.
    Ok,
    /// The patch failed; the message feeds the retry loop (§4.4.2).
    Fail(String),
}

impl Verdict {
    /// `true` for [`Verdict::Ok`].
    pub fn is_ok(&self) -> bool {
        matches!(self, Verdict::Ok)
    }

    /// The failure message, if any.
    pub fn message(&self) -> Option<&str> {
        match self {
            Verdict::Ok => None,
            Verdict::Fail(m) => Some(m),
        }
    }
}

/// Validates a patched codebase against the targeted bug hash.
///
/// Mirrors §4.4.1: build, then run the package tests `runs` times; the
/// fix validates only if no schedule reproduces the targeted race (the
/// stable bug hash distinguishes it from unrelated pre-existing races),
/// no new panic/deadlock appears, and the tests pass.
pub fn validate_patch(
    files: &[(String, String)],
    test: &str,
    bug_hash: &str,
    runs: u32,
    seed: u64,
) -> Verdict {
    let cfg = TestConfig {
        runs,
        seed,
        stop_on_race: false,
        ..TestConfig::default()
    };
    validate_patch_with(files, test, bug_hash, &cfg)
}

/// [`validate_patch`] with an explicit campaign configuration: the
/// schedule policy, per-run seed stream, saturation early-exit and
/// instruction budget all come from `cfg`.
pub fn validate_patch_with(
    files: &[(String, String)],
    test: &str,
    bug_hash: &str,
    cfg: &TestConfig,
) -> Verdict {
    let prog = match compile_sources(files, &CompileOptions::default()) {
        Ok(p) => p,
        Err(e) => return Verdict::Fail(format!("build failed: {e}")),
    };
    if prog.find_func(test).is_none() {
        return Verdict::Fail(format!("build failed: test `{test}` disappeared"));
    }
    let out = govm::run_test_many(&prog, test, cfg);
    // A campaign that executed no schedules is vacuously clean — never
    // let that pass as a validated fix (e.g. `runs: 0` misconfiguration).
    if out.runs == 0 {
        return Verdict::Fail("validation failed: no schedules executed".into());
    }
    if out.has_bug(bug_hash) {
        return Verdict::Fail("validation failed: the reported data race is still detected".into());
    }
    if let Some(r) = out.races.first() {
        return Verdict::Fail(format!(
            "validation failed: a data race is still detected on `{}`",
            r.var_name
        ));
    }
    if let Some(e) = out.error {
        return Verdict::Fail(format!("test run failed: {e}"));
    }
    if !out.test_failures.is_empty() {
        return Verdict::Fail(format!(
            "test assertions failed: {}",
            out.test_failures.join("; ")
        ));
    }
    Verdict::Ok
}

#[cfg(test)]
mod tests {
    use super::*;

    const CLEAN: &str = r#"package app

import "testing"

func Work() int {
	return 2
}

func TestWork(t *testing.T) {
	if Work() != 2 {
		t.Errorf("bad")
	}
}
"#;

    const RACY: &str = r#"package app

import (
	"sync"
	"testing"
)

func Work() int {
	n := 0
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		n = n + 1
	}()
	go func() {
		defer wg.Done()
		n = n + 2
	}()
	wg.Wait()
	return n
}

func TestWork(t *testing.T) {
	Work()
}
"#;

    #[test]
    fn clean_code_validates() {
        let v = validate_patch(
            &[("a.go".into(), CLEAN.into())],
            "TestWork",
            "0000000000000000",
            12,
            0,
        );
        assert!(v.is_ok(), "{:?}", v.message());
    }

    #[test]
    fn racy_code_fails_with_race_message() {
        let v = validate_patch(
            &[("a.go".into(), RACY.into())],
            "TestWork",
            "0000000000000000",
            24,
            0,
        );
        let msg = v.message().expect("must fail");
        assert!(msg.contains("data race"), "{msg}");
    }

    #[test]
    fn broken_code_reports_build_failure() {
        let v = validate_patch(
            &[(
                "a.go".into(),
                "package app\n\nfunc Broken() {\n\tmystery()\n}\n".into(),
            )],
            "TestWork",
            "x",
            4,
            0,
        );
        assert!(v.message().unwrap().contains("build failed"));
    }

    #[test]
    fn missing_test_reports_build_failure() {
        let v = validate_patch(
            &[("a.go".into(), "package app\n".into())],
            "TestGone",
            "x",
            4,
            0,
        );
        assert!(v.message().unwrap().contains("build failed"));
    }

    #[test]
    fn explicit_campaigns_support_policies_and_early_exit() {
        use govm::SchedulePolicy;
        // The PCT policy still catches the racy version…
        let cfg = TestConfig {
            runs: 24,
            seed: 0,
            policy: SchedulePolicy::pct(),
            ..TestConfig::default()
        };
        let v = validate_patch_with(&[("a.go".into(), RACY.into())], "TestWork", "x", &cfg);
        assert!(v.message().unwrap().contains("data race"));
        // …and clean code validates even with dedup early-exit and a
        // campaign instruction budget switched on.
        let cfg = TestConfig {
            runs: 64,
            seed: 0,
            policy: SchedulePolicy::Sweep,
            dedup_streak: Some(6),
            max_total_steps: Some(500_000),
            ..TestConfig::default()
        };
        let v = validate_patch_with(&[("a.go".into(), CLEAN.into())], "TestWork", "x", &cfg);
        assert!(v.is_ok(), "{:?}", v.message());
    }

    #[test]
    fn zero_run_campaigns_never_validate() {
        // `runs: 0` executes nothing — that must not read as "race gone".
        let cfg = TestConfig {
            runs: 0,
            ..TestConfig::default()
        };
        let v = validate_patch_with(&[("a.go".into(), RACY.into())], "TestWork", "x", &cfg);
        assert!(v.message().unwrap().contains("no schedules"), "{v:?}");
        // A zero instruction budget still runs (at least) one schedule,
        // so the racy program is caught rather than vacuously passed.
        let cfg = TestConfig {
            runs: 24,
            max_total_steps: Some(0),
            ..TestConfig::default()
        };
        let v = validate_patch_with(&[("a.go".into(), RACY.into())], "TestWork", "x", &cfg);
        assert!(v.message().unwrap().contains("data race"), "{v:?}");
    }
}
