//! Fix validation (§4.4.1): build the patched package, statically check
//! its synchronization, run the test under many schedules, and confirm
//! the reported race is gone.
//!
//! The schedule set a campaign explores is controlled by the
//! [`govm::sched::SchedulePolicy`] carried in the [`TestConfig`]:
//! [`validate_patch_with`] accepts the full campaign configuration
//! (policy, per-run seed stream, dedup early-exit, instruction budget),
//! while [`validate_patch`] keeps the simple runs-plus-seed entry point.
//!
//! Between compilation and dynamic validation sits the **static gate**:
//! `statcheck` analyzes the patched sources and rejects candidates whose
//! synchronization is statically guaranteed broken (double-locks,
//! unbalanced unlocks, `WaitGroup` counters that never drain, …) before
//! any schedule is spent on them. Only error-tier diagnostics reject —
//! warning-tier findings are surfaced in [`ValidationOutcome`] but never
//! downgrade a dynamically-clean verdict.

use govm::{compile_sources, CompileOptions, TestConfig};

/// Validation verdict.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Verdict {
    /// The patch builds, the race is gone, and all tests pass.
    Ok,
    /// The patch failed; the message feeds the retry loop (§4.4.2).
    Fail(String),
}

impl Verdict {
    /// `true` for [`Verdict::Ok`].
    pub fn is_ok(&self) -> bool {
        matches!(self, Verdict::Ok)
    }

    /// The failure message, if any.
    pub fn message(&self) -> Option<&str> {
        match self {
            Verdict::Ok => None,
            Verdict::Fail(m) => Some(m),
        }
    }
}

/// Options controlling how [`validate_patch_report`] validates.
#[derive(Debug, Clone)]
pub struct ValidationOptions {
    /// Run the `statcheck` static gate between compile and dynamic
    /// validation, rejecting candidates with error-tier findings.
    pub static_gate: bool,
}

impl Default for ValidationOptions {
    fn default() -> Self {
        ValidationOptions { static_gate: true }
    }
}

/// Full report of one validation attempt.
#[derive(Debug, Clone)]
pub struct ValidationOutcome {
    /// The verdict (what [`validate_patch_with`] returns).
    pub verdict: Verdict,
    /// Whether the static gate rejected the candidate (no schedules ran).
    pub rejected_static: bool,
    /// Error-tier static diagnostics found.
    pub static_errors: usize,
    /// Warning-tier static diagnostics found (never reject).
    pub static_warnings: usize,
    /// VM instructions executed by dynamic validation (0 when the gate
    /// rejected or the build failed).
    pub vm_steps: u64,
}

/// Validates a patched codebase against the targeted bug hash.
///
/// Mirrors §4.4.1: build, then run the package tests `runs` times; the
/// fix validates only if no schedule reproduces the targeted race (the
/// stable bug hash distinguishes it from unrelated pre-existing races),
/// no new panic/deadlock appears, and the tests pass.
pub fn validate_patch(
    files: &[(String, String)],
    test: &str,
    bug_hash: &str,
    runs: u32,
    seed: u64,
) -> Verdict {
    let cfg = TestConfig {
        runs,
        seed,
        stop_on_race: false,
        ..TestConfig::default()
    };
    validate_patch_with(files, test, bug_hash, &cfg)
}

/// [`validate_patch`] with an explicit campaign configuration: the
/// schedule policy, per-run seed stream, saturation early-exit and
/// instruction budget all come from `cfg`. Runs with the static gate
/// enabled (the default pipeline configuration).
pub fn validate_patch_with(
    files: &[(String, String)],
    test: &str,
    bug_hash: &str,
    cfg: &TestConfig,
) -> Verdict {
    validate_patch_report(files, test, bug_hash, cfg, &ValidationOptions::default()).verdict
}

/// Renders a build failure with the failing file and line when the
/// failure is attributable to a single source file.
fn build_failure_message(files: &[(String, String)], diag: &golite::Diag) -> String {
    for (name, src) in files {
        if let Err(d) = golite::parse_file(src) {
            return format!("build failed: {}", d.render(name, src));
        }
    }
    format!("build failed: {diag}")
}

/// One zero-cost lint probe of a candidate patch: `statcheck` only — no
/// compilation, no schedules, no VM instructions. The tournament's
/// repair loop iterates against this before any dynamic validation is
/// spent (per-candidate gate accounting).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StaticProbe {
    /// Error-tier findings (sound for rejection).
    pub errors: usize,
    /// Warning-tier findings (heuristic; trigger repair, never reject).
    pub warnings: usize,
    /// Rule of the most severe first finding, if any.
    pub first_rule: Option<String>,
    /// The sources no longer parse (a broken candidate).
    pub broken: bool,
}

impl StaticProbe {
    /// Whether the probe found anything to repair against.
    pub fn clean(&self) -> bool {
        !self.broken && self.errors == 0 && self.warnings == 0
    }
}

/// Runs `statcheck` over a candidate codebase without spending any
/// dynamic validation work. See [`StaticProbe`].
pub fn static_probe(files: &[(String, String)]) -> StaticProbe {
    match statcheck::check_sources(files) {
        Ok(reports) => {
            let errors = statcheck::count_severity(&reports, statcheck::Severity::Error);
            let warnings = statcheck::count_severity(&reports, statcheck::Severity::Warning);
            let first_rule = statcheck::first_error(&reports)
                .map(|(_, d)| d.rule.clone())
                .or_else(|| {
                    reports
                        .iter()
                        .flat_map(|r| r.diagnostics.iter())
                        .next()
                        .map(|d| d.rule.clone())
                });
            StaticProbe {
                errors,
                warnings,
                first_rule,
                broken: false,
            }
        }
        Err(_) => StaticProbe {
            errors: 0,
            warnings: 0,
            first_rule: None,
            broken: true,
        },
    }
}

/// The full validation pipeline with an explicit [`ValidationOptions`]:
/// compile, static gate, then the dynamic schedule campaign. Returns the
/// verdict plus gate statistics and the dynamic instruction count.
pub fn validate_patch_report(
    files: &[(String, String)],
    test: &str,
    bug_hash: &str,
    cfg: &TestConfig,
    opts: &ValidationOptions,
) -> ValidationOutcome {
    let mut outcome = ValidationOutcome {
        verdict: Verdict::Ok,
        rejected_static: false,
        static_errors: 0,
        static_warnings: 0,
        vm_steps: 0,
    };
    let prog = match compile_sources(files, &CompileOptions::default()) {
        Ok(p) => p,
        Err(e) => {
            outcome.verdict = Verdict::Fail(build_failure_message(files, &e));
            return outcome;
        }
    };
    if prog.find_func(test).is_none() {
        outcome.verdict = Verdict::Fail(format!("build failed: test `{test}` disappeared"));
        return outcome;
    }
    if opts.static_gate {
        match statcheck::check_sources(files) {
            Ok(reports) => {
                outcome.static_errors =
                    statcheck::count_severity(&reports, statcheck::Severity::Error);
                outcome.static_warnings =
                    statcheck::count_severity(&reports, statcheck::Severity::Warning);
                if let Some((file, diag)) = statcheck::first_error(&reports) {
                    let src = files
                        .iter()
                        .find(|(n, _)| n == file)
                        .map(|(_, s)| s.as_str())
                        .unwrap_or("");
                    outcome.rejected_static = true;
                    outcome.verdict =
                        Verdict::Fail(format!("static check failed: {}", diag.render(file, src)));
                    return outcome;
                }
            }
            Err((file, d)) => {
                // Unreachable after a successful compile, but stay safe.
                let src = files
                    .iter()
                    .find(|(n, _)| n == &file)
                    .map(|(_, s)| s.as_str())
                    .unwrap_or("");
                outcome.verdict = Verdict::Fail(format!("build failed: {}", d.render(&file, src)));
                return outcome;
            }
        }
    }
    let out = govm::run_test_many(&prog, test, cfg);
    outcome.vm_steps = out.steps;
    // A campaign that executed no schedules is vacuously clean — never
    // let that pass as a validated fix (e.g. `runs: 0` misconfiguration).
    if out.runs == 0 {
        outcome.verdict = Verdict::Fail("validation failed: no schedules executed".into());
        return outcome;
    }
    if out.has_bug(bug_hash) {
        outcome.verdict =
            Verdict::Fail("validation failed: the reported data race is still detected".into());
        return outcome;
    }
    if let Some(r) = out.races.first() {
        outcome.verdict = Verdict::Fail(format!(
            "validation failed: a data race is still detected on `{}`",
            r.var_name
        ));
        return outcome;
    }
    if let Some(e) = out.error {
        outcome.verdict = Verdict::Fail(format!("test run failed: {e}"));
        return outcome;
    }
    if !out.test_failures.is_empty() {
        outcome.verdict = Verdict::Fail(format!(
            "test assertions failed: {}",
            out.test_failures.join("; ")
        ));
        return outcome;
    }
    outcome
}

#[cfg(test)]
mod tests {
    use super::*;

    const CLEAN: &str = r#"package app

import "testing"

func Work() int {
	return 2
}

func TestWork(t *testing.T) {
	if Work() != 2 {
		t.Errorf("bad")
	}
}
"#;

    const RACY: &str = r#"package app

import (
	"sync"
	"testing"
)

func Work() int {
	n := 0
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		n = n + 1
	}()
	go func() {
		defer wg.Done()
		n = n + 2
	}()
	wg.Wait()
	return n
}

func TestWork(t *testing.T) {
	Work()
}
"#;

    #[test]
    fn clean_code_validates() {
        let v = validate_patch(
            &[("a.go".into(), CLEAN.into())],
            "TestWork",
            "0000000000000000",
            12,
            0,
        );
        assert!(v.is_ok(), "{:?}", v.message());
    }

    #[test]
    fn racy_code_fails_with_race_message() {
        let v = validate_patch(
            &[("a.go".into(), RACY.into())],
            "TestWork",
            "0000000000000000",
            24,
            0,
        );
        let msg = v.message().expect("must fail");
        assert!(msg.contains("data race"), "{msg}");
    }

    #[test]
    fn broken_code_reports_build_failure() {
        let v = validate_patch(
            &[(
                "a.go".into(),
                "package app\n\nfunc Broken() {\n\tmystery()\n}\n".into(),
            )],
            "TestWork",
            "x",
            4,
            0,
        );
        assert!(v.message().unwrap().contains("build failed"));
    }

    #[test]
    fn missing_test_reports_build_failure() {
        let v = validate_patch(
            &[("a.go".into(), "package app\n".into())],
            "TestGone",
            "x",
            4,
            0,
        );
        assert!(v.message().unwrap().contains("build failed"));
    }

    #[test]
    fn explicit_campaigns_support_policies_and_early_exit() {
        use govm::SchedulePolicy;
        // The PCT policy still catches the racy version…
        let cfg = TestConfig {
            runs: 24,
            seed: 0,
            policy: SchedulePolicy::pct(),
            ..TestConfig::default()
        };
        let v = validate_patch_with(&[("a.go".into(), RACY.into())], "TestWork", "x", &cfg);
        assert!(v.message().unwrap().contains("data race"));
        // …and clean code validates even with dedup early-exit and a
        // campaign instruction budget switched on.
        let cfg = TestConfig {
            runs: 64,
            seed: 0,
            policy: SchedulePolicy::Sweep,
            dedup_streak: Some(6),
            max_total_steps: Some(500_000),
            ..TestConfig::default()
        };
        let v = validate_patch_with(&[("a.go".into(), CLEAN.into())], "TestWork", "x", &cfg);
        assert!(v.is_ok(), "{:?}", v.message());
    }

    #[test]
    fn static_gate_rejects_guaranteed_deadlock_before_running() {
        // A compiling candidate whose goroutine double-locks: the gate
        // must reject it with a span-bearing message and zero VM steps.
        let src = r#"package app

import (
	"sync"
	"testing"
)

var mu sync.Mutex
var n int

func Work() int {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		mu.Lock()
		mu.Lock()
		n++
		mu.Unlock()
		mu.Unlock()
	}()
	wg.Wait()
	return n
}

func TestWork(t *testing.T) {
	Work()
}
"#;
        let out = validate_patch_report(
            &[("a.go".into(), src.into())],
            "TestWork",
            "x",
            &TestConfig::default(),
            &ValidationOptions::default(),
        );
        assert!(out.rejected_static);
        assert_eq!(out.vm_steps, 0);
        assert!(out.static_errors >= 1);
        let msg = out.verdict.message().unwrap();
        assert!(msg.starts_with("static check failed: a.go:"), "{msg}");
        assert!(msg.contains("double-lock"), "{msg}");
        // With the gate off, dynamic validation catches the deadlock too.
        let out = validate_patch_report(
            &[("a.go".into(), src.into())],
            "TestWork",
            "x",
            &TestConfig::default(),
            &ValidationOptions { static_gate: false },
        );
        assert!(!out.rejected_static);
        assert!(out.vm_steps > 0);
        assert!(!out.verdict.is_ok());
    }

    #[test]
    fn warnings_never_downgrade_a_clean_verdict() {
        // `wg.Wait` orders the final read, yet a heuristic rule could be
        // tempted to flag the unguarded parent access: the verdict must
        // stay Ok no matter what the warning tier reports.
        let fixed = r#"package app

import (
	"sync"
	"testing"
)

func Work() int {
	n := 0
	var mu sync.Mutex
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		mu.Lock()
		n = n + 1
		mu.Unlock()
	}()
	go func() {
		defer wg.Done()
		mu.Lock()
		n = n + 2
		mu.Unlock()
	}()
	wg.Wait()
	return n
}

func TestWork(t *testing.T) {
	if Work() != 3 {
		t.Errorf("bad")
	}
}
"#;
        let out = validate_patch_report(
            &[("a.go".into(), fixed.into())],
            "TestWork",
            "x",
            &TestConfig {
                runs: 12,
                ..TestConfig::default()
            },
            &ValidationOptions::default(),
        );
        assert!(out.verdict.is_ok(), "{:?}", out.verdict.message());
        assert!(!out.rejected_static);
        assert_eq!(out.static_errors, 0);
    }

    #[test]
    fn build_failures_carry_file_and_line() {
        let v = validate_patch(
            &[
                ("ok.go".into(), CLEAN.into()),
                ("bad.go".into(), "package app\n\nfunc Broken( {\n".into()),
            ],
            "TestWork",
            "x",
            4,
            0,
        );
        let msg = v.message().unwrap();
        assert!(msg.starts_with("build failed: bad.go:3:"), "{msg}");
    }

    #[test]
    fn zero_run_campaigns_never_validate() {
        // `runs: 0` executes nothing — that must not read as "race gone".
        let cfg = TestConfig {
            runs: 0,
            ..TestConfig::default()
        };
        let v = validate_patch_with(&[("a.go".into(), RACY.into())], "TestWork", "x", &cfg);
        assert!(v.message().unwrap().contains("no schedules"), "{v:?}");
        // A zero instruction budget still runs (at least) one schedule,
        // so the racy program is caught rather than vacuously passed.
        let cfg = TestConfig {
            runs: 24,
            max_total_steps: Some(0),
            ..TestConfig::default()
        };
        let v = validate_patch_with(&[("a.go".into(), RACY.into())], "TestWork", "x", &cfg);
        assert!(v.message().unwrap().contains("data race"), "{v:?}");
    }
}
