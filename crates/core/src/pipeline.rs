//! The Dr.Fix pipeline: Listing 13's `GetAFix` loop.
//!
//! For each race: reproduce it, extract fix locations (test → leaf →
//! LCA), and for each `(location, scope, example, retry)` combination ask
//! the model for a patch, splice it into the codebase, and validate under
//! many schedules. The first validated patch wins.

use crate::database::{ExampleDb, RagMode};
use crate::raceinfo::{self, FixLocation, LocationKind};
use crate::validate::{validate_patch_report, ValidationOptions, Verdict};
use golite::ast::Decl;
use golite::visit::RenamePkg;
use govm::{compile_sources, CompileOptions, SchedulePolicy, TestConfig, VmOptions};
use serde::{Deserialize, Serialize};
use synthllm::{Feedback, FixRequest, ModelTier, Scope, SynthLlm};

/// Pipeline configuration — every ablation of §5 is a toggle here.
#[derive(Debug, Clone)]
pub struct PipelineConfig {
    /// Model tier (RQ3).
    pub tier: ModelTier,
    /// Retrieval mode (Fig. 3).
    pub rag: RagMode,
    /// Fix locations to attempt, in order (RQ2.5 toggles `Lca`).
    pub locations: Vec<LocationKind>,
    /// Fix scopes to attempt, in order (Fig. 4).
    pub scopes: Vec<Scope>,
    /// Whether validation failures feed back into the next prompt (Fig. 4).
    pub feedback: bool,
    /// Retries per `(location, scope, example)` combination (the paper
    /// restricts to one retry, §5.1).
    pub retries: u32,
    /// Schedules per validation (the paper runs 1000; the default here
    /// keeps benches fast and is configurable).
    pub validation_runs: u32,
    /// Schedules for the initial reproduction.
    pub detect_runs: u32,
    /// Deterministic seed.
    pub seed: u64,
    /// Schedule-exploration policy for the reproduce step. Detection
    /// profits from an aggressive explorer (e.g. PCT) — a race the
    /// scheduler never exposes is reported `NotReproduced`.
    pub detect_policy: SchedulePolicy,
    /// Schedule-exploration policy for validation campaigns — may differ
    /// from detection (the paper's 1000-schedule sweep corresponds to a
    /// broad uniform/sweep exploration).
    pub validate_policy: SchedulePolicy,
    /// Campaign-wide instruction budget per validation (off by default).
    pub validation_step_budget: Option<u64>,
    /// Validation early-exit after this many consecutive replayed
    /// schedule signatures (off by default).
    pub validation_dedup_streak: Option<u32>,
    /// Run the `statcheck` static gate before each dynamic validation,
    /// rejecting candidates whose synchronization is statically
    /// guaranteed broken without spending any schedules on them. The
    /// gate's error tier is sound for rejection, so toggling it never
    /// changes which fixes are found — only how much validation work
    /// broken candidates burn.
    pub static_gate: bool,
    /// When set, cases run through the tournament arm
    /// ([`crate::tournament`]) instead of this module's single-path
    /// loop: multiple candidates per prompt, a statcheck-driven repair
    /// loop, and confidence-ranked winner selection.
    pub tournament: Option<crate::tournament::TournamentConfig>,
    /// Interpreter tier every detection/validation VM runs on (distinct
    /// from [`tier`](PipelineConfig::tier), the *model* tier). Defaults
    /// to the `DRFIX_TIER` environment knob, so a whole campaign —
    /// testrun, fleet, campaign orchestrator, perfscan — switches tier
    /// without touching any config. Tier choice is proven
    /// behaviour-invisible (bit-identical counters, bug hashes and
    /// schedule signatures), so this only moves wall-clock.
    pub vm_tier: govm::Tier,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig {
            tier: ModelTier::Gpt4Turbo,
            rag: RagMode::Skeleton,
            locations: LocationKind::default_order(),
            scopes: vec![Scope::Func, Scope::File],
            feedback: true,
            retries: 1,
            validation_runs: 16,
            detect_runs: 40,
            seed: 0,
            detect_policy: SchedulePolicy::Random,
            validate_policy: SchedulePolicy::Random,
            validation_step_budget: None,
            validation_dedup_streak: None,
            static_gate: true,
            tournament: None,
            vm_tier: govm::Tier::from_env(),
        }
    }
}

/// Why a case produced no patch.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum FailureKind {
    /// The race never reproduced under the detection schedules.
    NotReproduced,
    /// Every candidate patch failed validation (or the model declined).
    Unfixed,
}

/// The outcome of one `GetAFix` run.
#[derive(Debug, Clone, PartialEq)]
pub struct FixOutcome {
    /// Whether a validated patch was produced.
    pub fixed: bool,
    /// The patched codebase on success.
    pub patch: Option<Vec<(String, String)>>,
    /// Strategy of the successful patch.
    pub strategy: Option<synthllm::StrategyKind>,
    /// Location kind that hosted the fix.
    pub location: Option<LocationKind>,
    /// Scope of the successful attempt.
    pub scope: Option<Scope>,
    /// Whether a retrieved example guided the successful attempt.
    pub example_used: bool,
    /// Category of the retrieved example on the successful attempt.
    pub example_category: Option<synthllm::RaceCategory>,
    /// LLM calls made.
    pub llm_calls: u32,
    /// Validation campaigns run.
    pub validations: u32,
    /// Candidates rejected by the static gate (subset of `validations`).
    pub rejected_static: u32,
    /// VM instructions executed across all dynamic validation campaigns.
    pub validation_vm_steps: u64,
    /// Synthetic wall-clock minutes (calibrated to §5.2's 6–29 range).
    pub duration_minutes: f64,
    /// Changed-line count of the accepted patch.
    pub patch_loc: Option<usize>,
    /// Failure classification when unfixed.
    pub failure: Option<FailureKind>,
    /// The reproduced race's bug hash.
    pub bug_hash: Option<String>,
    /// The racy variable from the report.
    pub racy_var: Option<String>,
    /// Tournament trace when the tournament arm ran (`None` on the
    /// single-path loop).
    pub tournament: Option<crate::tournament::TournamentReport>,
}

/// The Dr.Fix system: configuration plus the example database.
pub struct DrFix<'db> {
    pub(crate) cfg: PipelineConfig,
    pub(crate) db: Option<&'db ExampleDb>,
}

impl<'db> DrFix<'db> {
    /// Creates a pipeline. `db` may be `None` only for [`RagMode::None`].
    pub fn new(cfg: PipelineConfig, db: Option<&'db ExampleDb>) -> Self {
        DrFix { cfg, db }
    }

    /// The configuration.
    pub fn config(&self) -> &PipelineConfig {
        &self.cfg
    }

    /// Runs the full loop on one case: `files` is the codebase, `test`
    /// the test that exercises the race.
    ///
    /// Structured as detect (`DrFix::reproduce`) then fix
    /// (`DrFix::fix_from_report`) so the campaign orchestrator can run
    /// the two halves in different pipeline stages while sharing this
    /// exact code path.
    pub fn fix_case(&self, files: &[(String, String)], test: &str) -> FixOutcome {
        match self.reproduce(files, test) {
            Some(report) => self.fix_from_report(files, test, &report),
            None => Self::unreproduced_outcome(),
        }
    }

    /// The outcome of a case whose race never reproduced under the
    /// detection schedules — identical whichever arm would have run.
    pub(crate) fn unreproduced_outcome() -> FixOutcome {
        FixOutcome {
            fixed: false,
            patch: None,
            strategy: None,
            location: None,
            scope: None,
            example_used: false,
            example_category: None,
            llm_calls: 0,
            validations: 0,
            rejected_static: 0,
            validation_vm_steps: 0,
            duration_minutes: 4.0,
            patch_loc: None,
            failure: Some(FailureKind::NotReproduced),
            bug_hash: None,
            racy_var: None,
            tournament: None,
        }
    }

    /// Everything after detection: diagnose the reproduced race and run
    /// the configured fix arm (single-path loop or tournament).
    pub(crate) fn fix_from_report(
        &self,
        files: &[(String, String)],
        test: &str,
        report: &racedet::RaceReport,
    ) -> FixOutcome {
        if let Some(tcfg) = self.cfg.tournament.clone() {
            return self.fix_from_report_tournament(files, test, report, &tcfg);
        }
        let mut out = FixOutcome {
            fixed: false,
            patch: None,
            strategy: None,
            location: None,
            scope: None,
            example_used: false,
            example_category: None,
            llm_calls: 0,
            validations: 0,
            rejected_static: 0,
            validation_vm_steps: 0,
            duration_minutes: 0.0,
            patch_loc: None,
            failure: None,
            bug_hash: None,
            racy_var: None,
            tournament: None,
        };
        let info = raceinfo::extract(report, files);
        out.bug_hash = Some(info.bug_hash.clone());
        out.racy_var = Some(info.racy_var.clone());

        let llm = SynthLlm::new(self.cfg.tier, self.cfg.seed);

        // Visible files: internal code only (§5.6: races whose frames sit
        // in external/vendored code do not fit the workflow).
        let visible = |name: &str| !name.starts_with("vendor_");

        for kind in &self.cfg.locations {
            let locations: Vec<&FixLocation> = info
                .locations
                .iter()
                .filter(|l| l.kind == *kind && visible(&l.file))
                .collect();
            for loc in locations {
                for &scope in &self.cfg.scopes {
                    let Some((code, context_funcs)) = self.scope_code(files, loc, scope) else {
                        continue;
                    };
                    // The empty example is always attempted first (§4.4);
                    // retrieval activates only if needed (§5.7.1).
                    let mut example_arms = vec![None];
                    if self.cfg.rag != RagMode::None {
                        if let Some(db) = self.db {
                            if let Some((ex, cat, _score)) =
                                db.retrieve(self.cfg.rag, &code, &info.racy_var, &loc.lines)
                            {
                                example_arms.push(Some((ex, cat)));
                            }
                        }
                    }
                    for arm in &example_arms {
                        let mut feedback: Vec<Feedback> = Vec::new();
                        for _attempt in 0..=self.cfg.retries {
                            let req = FixRequest {
                                code: code.clone(),
                                scope,
                                racy_var: info.racy_var.clone(),
                                racy_lines: loc.lines.clone(),
                                example: arm.as_ref().map(|(e, _)| e.clone()),
                                feedback: if self.cfg.feedback {
                                    feedback.clone()
                                } else {
                                    Vec::new()
                                },
                                context_funcs,
                                focus_func: Some(loc.function.clone()),
                                case_key: info.bug_hash.clone(),
                            };
                            out.llm_calls += 1;
                            let resp = llm.generate(&req);
                            let Some(new_code) = resp.code else {
                                break; // the model declined this arm
                            };
                            let patched = match self.integrate(files, loc, scope, &new_code) {
                                Ok(p) => p,
                                Err(e) => {
                                    feedback.push(Feedback {
                                        strategy: resp.strategy,
                                        message: format!("build failed: {e}"),
                                    });
                                    continue;
                                }
                            };
                            out.validations += 1;
                            // Each validation campaign samples a fresh
                            // schedule set: deriving the seed from the
                            // attempt ordinal is what lets feedback
                            // retries escape schedule-sampling luck.
                            let validation_seed = crate::fleet::derive_validation_seed(
                                self.cfg.seed,
                                &info.bug_hash,
                                out.validations,
                            );
                            let vcfg = TestConfig {
                                runs: self.cfg.validation_runs,
                                seed: validation_seed,
                                stop_on_race: false,
                                policy: self.cfg.validate_policy.clone(),
                                max_total_steps: self.cfg.validation_step_budget,
                                dedup_streak: self.cfg.validation_dedup_streak,
                                vm: VmOptions {
                                    tier: self.cfg.vm_tier,
                                    ..VmOptions::default()
                                },
                                ..TestConfig::default()
                            };
                            let report = validate_patch_report(
                                &patched,
                                test,
                                &info.bug_hash,
                                &vcfg,
                                &ValidationOptions {
                                    static_gate: self.cfg.static_gate,
                                },
                            );
                            out.validation_vm_steps += report.vm_steps;
                            if report.rejected_static {
                                out.rejected_static += 1;
                            }
                            match report.verdict {
                                Verdict::Ok => {
                                    out.fixed = true;
                                    out.patch_loc = Some(patch_loc(files, &patched));
                                    out.patch = Some(patched);
                                    out.strategy = resp.strategy;
                                    out.location = Some(*kind);
                                    out.scope = Some(scope);
                                    out.example_used = arm.is_some();
                                    out.example_category = arm.as_ref().map(|(_, c)| *c);
                                    out.duration_minutes =
                                        duration_minutes(out.llm_calls, out.validations);
                                    return out;
                                }
                                Verdict::Fail(msg) => {
                                    feedback.push(Feedback {
                                        strategy: resp.strategy,
                                        message: msg,
                                    });
                                }
                            }
                        }
                    }
                }
            }
        }
        out.failure = Some(FailureKind::Unfixed);
        out.duration_minutes = duration_minutes(out.llm_calls, out.validations);
        out
    }

    /// Runs the detection campaign, returning the full [`govm`] test
    /// outcome (stop reason, counters, any exposed races) — `None` when
    /// the sources do not compile. [`DrFix::reproduce`] is the
    /// race-or-nothing view; the campaign orchestrator keeps the whole
    /// outcome for its per-stage metrics and stop-reason tallies.
    pub(crate) fn detect_outcome(
        &self,
        files: &[(String, String)],
        test: &str,
    ) -> Option<govm::TestOutcome> {
        let prog = compile_sources(files, &CompileOptions::default()).ok()?;
        let cfg = TestConfig {
            runs: self.cfg.detect_runs,
            seed: self.cfg.seed,
            stop_on_race: true,
            policy: self.cfg.detect_policy.clone(),
            vm: VmOptions {
                tier: self.cfg.vm_tier,
                ..VmOptions::default()
            },
            ..TestConfig::default()
        };
        Some(govm::run_test_many(&prog, test, &cfg))
    }

    /// Reproduces the race, returning the first report.
    pub(crate) fn reproduce(
        &self,
        files: &[(String, String)],
        test: &str,
    ) -> Option<racedet::RaceReport> {
        self.detect_outcome(files, test)?.races.into_iter().next()
    }

    /// Extracts the prompt code for a `(location, scope)` pair.
    pub(crate) fn scope_code(
        &self,
        files: &[(String, String)],
        loc: &FixLocation,
        scope: Scope,
    ) -> Option<(String, usize)> {
        let (_, src) = files.iter().find(|(n, _)| n == &loc.file)?;
        let parsed = golite::parse_file(src).ok()?;
        let context_funcs = parsed.funcs().count();
        match scope {
            Scope::File => Some((src.clone(), context_funcs)),
            Scope::Func => {
                let wrapper = func_scope_wrapper(&parsed, &loc.function)?;
                Some((wrapper, 1))
            }
        }
    }

    /// Splices the model's output back into the codebase.
    pub(crate) fn integrate(
        &self,
        files: &[(String, String)],
        loc: &FixLocation,
        scope: Scope,
        new_code: &str,
    ) -> Result<Vec<(String, String)>, String> {
        let patched_file = match scope {
            Scope::File => {
                golite::parse_file(new_code).map_err(|e| e.to_string())?;
                new_code.to_owned()
            }
            Scope::Func => {
                let (_, orig_src) = files
                    .iter()
                    .find(|(n, _)| n == &loc.file)
                    .ok_or("location file vanished")?;
                integrate_func_patch(orig_src, new_code, &loc.function)?
            }
        };
        Ok(files
            .iter()
            .map(|(n, s)| {
                if n == &loc.file {
                    (n.clone(), patched_file.clone())
                } else {
                    (n.clone(), s.clone())
                }
            })
            .collect())
    }
}

/// Builds the `Scope::Func` prompt wrapper: a one-function file carrying
/// the original file's imports (aliases preserved — the model must see
/// the same local names the function body uses) plus the focus function.
pub fn func_scope_wrapper(parsed: &golite::ast::File, func_name: &str) -> Option<String> {
    let f = parsed.find_func(func_name)?;
    let mut wrapper = String::from("package p\n\n");
    for imp in &parsed.imports {
        match &imp.alias {
            Some(alias) => wrapper.push_str(&format!("import {alias} \"{}\"\n", imp.path)),
            None => wrapper.push_str(&format!("import \"{}\"\n", imp.path)),
        }
    }
    wrapper.push('\n');
    wrapper.push_str(&golite::print_func(f));
    wrapper.push('\n');
    Some(wrapper)
}

/// Splices a function-scope patch (a wrapper file holding the revised
/// function plus any new imports/globals/types) into the original file.
pub fn integrate_func_patch(
    original: &str,
    wrapper: &str,
    func_name: &str,
) -> Result<String, String> {
    let mut orig = golite::parse_file(original).map_err(|e| e.to_string())?;
    let mut patch = golite::parse_file(wrapper).map_err(|e| e.to_string())?;

    // Merge imports. Paths are compared, but the *binding* is the local
    // name (alias, or the path's last segment): when both files import
    // the same path under different locals, the wrapper's declarations
    // must be rewritten to the original's qualifier — otherwise an
    // unaliased `import "sync"` merged into a file holding `sy "sync"`
    // leaves the spliced body referencing an unbound `sync.`.
    let local_name = |alias: &Option<String>, path: &str| -> String {
        alias
            .clone()
            .unwrap_or_else(|| path.rsplit('/').next().unwrap_or(path).to_owned())
    };
    let mut renames: Vec<(String, String)> = Vec::new();
    for imp in &patch.imports {
        let incoming = local_name(&imp.alias, &imp.path);
        match orig.imports.iter().find(|i| i.path == imp.path) {
            None => orig.imports.push(imp.clone()),
            Some(existing) => {
                let bound = local_name(&existing.alias, &existing.path);
                if bound != incoming {
                    renames.push((incoming, bound));
                }
            }
        }
    }
    for (from, to) in &renames {
        let mut r = RenamePkg { from, to };
        for d in &mut patch.decls {
            r.rename_decl(d);
        }
    }

    let new_func = patch
        .find_func(func_name)
        .ok_or_else(|| format!("patch lost function `{func_name}`"))?
        .clone();

    let mut replaced = false;
    for d in &mut orig.decls {
        if let Decl::Func(f) = d {
            if f.name == func_name {
                *d = Decl::Func(new_func.clone());
                replaced = true;
                break;
            }
        }
    }
    if !replaced {
        return Err(format!("original lost function `{func_name}`"));
    }
    // Carry over new top-level declarations (mutex globals, helper
    // types) as one block in wrapper order: inserting them one-by-one at
    // position 0 would reverse them, hoisting a `var` above the `type`
    // it references.
    let mut carried: Vec<Decl> = Vec::new();
    for d in &patch.decls {
        let known = |decls: &[Decl]| {
            decls.iter().any(|od| match (od, d) {
                (Decl::Func(of), Decl::Func(f)) => of.name == f.name,
                (Decl::Type(ot), Decl::Type(t)) => ot.name == t.name,
                (Decl::Var(ov) | Decl::Const(ov), Decl::Var(v) | Decl::Const(v)) => {
                    ov.names == v.names
                }
                _ => false,
            })
        };
        if !known(&orig.decls) && !known(&carried) {
            carried.push(d.clone());
        }
    }
    orig.decls.splice(0..0, carried);
    Ok(golite::print_file(&orig))
}

/// Changed-line count of a whole-codebase patch.
pub fn patch_loc(before: &[(String, String)], after: &[(String, String)]) -> usize {
    let mut total = 0;
    for (name, new_src) in after {
        let old = before
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, s)| s.as_str())
            .unwrap_or("");
        total += corpus::diff_lines(old, new_src);
    }
    total
}

/// Synthetic fix duration, calibrated so successful fixes land in the
/// paper's 6/13/14/29 min (min/avg/median/max) envelope (§5.2).
pub(crate) fn duration_minutes(llm_calls: u32, validations: u32) -> f64 {
    4.0 + 0.9 * llm_calls as f64 + 0.55 * validations as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn integrates_func_patch_with_new_globals() {
        let orig = "package app\n\nfunc Work() {\n\tx := 1\n\t_ = x\n}\n\nfunc Other() {\n}\n";
        let wrapper = "package p\n\nimport \"sync\"\n\nvar mu sync.Mutex\n\nfunc Work() {\n\tmu.Lock()\n\tx := 1\n\t_ = x\n\tmu.Unlock()\n}\n";
        let merged = integrate_func_patch(orig, wrapper, "Work").unwrap();
        assert!(merged.contains("import \"sync\""), "{merged}");
        assert!(merged.contains("var mu sync.Mutex"), "{merged}");
        assert!(merged.contains("mu.Lock()"), "{merged}");
        assert!(merged.contains("func Other()"), "{merged}");
        golite::parse_file(&merged).unwrap();
    }

    #[test]
    fn carried_declarations_keep_wrapper_order() {
        // The wrapper declares a type and then a var of that type: the
        // merged file must keep the type above the var.
        let orig = "package app\n\nfunc Work() {\n\tx := 1\n\t_ = x\n}\n";
        let wrapper = concat!(
            "package p\n\n",
            "type Guard struct {\n\tn int\n}\n\n",
            "var g Guard\n\n",
            "var mu int\n\n",
            "func Work() {\n\tx := 2\n\t_ = x\n}\n",
        );
        let merged = integrate_func_patch(orig, wrapper, "Work").unwrap();
        let type_at = merged.find("type Guard").expect("type carried");
        let var_at = merged.find("var g Guard").expect("var carried");
        let mu_at = merged.find("var mu").expect("second var carried");
        assert!(
            type_at < var_at && var_at < mu_at,
            "carried decls out of wrapper order:\n{merged}"
        );
        golite::parse_file(&merged).unwrap();
    }

    #[test]
    fn duplicate_wrapper_declarations_are_carried_once() {
        let orig = "package app\n\nfunc Work() {\n}\n";
        let wrapper =
            "package p\n\nvar mu int\n\nvar mu int\n\nfunc Work() {\n\tmu = 1\n\t_ = mu\n}\n";
        let merged = integrate_func_patch(orig, wrapper, "Work").unwrap();
        assert_eq!(merged.matches("var mu").count(), 1, "{merged}");
    }

    #[test]
    fn func_wrapper_preserves_import_aliases() {
        let src = concat!(
            "package app\n\n",
            "import (\n\tsy \"sync\"\n\t\"testing\"\n)\n\n",
            "func Work() {\n\tvar mu sy.Mutex\n\tmu.Lock()\n\tmu.Unlock()\n}\n\n",
            "func TestWork(t *testing.T) {\n\tWork()\n}\n",
        );
        let parsed = golite::parse_file(src).unwrap();
        let wrapper = func_scope_wrapper(&parsed, "Work").unwrap();
        assert!(
            wrapper.contains("import sy \"sync\""),
            "alias dropped from wrapper:\n{wrapper}"
        );
        // The wrapper must itself parse, with the alias bound.
        golite::parse_file(&wrapper).unwrap();
    }

    #[test]
    fn merged_imports_respect_original_alias() {
        // The original binds the sync path under `sy`; the wrapper's
        // unaliased `import "sync"` must not smuggle an unbound `sync.`
        // qualifier into the merged file.
        let orig = concat!(
            "package app\n\n",
            "import sy \"sync\"\n\n",
            "var seen sy.Map\n\n",
            "func Work() {\n\tx := 1\n\t_ = x\n}\n",
        );
        let wrapper = concat!(
            "package p\n\n",
            "import \"sync\"\n\n",
            "var mu sync.Mutex\n\n",
            "func Work() {\n\tmu.Lock()\n\tx := 1\n\t_ = x\n\tmu.Unlock()\n\tvar g sync.WaitGroup\n\t_ = g\n}\n",
        );
        let merged = integrate_func_patch(orig, wrapper, "Work").unwrap();
        assert!(!merged.contains("sync."), "unbound qualifier:\n{merged}");
        assert!(!merged.contains("import \"sync\""), "{merged}");
        assert_eq!(merged.matches("\"sync\"").count(), 1, "{merged}");
        assert!(merged.contains("var mu sy.Mutex"), "{merged}");
        assert!(merged.contains("var g sy.WaitGroup"), "{merged}");
        golite::parse_file(&merged).unwrap();
    }

    #[test]
    fn merged_imports_keep_wrapper_alias_for_new_paths() {
        // A path the original does not import keeps the wrapper's own
        // binding untouched.
        let orig = "package app\n\nfunc Work() {\n}\n";
        let wrapper = concat!(
            "package p\n\n",
            "import at \"sync/atomic\"\n\n",
            "var n int64\n\n",
            "func Work() {\n\tat.AddInt64(&n, 1)\n}\n",
        );
        let merged = integrate_func_patch(orig, wrapper, "Work").unwrap();
        assert!(merged.contains("at \"sync/atomic\""), "{merged}");
        assert!(merged.contains("at.AddInt64(&n, 1)"), "{merged}");
        golite::parse_file(&merged).unwrap();
    }

    #[test]
    fn func_patch_requires_the_function() {
        let orig = "package app\n\nfunc Work() {\n}\n";
        let wrapper = "package p\n\nfunc Elsewhere() {\n}\n";
        assert!(integrate_func_patch(orig, wrapper, "Work").is_err());
    }

    #[test]
    fn patch_loc_counts_changes() {
        let before = vec![("a.go".to_owned(), "l1\nl2\n".to_owned())];
        let after = vec![("a.go".to_owned(), "l1\nl2x\nl3\n".to_owned())];
        assert_eq!(patch_loc(&before, &after), 3);
    }
}
