//! Race Info Extraction (§4.2): from a ThreadSanitizer-style report to
//! candidate fix locations and scopes.

use racedet::RaceReport;
use serde::{Deserialize, Serialize};

/// The three fix-location kinds of §4.2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LocationKind {
    /// The test function that exercised the race (root frame).
    Test,
    /// The leaf functions of the racing stacks.
    Leaf,
    /// The lowest common ancestor of the two goroutines.
    Lca,
}

impl LocationKind {
    /// The paper's attempt order: `[TEST, LEAF, LCA]` (Listing 13).
    pub fn default_order() -> Vec<LocationKind> {
        vec![LocationKind::Test, LocationKind::Leaf, LocationKind::Lca]
    }
}

/// One candidate fix location: a function in a file.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FixLocation {
    /// Which extraction rule produced it.
    pub kind: LocationKind,
    /// The function name.
    pub function: String,
    /// The file it lives in.
    pub file: String,
    /// Racy line numbers within that file (when the location contains a
    /// racy access).
    pub lines: Vec<u32>,
}

/// Everything the pipeline extracts from one race report.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RaceInfo {
    /// The racy variable named by the report.
    pub racy_var: String,
    /// The stable bug hash (used to confirm elimination, §4.2).
    pub bug_hash: String,
    /// Candidate locations in attempt order, deduplicated.
    pub locations: Vec<FixLocation>,
}

/// Extracts candidate fix locations from a report, resolving function
/// names to the files of `codebase` (`(name, source)` pairs).
pub fn extract(report: &RaceReport, codebase: &[(String, String)]) -> RaceInfo {
    let mut locations: Vec<FixLocation> = Vec::new();
    let mut push = |kind: LocationKind, function: &str, line: Option<u32>| {
        // The closure's frame names look like `parent.func1` — the
        // editable declaration is the parent function.
        let decl = function.split('.').next().unwrap_or(function).to_owned();
        let Some(file) = file_of_function(codebase, &decl) else {
            return;
        };
        if let Some(existing) = locations
            .iter_mut()
            .find(|l| l.kind == kind && l.function == decl && l.file == file)
        {
            if let Some(l) = line {
                if !existing.lines.contains(&l) {
                    existing.lines.push(l);
                }
            }
            return;
        }
        locations.push(FixLocation {
            kind,
            function: decl,
            file,
            lines: line.into_iter().collect(),
        });
    };

    // Test: a root frame named Test* anywhere in the stacks (access or
    // creation stacks).
    for acc in &report.accesses {
        for fr in acc
            .stack
            .iter()
            .chain(acc.goroutine.creation.iter().flatten())
        {
            if fr.function.starts_with("Test") {
                push(LocationKind::Test, &fr.function, None);
            }
        }
    }

    // Leaf: the innermost frames of both accesses.
    for acc in &report.accesses {
        if let Some(leaf) = acc.leaf() {
            push(LocationKind::Leaf, &leaf.function, Some(leaf.line));
        }
    }

    // LCA: deepest common function across the two goroutines' ancestry
    // chains (creation stacks outermost-first + access stack).
    if let Some(lca) = lowest_common_ancestor(report) {
        push(LocationKind::Lca, &lca, None);
    }

    // Order: TEST, LEAF, LCA (Listing 13).
    locations.sort_by_key(|l| match l.kind {
        LocationKind::Test => 0,
        LocationKind::Leaf => 1,
        LocationKind::Lca => 2,
    });

    RaceInfo {
        racy_var: report.var_name.clone(),
        bug_hash: report.bug_hash(),
        locations,
    }
}

/// Ancestry chain of one access: root-most first.
fn chain(acc: &racedet::Access) -> Vec<String> {
    let mut out = Vec::new();
    // Creation stacks: racedet keeps innermost ancestry first; walk from
    // the oldest ancestor down.
    for stack in acc.goroutine.creation.iter().rev() {
        for fr in stack.iter().rev() {
            out.push(fr.function.clone());
        }
    }
    for fr in acc.stack.iter().rev() {
        out.push(fr.function.clone());
    }
    out
}

/// Deepest common prefix element of the two chains.
fn lowest_common_ancestor(report: &RaceReport) -> Option<String> {
    let a = chain(&report.accesses[0]);
    let b = chain(&report.accesses[1]);
    let mut lca = None;
    for (x, y) in a.iter().zip(b.iter()) {
        if x == y {
            lca = Some(x.clone());
        } else {
            break;
        }
    }
    lca
}

/// Finds the file declaring `function`.
pub fn file_of_function(codebase: &[(String, String)], function: &str) -> Option<String> {
    for (name, src) in codebase {
        if let Ok(file) = golite::parse_file(src) {
            if file.find_func(function).is_some() {
                return Some(name.clone());
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use racedet::{Access, AccessKind, Frame, GoroutineInfo};

    fn frame(f: &str, line: u32) -> Frame {
        Frame::new(f, "main.go", line)
    }

    fn report() -> RaceReport {
        RaceReport {
            accesses: [
                Access {
                    kind: AccessKind::Write,
                    stack: vec![frame("Worker.func1", 12), frame("Worker", 8)],
                    goroutine: GoroutineInfo {
                        id: 1,
                        creation: vec![vec![frame("Worker", 10), frame("TestWorker", 30)]],
                    },
                },
                Access {
                    kind: AccessKind::Write,
                    stack: vec![frame("Worker", 15)],
                    goroutine: GoroutineInfo {
                        id: 0,
                        creation: vec![vec![frame("TestWorker", 30)]],
                    },
                },
            ],
            var_name: "err".into(),
            addr: 1,
        }
    }

    fn codebase() -> Vec<(String, String)> {
        vec![(
            "main.go".to_owned(),
            "package p\n\nimport \"testing\"\n\nfunc Worker() {\n}\n\nfunc TestWorker(t *testing.T) {\n\tWorker()\n}\n"
                .to_owned(),
        )]
    }

    #[test]
    fn extracts_test_leaf_and_lca_in_order() {
        let info = extract(&report(), &codebase());
        assert_eq!(info.racy_var, "err");
        let kinds: Vec<LocationKind> = info.locations.iter().map(|l| l.kind).collect();
        assert_eq!(kinds[0], LocationKind::Test);
        assert!(kinds.contains(&LocationKind::Leaf));
        assert!(kinds.contains(&LocationKind::Lca));
        // The closure frame resolves to its parent declaration.
        let leaf = info
            .locations
            .iter()
            .find(|l| l.kind == LocationKind::Leaf)
            .unwrap();
        assert_eq!(leaf.function, "Worker");
        assert!(!leaf.lines.is_empty());
    }

    #[test]
    fn lca_is_deepest_common_function() {
        let lca = lowest_common_ancestor(&report()).unwrap();
        // Both chains share the prefix TestWorker → Worker; the deepest
        // common function is Worker.
        assert_eq!(lca, "Worker");
    }

    #[test]
    fn missing_functions_are_skipped() {
        let mut r = report();
        r.accesses[0].stack[0] = frame("ghostFn", 1);
        let info = extract(&r, &codebase());
        assert!(info.locations.iter().all(|l| l.function != "ghostFn"));
    }

    #[test]
    fn bug_hash_flows_through() {
        let r = report();
        let info = extract(&r, &codebase());
        assert_eq!(info.bug_hash, r.bug_hash());
    }
}
