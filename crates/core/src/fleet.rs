//! Fleet execution (§2.2, §5.2): sharding cases across worker threads.
//!
//! Dr.Fix ran as a fleet service over Uber's 97-MLoC monorepo; this
//! module is the reproduction's equivalent — a deterministic work-queue
//! executor that spreads independent pipeline cases over
//! `std::thread::scope` workers while keeping results **bit-identical to
//! the serial path**, whatever the thread count.
//!
//! Determinism comes from two rules:
//!
//! 1. every case `i` runs with its own seed, derived as
//!    `splitmix64(base ⊕ splitmix64(i))` — no case ever observes another
//!    case's position in the schedule, so sharding cannot change
//!    outcomes;
//! 2. results are written back into an index-addressed slot table, so
//!    output order is corpus order regardless of which worker finished
//!    first.
//!
//! The worker count comes from [`FleetConfig`] (the `DRFIX_THREADS`
//! environment knob, defaulting to the machine's available parallelism).
//! Each run also measures throughput ([`FleetStats`]): cases per second
//! and per-worker busy time, printed by the bench harness next to the
//! paper's numbers.

use crate::database::ExampleDb;
use crate::pipeline::{DrFix, FixOutcome, PipelineConfig};
use corpus::RaceCase;
use std::collections::BTreeMap;
use std::sync::{Condvar, Mutex};
use std::time::Instant;

/// SplitMix64: the standard 64-bit finalizing mixer (Steele et al.),
/// used to derive statistically independent per-case seeds from one
/// base seed. Re-exported from [`govm::sched`], which uses the same
/// mixer for per-run campaign seeds ([`govm::sched::SeedStream::Split`])
/// — one derivation shared by fleet sharding and schedule exploration.
pub use govm::sched::splitmix64;

/// Derives the seed for case `index` from the arm's base seed.
///
/// The derivation depends only on `(base, index)` — never on thread
/// count or completion order — which is what makes parallel runs
/// bit-identical to serial ones. It is intentionally the same
/// `splitmix64(base ⊕ splitmix64(index))` stream that
/// [`govm::sched::SeedStream::Split`] uses per run, so case-level and
/// run-level seed spaces stay uncorrelated by construction.
pub fn derive_case_seed(base: u64, index: u64) -> u64 {
    govm::sched::SeedStream::Split.derive(base, index)
}

/// Derives the seed for one validation campaign from the pipeline seed,
/// the reproduced race's bug hash, and the attempt ordinal.
///
/// Folding in the attempt ordinal is the fix for a real bug: validating
/// every retry with one constant seed re-samples the identical schedule
/// set, so feedback retries could never escape schedule-sampling luck.
pub fn derive_validation_seed(base: u64, bug_hash: &str, attempt: u32) -> u64 {
    // FNV-1a over the bug hash keeps the derivation stable across runs
    // (no dependence on the process's hasher state).
    let h = fnv1a64_fold(FNV1A_OFFSET, bug_hash.as_bytes());
    splitmix64(base ^ splitmix64(h) ^ u64::from(attempt).rotate_left(32))
}

/// FNV-1a 64-bit offset basis — the starting value for [`fnv1a64_fold`].
pub const FNV1A_OFFSET: u64 = 0xCBF2_9CE4_8422_2325;

/// Folds `bytes` into an FNV-1a running hash. Chain calls (feeding the
/// previous result back as `h`) to hash multi-part keys.
pub fn fnv1a64_fold(mut h: u64, bytes: &[u8]) -> u64 {
    for b in bytes {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Worker-count configuration for a fleet run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FleetConfig {
    /// Number of worker threads (at least 1).
    pub threads: usize,
}

impl FleetConfig {
    /// A fleet of exactly `threads` workers (clamped to at least 1).
    pub fn new(threads: usize) -> Self {
        FleetConfig {
            threads: threads.max(1),
        }
    }

    /// The strictly serial configuration (one worker, no spawning).
    pub fn serial() -> Self {
        FleetConfig { threads: 1 }
    }

    /// Reads `DRFIX_THREADS` from the environment, defaulting to the
    /// machine's available parallelism.
    pub fn from_env() -> Self {
        let threads = std::env::var("DRFIX_THREADS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&t| t >= 1)
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1)
            });
        FleetConfig::new(threads)
    }
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig::from_env()
    }
}

/// Throughput measurements for one fleet run.
#[derive(Debug, Clone)]
pub struct FleetStats {
    /// Worker threads used.
    pub threads: usize,
    /// Cases executed.
    pub cases: usize,
    /// Wall-clock duration of the whole run, in seconds.
    pub wall_seconds: f64,
    /// Per-worker busy time (from first claim to last completion).
    pub busy_seconds: Vec<f64>,
}

impl FleetStats {
    /// Cases per wall-clock second.
    pub fn cases_per_sec(&self) -> f64 {
        if self.wall_seconds > 0.0 {
            self.cases as f64 / self.wall_seconds
        } else {
            0.0
        }
    }

    /// Mean worker utilization: busy time over `threads × wall`.
    pub fn utilization(&self) -> f64 {
        let capacity = self.threads as f64 * self.wall_seconds;
        if capacity > 0.0 {
            (self.busy_seconds.iter().sum::<f64>() / capacity).min(1.0)
        } else {
            0.0
        }
    }

    /// Compact form for table columns, e.g. `37.5 c/s ×4 93%`.
    pub fn brief(&self) -> String {
        format!(
            "{:.1} c/s ×{} {:.0}%",
            self.cases_per_sec(),
            self.threads,
            self.utilization() * 100.0
        )
    }

    /// One-line human summary, printed by the bench harness.
    pub fn summary(&self) -> String {
        format!(
            "{} cases in {:.2}s — {:.1} cases/s on {} thread{} ({:.0}% worker utilization)",
            self.cases,
            self.wall_seconds,
            self.cases_per_sec(),
            self.threads,
            if self.threads == 1 { "" } else { "s" },
            self.utilization() * 100.0
        )
    }
}

/// The results of a fleet run: outputs in submission (index) order plus
/// throughput stats.
#[derive(Debug, Clone)]
pub struct FleetRun<T> {
    /// One result per job, in index order (never completion order).
    pub results: Vec<T>,
    /// Throughput measurements.
    pub stats: FleetStats,
}

/// The result of a streaming fleet reduction: the accumulator plus
/// throughput stats and the proof that collection stayed bounded.
#[derive(Debug, Clone)]
pub struct FoldRun<A> {
    /// The final accumulator, folded in strict index order.
    pub acc: A,
    /// Throughput measurements.
    pub stats: FleetStats,
    /// High-water count of completed-but-unfolded results — bounded by
    /// the reorder window, never by the case count.
    pub peak_pending: usize,
}

/// Shared state of one streaming reduction: the claim cursor, the folded
/// frontier, and the bounded reorder buffer between them.
struct FoldCore<T, A, F> {
    next_claim: usize,
    folded: usize,
    pending: BTreeMap<usize, T>,
    acc: Option<A>,
    fold: F,
    peak_pending: usize,
}

/// Runs `job(0..n)` across the fleet's workers, folding every result
/// into one accumulator **in strict index order** as soon as the
/// contiguous frontier allows — the streaming counterpart of
/// [`run_indexed`].
///
/// Workers may claim at most `window` indices beyond the folded
/// frontier (a bounded hand-off buffer); a worker that gets ahead of a
/// slow frontier case blocks until folding catches up. Completed
/// results therefore occupy O(`window`) memory, never O(`n`) — the
/// high-water mark is reported as [`FoldRun::peak_pending`] so tests
/// can assert the bound instead of trusting it.
///
/// Determinism: the fold order is `0, 1, 2, …` whatever the thread
/// count or completion order, so any order-sensitive accumulator
/// (digests, first-error capture, running tallies) matches the serial
/// path bit-for-bit.
pub fn run_fold<T, A, J, F>(
    cfg: &FleetConfig,
    n: usize,
    window: usize,
    job: J,
    init: A,
    fold: F,
) -> FoldRun<A>
where
    T: Send,
    A: Send,
    J: Fn(usize) -> T + Sync,
    F: FnMut(A, usize, T) -> A + Send,
{
    let start = Instant::now();
    let threads = cfg.threads.max(1).min(n.max(1));
    let window = window.max(1);

    if threads == 1 {
        // Serial fast path: fold immediately, nothing is ever buffered.
        let mut fold = fold;
        let mut acc = init;
        for i in 0..n {
            acc = fold(acc, i, job(i));
        }
        let wall = start.elapsed().as_secs_f64();
        return FoldRun {
            acc,
            stats: FleetStats {
                threads: 1,
                cases: n,
                wall_seconds: wall,
                busy_seconds: vec![wall],
            },
            peak_pending: 0,
        };
    }

    let core = Mutex::new(FoldCore {
        next_claim: 0,
        folded: 0,
        pending: BTreeMap::new(),
        acc: Some(init),
        fold,
        peak_pending: 0,
    });
    let space = Condvar::new();
    let busy_seconds: Vec<f64> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                s.spawn(|| {
                    let t0 = Instant::now();
                    loop {
                        // Claim the next index, waiting while the whole
                        // window is in flight (claimed but unfolded).
                        let i = {
                            let mut st = core.lock().expect("fleet fold poisoned");
                            loop {
                                if st.next_claim >= n {
                                    return t0.elapsed().as_secs_f64();
                                }
                                if st.next_claim - st.folded < window {
                                    let i = st.next_claim;
                                    st.next_claim += 1;
                                    break i;
                                }
                                st = space.wait(st).expect("fleet fold poisoned");
                            }
                        };
                        let out = job(i);
                        let mut st = core.lock().expect("fleet fold poisoned");
                        st.pending.insert(i, out);
                        st.peak_pending = st.peak_pending.max(st.pending.len());
                        // Fold everything the new result made contiguous.
                        let mut advanced = false;
                        loop {
                            let idx = st.folded;
                            let Some(v) = st.pending.remove(&idx) else {
                                break;
                            };
                            let acc = st.acc.take().expect("fold accumulator lost");
                            st.acc = Some((st.fold)(acc, idx, v));
                            st.folded += 1;
                            advanced = true;
                        }
                        if advanced {
                            space.notify_all();
                        }
                    }
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("fleet worker panicked"))
            .collect()
    });

    let st = core.into_inner().expect("fleet fold poisoned");
    debug_assert_eq!(st.folded, n, "fold frontier stalled");
    debug_assert!(st.pending.is_empty(), "unfolded results left behind");
    FoldRun {
        acc: st.acc.expect("fold accumulator lost"),
        stats: FleetStats {
            threads,
            cases: n,
            wall_seconds: start.elapsed().as_secs_f64(),
            busy_seconds,
        },
        peak_pending: st.peak_pending,
    }
}

/// Runs `job(0..n)` across the fleet's workers and returns the results
/// in index order.
///
/// Implemented over [`run_fold`] with the fold being a plain push — the
/// window spans the whole queue because the caller asked for every
/// result anyway, so claim gating would only add waits. Because `job`
/// receives only the index — and the drfix jobs derive all randomness
/// from [`derive_case_seed`] — the result vector is bit-identical for
/// every thread count.
pub fn run_indexed<T, F>(cfg: &FleetConfig, n: usize, job: F) -> FleetRun<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let run = run_fold(
        cfg,
        n,
        n.max(1),
        job,
        Vec::with_capacity(n),
        |mut acc: Vec<T>, i, out| {
            debug_assert_eq!(acc.len(), i, "fold left index order");
            acc.push(out);
            acc
        },
    );
    FleetRun {
        results: run.acc,
        stats: run.stats,
    }
}

/// Runs the pipeline over a case slice with per-case derived seeds,
/// sharded across the fleet.
///
/// This is the entry point the whole experiment layer goes through; the
/// serial path is just `FleetConfig::serial()`.
pub fn run_cases(
    pipeline_cfg: &PipelineConfig,
    fleet: &FleetConfig,
    cases: &[RaceCase],
    db: Option<&ExampleDb>,
) -> FleetRun<FixOutcome> {
    run_indexed(fleet, cases.len(), |i| {
        let mut cfg = pipeline_cfg.clone();
        cfg.seed = derive_case_seed(pipeline_cfg.seed, i as u64);
        DrFix::new(cfg, db).fix_case(&cases[i].files, &cases[i].test)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::database::RagMode;
    use corpus::CorpusConfig;

    #[test]
    fn splitmix_matches_reference_vectors() {
        // Published SplitMix64 test vectors (seed 1234567 stream).
        assert_eq!(splitmix64(1234567), 6457827717110365317);
        assert_eq!(
            splitmix64(1234567 + 0x9E37_79B9_7F4A_7C15),
            3203168211198807973
        );
    }

    #[test]
    fn derived_seeds_are_distinct_per_case_and_attempt() {
        let mut seen = std::collections::HashSet::new();
        for i in 0..256 {
            assert!(seen.insert(derive_case_seed(0xFEED, i)));
        }
        let a = derive_validation_seed(1, "deadbeef", 1);
        let b = derive_validation_seed(1, "deadbeef", 2);
        let c = derive_validation_seed(1, "beefdead", 1);
        assert_ne!(a, b, "attempts must re-sample schedules");
        assert_ne!(a, c, "different bugs must get different schedules");
        assert_eq!(
            a,
            derive_validation_seed(1, "deadbeef", 1),
            "derivation is pure"
        );
    }

    #[test]
    fn run_indexed_preserves_submission_order() {
        for threads in [1, 2, 8] {
            let run = run_indexed(&FleetConfig::new(threads), 100, |i| i * 3);
            assert_eq!(run.results, (0..100).map(|i| i * 3).collect::<Vec<_>>());
            assert_eq!(run.stats.cases, 100);
            assert!(run.stats.wall_seconds >= 0.0);
        }
    }

    #[test]
    fn run_fold_streams_in_index_order_with_bounded_pending() {
        // An order-sensitive accumulator: folding out of order would
        // change the digest, so equality across thread counts proves
        // strict index-order folding.
        let digest_of = |threads: usize, window: usize| {
            run_fold(
                &FleetConfig::new(threads),
                500,
                window,
                |i| i as u64,
                FNV1A_OFFSET,
                |h, i, v| fnv1a64_fold(h, &(i as u64 ^ v.rotate_left(17)).to_le_bytes()),
            )
        };
        let serial = digest_of(1, 8);
        assert_eq!(serial.peak_pending, 0, "serial path buffers nothing");
        for threads in [2, 4, 8] {
            for window in [1, 3, 16] {
                let run = digest_of(threads, window);
                assert_eq!(run.acc, serial.acc, "digest diverged ×{threads} w{window}");
                assert!(
                    run.peak_pending <= window,
                    "pending {} exceeded window {window}",
                    run.peak_pending
                );
            }
        }
    }

    #[test]
    fn empty_fleet_run_is_fine() {
        let run = run_indexed(&FleetConfig::new(4), 0, |i| i);
        assert!(run.results.is_empty());
        assert_eq!(run.stats.cases_per_sec(), 0.0);
    }

    #[test]
    fn parallel_outcomes_are_bit_identical_to_serial() {
        let ccfg = CorpusConfig {
            eval_cases: 10,
            db_pairs: 24,
            seed: 0xF1EE7,
        };
        let cases = corpus::generate_eval_corpus(&ccfg);
        let db = ExampleDb::build(&corpus::generate_example_db(&ccfg));
        let pcfg = PipelineConfig {
            rag: RagMode::Skeleton,
            validation_runs: 6,
            detect_runs: 24,
            seed: 0xFEED,
            ..PipelineConfig::default()
        };
        let serial = run_cases(&pcfg, &FleetConfig::serial(), &cases, Some(&db));
        for threads in [2, 8] {
            let par = run_cases(&pcfg, &FleetConfig::new(threads), &cases, Some(&db));
            assert_eq!(
                par.results, serial.results,
                "{threads}-thread outcomes diverged from serial"
            );
        }
    }

    #[test]
    fn stats_summary_mentions_throughput() {
        let stats = FleetStats {
            threads: 4,
            cases: 120,
            wall_seconds: 2.0,
            busy_seconds: vec![1.9, 1.8, 1.9, 1.7],
        };
        assert_eq!(stats.cases_per_sec(), 60.0);
        assert!(stats.utilization() > 0.9);
        let s = stats.summary();
        assert!(s.contains("cases/s"), "{s}");
        assert!(s.contains("4 threads"), "{s}");
    }
}
