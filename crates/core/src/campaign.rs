//! Campaign orchestration (§2.2 at deployment scale): streaming 10k+
//! generated cases through sharded, work-stealing, stage-pipelined
//! execution with snapshot/resume — the fix service's "real service
//! surface", driven by the `campaignctl` bin.
//!
//! # Shape
//!
//! ```text
//!  CorpusStream ──► [detect ×W] ──► [diagnose] ──► [fix ×W] ──► [validate ×W] ──► collector
//!   (on demand)         │ claim from sharded queues,                │                 │ fold in
//!                       │ steal when home shard drains              │ zero VM         │ index order,
//!                       ▼                                           ▼ (tournament     ▼ checkpoint
//!                  shard cursors                                     pool build)   per-shard digests
//! ```
//!
//! Four stages over bounded `std::sync::mpsc::sync_channel` links
//! inside one `std::thread::scope`: validation of case `N` overlaps
//! detection of case `N+k`. Cases are synthesized on demand from a
//! [`CorpusStream`] — the corpus never materializes; the only resident
//! case sources are the in-flight window, whose byte high-water the run
//! measures ([`CampaignMetrics::peak_resident_case_bytes`]).
//!
//! # Determinism
//!
//! Results are **bit-identical to the serial reference at any
//! shard/worker count** because every quantity that reaches the digest
//! is a pure function of `(config, case index)`:
//!
//! 1. case sources come from the stream's per-index RNG
//!    (`splitmix64(seed ⊕ salt ⊕ splitmix64(i))`);
//! 2. the pipeline seed is [`derive_case_seed`]`(pipeline.seed, i)` —
//!    the same derivation the PR 2 fleet uses — so detection and
//!    validation schedules never observe claim order;
//! 3. the collector folds outcomes into per-shard FNV-1a digests in
//!    strict index order, whatever order workers deliver them.
//!
//! Work-stealing therefore changes *wall-clock placement only*; an A/B
//! test (`tests/campaign_ab.rs`) pins serial ≡ pipelined digests.
//!
//! # Snapshot / resume
//!
//! Every `checkpoint_every` folded cases per shard the collector
//! serializes a [`Snapshot`] — per-shard cursors, digests, and
//! [`StopReason`] tallies plus a config fingerprint — via
//! temp-file-and-rename. A killed campaign resumes from the contiguous
//! folded frontier of each shard: finished work is never recomputed,
//! and because outcomes are index-pure the resumed digests match an
//! uninterrupted run exactly (proven by a proptest over random kill
//! points in `tests/campaign_resume.rs`).

use crate::fleet::{derive_case_seed, fnv1a64_fold, FNV1A_OFFSET};
use crate::pipeline::{DrFix, FixOutcome, PipelineConfig};
use crate::raceinfo;
use corpus::stream::{CorpusStream, StreamConfig};
use corpus::RaceCase;
use govm::StopReason;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender};
use std::sync::{Condvar, Mutex};
use std::time::Instant;

/// Schema of campaign snapshots and metrics reports (matches the
/// perfscan report schema this PR bumps to v6).
pub const CAMPAIGN_SCHEMA: u32 = 6;

/// Stage names, in pipeline order (index into the per-stage metrics).
pub const STAGES: [&str; 4] = ["detect", "diagnose", "fix", "validate"];

/// What the campaign does with each case after detection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CampaignMode {
    /// Detection only — the monitoring-service shape (HardRace's
    /// deployment argument): every case is generated, compiled, and
    /// campaigned for races; nothing is fixed. This is the mode that
    /// scales to 10k+ cases.
    Detect,
    /// The full fix service: detect → diagnose → fix → validate. With a
    /// tournament configured the fix stage is purely static (candidate
    /// pool + lint repair) and all VM work concentrates in detect and
    /// validate; without one, fix and validate fuse into one stage
    /// (the single-path loop interleaves them by design).
    Fix,
}

impl CampaignMode {
    /// Stable lowercase name (CLI value, snapshot field).
    pub fn name(&self) -> &'static str {
        match self {
            CampaignMode::Detect => "detect",
            CampaignMode::Fix => "fix",
        }
    }

    /// Parses a name produced by [`CampaignMode::name`].
    pub fn parse(s: &str) -> Option<CampaignMode> {
        match s {
            "detect" => Some(CampaignMode::Detect),
            "fix" => Some(CampaignMode::Fix),
            _ => None,
        }
    }
}

/// Full configuration of one campaign.
#[derive(Debug, Clone)]
pub struct CampaignConfig {
    /// Total cases (the stream indices `0..cases`).
    pub cases: usize,
    /// Work-queue shards; each owns a contiguous index range.
    pub shards: usize,
    /// Worker threads per parallel stage. `1` selects the serial
    /// reference executor (no threads, no channels) whose digests every
    /// pipelined run must reproduce.
    pub workers: usize,
    /// Detect-only or full-fix (see [`CampaignMode`]).
    pub mode: CampaignMode,
    /// The streamed corpus (family + seed) cases are drawn from.
    pub stream: StreamConfig,
    /// Pipeline configuration; `pipeline.seed` is the base the per-case
    /// seeds derive from.
    pub pipeline: PipelineConfig,
    /// Folded cases per shard between snapshot writes.
    pub checkpoint_every: usize,
    /// Deterministic in-process kill switch: stop claiming new cases
    /// after this many checkpoints have been written, drain the
    /// pipeline, and exit with an interrupted snapshot. This is how the
    /// smoke test and the resume proptest kill a campaign at a
    /// checkpoint without process gymnastics.
    pub halt_after_checkpoints: Option<u64>,
    /// Bound on cases in flight (claimed but not folded). Caps resident
    /// case bytes and the collector's reorder buffers at O(this),
    /// independent of `cases`. `0` picks `max(4 × workers, 16)`.
    pub max_in_flight: usize,
}

impl CampaignConfig {
    /// A detect-mode campaign over `cases` indices of `stream`.
    pub fn new(cases: usize, shards: usize, stream: StreamConfig) -> Self {
        CampaignConfig {
            cases,
            shards: shards.max(1),
            workers: 1,
            mode: CampaignMode::Detect,
            stream,
            pipeline: PipelineConfig::default(),
            checkpoint_every: 64,
            halt_after_checkpoints: None,
            max_in_flight: 0,
        }
    }

    /// The effective in-flight bound (resolves the `0` default).
    pub fn in_flight_limit(&self) -> usize {
        if self.max_in_flight > 0 {
            self.max_in_flight
        } else {
            (4 * self.workers.max(1)).max(16)
        }
    }

    /// Fingerprint of everything that determines outcomes: cases,
    /// sharding, stream, mode, and the pipeline config. **Not**
    /// included: worker count, in-flight bound, halt switch — those
    /// change wall-clock placement only, and a snapshot taken at 2
    /// workers must resume at 8.
    pub fn fingerprint(&self) -> u64 {
        let mut h = FNV1A_OFFSET;
        for v in [
            self.cases as u64,
            self.shards as u64,
            self.checkpoint_every as u64,
            self.stream.seed,
        ] {
            h = fnv1a64_fold(h, &v.to_le_bytes());
        }
        h = fnv1a64_fold(h, self.stream.family.name().as_bytes());
        h = fnv1a64_fold(h, self.mode.name().as_bytes());
        // The pipeline config has no serde form; its Debug rendering is
        // deterministic and covers every outcome-relevant knob.
        h = fnv1a64_fold(h, format!("{:?}", self.pipeline).as_bytes());
        h
    }
}

/// The compact, digestible outcome of one case — everything the
/// campaign keeps per case (the full [`FixOutcome`] with its patched
/// sources is dropped at fold time; memory stays O(in-flight)).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CaseOutcome {
    /// Stream index.
    pub index: usize,
    /// Why the detection campaign stopped.
    pub stop: StopReason,
    /// Whether detection exposed a race.
    pub raced: bool,
    /// Whether the fix arm produced a validated patch (always `false`
    /// in detect mode).
    pub fixed: bool,
    /// LLM calls spent (fix mode).
    pub llm_calls: u32,
    /// Validation campaigns run (fix mode).
    pub validations: u32,
    /// Candidates rejected by the static gate (fix mode).
    pub rejected_static: u32,
    /// VM instructions spent detecting.
    pub detect_vm_steps: u64,
    /// VM instructions spent validating (fix mode).
    pub validation_vm_steps: u64,
    /// Detector shadow-memory high-water during detection.
    pub peak_shadow_bytes: u64,
    /// Changed-line count of the accepted patch (0 = none).
    pub patch_loc: u64,
    /// FNV-1a of the reproduced race's bug hash (0 = no race).
    pub bug_fnv: u64,
}

fn stop_code(s: StopReason) -> u8 {
    match s {
        StopReason::Completed => 0,
        StopReason::RaceExposed => 1,
        StopReason::DedupSaturated => 2,
        StopReason::BudgetExhausted => 3,
    }
}

/// Folds one outcome into a running FNV-1a digest. Field order is part
/// of the digest contract: snapshots store the folded value, so
/// reordering fields here invalidates old snapshots (bump
/// [`CAMPAIGN_SCHEMA`] if you must).
pub fn fold_outcome(digest: u64, o: &CaseOutcome) -> u64 {
    let mut h = digest;
    for v in [
        o.index as u64,
        u64::from(stop_code(o.stop)),
        u64::from(o.raced),
        u64::from(o.fixed),
        u64::from(o.llm_calls),
        u64::from(o.validations),
        u64::from(o.rejected_static),
        o.detect_vm_steps,
        o.validation_vm_steps,
        o.peak_shadow_bytes,
        o.patch_loc,
        o.bug_fnv,
    ] {
        h = fnv1a64_fold(h, &v.to_le_bytes());
    }
    h
}

/// Running outcome totals — the campaign's answer sheet, additive
/// across shards and preserved exactly by snapshot/resume.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Tallies {
    /// Cases folded.
    pub cases: u64,
    /// Cases whose detection exposed a race.
    pub raced: u64,
    /// Cases fixed (fix mode).
    pub fixed: u64,
    /// Detection campaigns stopped by [`StopReason::Completed`].
    pub stop_completed: u64,
    /// … by [`StopReason::RaceExposed`].
    pub stop_race_exposed: u64,
    /// … by [`StopReason::DedupSaturated`].
    pub stop_dedup_saturated: u64,
    /// … by [`StopReason::BudgetExhausted`].
    pub stop_budget_exhausted: u64,
    /// LLM calls spent.
    pub llm_calls: u64,
    /// Validation campaigns run.
    pub validations: u64,
    /// Static-gate rejections.
    pub rejected_static: u64,
    /// VM instructions spent detecting.
    pub detect_vm_steps: u64,
    /// VM instructions spent validating.
    pub validation_vm_steps: u64,
    /// Max per-case detector shadow high-water (a gauge: max, not sum).
    pub peak_shadow_bytes: u64,
}

impl Tallies {
    fn add(&mut self, o: &CaseOutcome) {
        self.cases += 1;
        self.raced += u64::from(o.raced);
        self.fixed += u64::from(o.fixed);
        match o.stop {
            StopReason::Completed => self.stop_completed += 1,
            StopReason::RaceExposed => self.stop_race_exposed += 1,
            StopReason::DedupSaturated => self.stop_dedup_saturated += 1,
            StopReason::BudgetExhausted => self.stop_budget_exhausted += 1,
        }
        self.llm_calls += u64::from(o.llm_calls);
        self.validations += u64::from(o.validations);
        self.rejected_static += u64::from(o.rejected_static);
        self.detect_vm_steps += o.detect_vm_steps;
        self.validation_vm_steps += o.validation_vm_steps;
        self.peak_shadow_bytes = self.peak_shadow_bytes.max(o.peak_shadow_bytes);
    }

    /// Merges another shard's totals into this one.
    pub fn merge(&mut self, other: &Tallies) {
        self.cases += other.cases;
        self.raced += other.raced;
        self.fixed += other.fixed;
        self.stop_completed += other.stop_completed;
        self.stop_race_exposed += other.stop_race_exposed;
        self.stop_dedup_saturated += other.stop_dedup_saturated;
        self.stop_budget_exhausted += other.stop_budget_exhausted;
        self.llm_calls += other.llm_calls;
        self.validations += other.validations;
        self.rejected_static += other.rejected_static;
        self.detect_vm_steps += other.detect_vm_steps;
        self.validation_vm_steps += other.validation_vm_steps;
        self.peak_shadow_bytes = self.peak_shadow_bytes.max(other.peak_shadow_bytes);
    }
}

/// One shard's durable state: its index range, the contiguous folded
/// frontier, and the digest/tallies over the folded prefix.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShardProgress {
    /// First index owned (inclusive).
    pub start: usize,
    /// One past the last index owned.
    pub end: usize,
    /// Folded cases: indices `start .. start+done` are final.
    pub done: usize,
    /// FNV-1a digest over the folded prefix, in index order.
    pub digest: u64,
    /// Outcome totals over the folded prefix.
    pub tallies: Tallies,
}

impl ShardProgress {
    fn fresh(start: usize, end: usize) -> Self {
        ShardProgress {
            start,
            end,
            done: 0,
            digest: FNV1A_OFFSET,
            tallies: Tallies::default(),
        }
    }

    /// Cases this shard owns.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// `true` when the shard owns no indices.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }
}

/// Contiguous equal partition of `0..cases` into `shards` ranges.
pub fn partition(cases: usize, shards: usize) -> Vec<(usize, usize)> {
    let shards = shards.max(1);
    let chunk = cases.div_ceil(shards).max(1);
    (0..shards)
        .map(|i| ((i * chunk).min(cases), ((i + 1) * chunk).min(cases)))
        .collect()
}

/// The durable campaign state: what a checkpoint writes and a resume
/// reads. Serialized as JSON via temp-file-and-rename, so a kill during
/// the write leaves the previous snapshot intact.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Snapshot {
    /// Snapshot schema ([`CAMPAIGN_SCHEMA`]).
    pub schema: u32,
    /// [`CampaignConfig::fingerprint`] of the run that wrote it; resume
    /// refuses a snapshot whose fingerprint does not match.
    pub fingerprint: u64,
    /// Stream family name (informational; covered by the fingerprint).
    pub family: String,
    /// Campaign mode name (informational; covered by the fingerprint).
    pub mode: String,
    /// Total cases of the campaign.
    pub cases: usize,
    /// Per-shard progress.
    pub shards: Vec<ShardProgress>,
    /// `true` once every shard folded its full range.
    pub completed: bool,
}

impl Snapshot {
    fn fresh(cfg: &CampaignConfig) -> Self {
        Snapshot {
            schema: CAMPAIGN_SCHEMA,
            fingerprint: cfg.fingerprint(),
            family: cfg.stream.family.name().to_owned(),
            mode: cfg.mode.name().to_owned(),
            cases: cfg.cases,
            shards: partition(cfg.cases, cfg.shards)
                .into_iter()
                .map(|(s, e)| ShardProgress::fresh(s, e))
                .collect(),
            completed: cfg.cases == 0,
        }
    }

    /// Cases folded across all shards.
    pub fn done(&self) -> usize {
        self.shards.iter().map(|s| s.done).sum()
    }

    /// Merged outcome totals across all shards.
    pub fn tallies(&self) -> Tallies {
        let mut t = Tallies::default();
        for s in &self.shards {
            t.merge(&s.tallies);
        }
        t
    }

    /// The campaign digest: per-shard digests folded in shard order.
    /// Bit-identical across worker counts, kills, and resumes.
    pub fn digest(&self) -> u64 {
        let mut h = FNV1A_OFFSET;
        for s in &self.shards {
            h = fnv1a64_fold(h, &s.digest.to_le_bytes());
        }
        h
    }

    /// Writes the snapshot atomically (temp file + rename).
    pub fn save(&self, path: &Path) -> std::io::Result<()> {
        let json = serde_json::to_string(self)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
        let tmp = path.with_extension("tmp");
        std::fs::write(&tmp, json)?;
        std::fs::rename(&tmp, path)
    }

    /// Reads a snapshot written by [`Snapshot::save`].
    pub fn load(path: &Path) -> std::io::Result<Snapshot> {
        let json = std::fs::read_to_string(path)?;
        serde_json::from_str(&json)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))
    }
}

/// The machine-readable progress/metrics report (schema v6) a campaign
/// emits: per-stage throughput, queue/steal accounting, and the
/// bounded-memory evidence. Deterministic fields (everything but the
/// wall-clock and busy-seconds floats and the threaded-only channel
/// gauges) replay bit-identically on the serial executor — that is what
/// the perfscan campaign section exact-gates.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CampaignMetrics {
    /// Report schema ([`CAMPAIGN_SCHEMA`]).
    pub schema: u32,
    /// Cases folded by this run (excludes resumed-over work).
    pub cases_done: u64,
    /// Wall-clock seconds — reported, never gated.
    pub wall_seconds: f64,
    /// Cases processed per stage, pipeline order (see [`STAGES`]).
    pub stage_cases: Vec<u64>,
    /// Per-stage busy seconds (sum over that stage's workers).
    pub stage_busy_seconds: Vec<f64>,
    /// Successful claims from the sharded queues.
    pub queue_pops: u64,
    /// Claims served by a non-home shard (work-stealing).
    pub steals: u64,
    /// Shard queues examined across all claims (probe count).
    pub steal_probes: u64,
    /// High-water depth of each inter-stage channel (threaded runs
    /// only; the serial executor has no channels and reports zeros).
    pub channel_peak_depth: Vec<u64>,
    /// High-water of cases in flight (claimed, not folded) — must stay
    /// ≤ the configured in-flight limit.
    pub peak_in_flight: u64,
    /// High-water of the collector's reorder buffer (≤ peak_in_flight).
    pub peak_pending: u64,
    /// High-water of resident generated case bytes — the
    /// never-materializes proof: independent of campaign length.
    pub peak_resident_case_bytes: u64,
    /// Result-collection instructions: outcomes folded into digests.
    pub folds: u64,
    /// Checkpoints written.
    pub checkpoints: u64,
    /// Merged outcome totals for the folded prefix (whole campaign,
    /// including resumed-over shards — read from the snapshot).
    pub tallies: Tallies,
}

impl CampaignMetrics {
    /// Cases/second through stage `i` (by its busy time).
    pub fn stage_rate(&self, i: usize) -> f64 {
        let busy = self.stage_busy_seconds.get(i).copied().unwrap_or(0.0);
        let cases = self.stage_cases.get(i).copied().unwrap_or(0);
        if busy > 0.0 {
            cases as f64 / busy
        } else {
            0.0
        }
    }

    /// One-line human summary.
    pub fn summary(&self) -> String {
        format!(
            "{} cases in {:.2}s — {:.1} cases/s | pops {} steals {} folds {} | in-flight ≤{} resident ≤{}B",
            self.cases_done,
            self.wall_seconds,
            if self.wall_seconds > 0.0 {
                self.cases_done as f64 / self.wall_seconds
            } else {
                0.0
            },
            self.queue_pops,
            self.steals,
            self.folds,
            self.peak_in_flight,
            self.peak_resident_case_bytes,
        )
    }
}

/// What [`run_campaign`] returns.
#[derive(Debug, Clone)]
pub struct CampaignRun {
    /// Final durable state (also written to the snapshot path, if any).
    pub snapshot: Snapshot,
    /// This run's metrics report.
    pub metrics: CampaignMetrics,
    /// `true` when the halt switch stopped the campaign early.
    pub interrupted: bool,
}

// ── Work distribution ────────────────────────────────────────────────

/// Sharded claim queues with work-stealing: each shard is an atomic
/// cursor over its contiguous range; a worker drains its home shard,
/// then probes the others in cyclic order. Which worker claims an index
/// affects *placement only* — the case content and seeds depend on the
/// index alone.
struct ShardQueues {
    next: Vec<AtomicUsize>,
    ends: Vec<usize>,
    pops: AtomicU64,
    steals: AtomicU64,
    probes: AtomicU64,
}

impl ShardQueues {
    fn from_snapshot(snap: &Snapshot) -> Self {
        ShardQueues {
            next: snap
                .shards
                .iter()
                .map(|s| AtomicUsize::new(s.start + s.done))
                .collect(),
            ends: snap.shards.iter().map(|s| s.end).collect(),
            pops: AtomicU64::new(0),
            steals: AtomicU64::new(0),
            probes: AtomicU64::new(0),
        }
    }

    /// Claims the next index, preferring the `home` shard. Returns the
    /// index, its owning shard, and whether the claim was a steal.
    fn claim(&self, home: usize) -> Option<(usize, usize)> {
        let n = self.ends.len();
        for off in 0..n {
            let s = (home + off) % n;
            self.probes.fetch_add(1, Ordering::Relaxed);
            let i = self.next[s].fetch_add(1, Ordering::Relaxed);
            if i < self.ends[s] {
                self.pops.fetch_add(1, Ordering::Relaxed);
                if off > 0 {
                    self.steals.fetch_add(1, Ordering::Relaxed);
                }
                return Some((i, s));
            }
            // Overshot an exhausted shard: the cursor stays past `end`,
            // which later claims read as empty. Nothing to undo.
        }
        None
    }
}

/// The claim gate: bounds cases in flight (claimed but not folded) so
/// pipelining can never buffer O(cases) anywhere. Workers block here
/// when the window is full and are woken by folds — or by a halt.
struct Gate {
    st: Mutex<GateSt>,
    cv: Condvar,
    limit: usize,
}

struct GateSt {
    in_flight: usize,
    peak: usize,
    halted: bool,
}

impl Gate {
    fn new(limit: usize) -> Self {
        Gate {
            st: Mutex::new(GateSt {
                in_flight: 0,
                peak: 0,
                halted: false,
            }),
            cv: Condvar::new(),
            limit: limit.max(1),
        }
    }

    /// Takes one in-flight slot; `false` means the campaign halted.
    fn acquire(&self) -> bool {
        let mut st = self.st.lock().expect("gate poisoned");
        loop {
            if st.halted {
                return false;
            }
            if st.in_flight < self.limit {
                st.in_flight += 1;
                st.peak = st.peak.max(st.in_flight);
                return true;
            }
            st = self.cv.wait(st).expect("gate poisoned");
        }
    }

    /// Returns one slot (called per folded case).
    fn release(&self) {
        let mut st = self.st.lock().expect("gate poisoned");
        st.in_flight = st.in_flight.saturating_sub(1);
        drop(st);
        self.cv.notify_all();
    }

    /// Halts the campaign: wakes every blocked claimer to exit.
    fn halt(&self) {
        self.st.lock().expect("gate poisoned").halted = true;
        self.cv.notify_all();
    }

    fn peak(&self) -> usize {
        self.st.lock().expect("gate poisoned").peak
    }
}

// ── Stages ───────────────────────────────────────────────────────────

/// One case moving through the pipeline. Stages consume their payload
/// as they go: the generated sources are dropped (and their bytes
/// un-charged) the moment no later stage needs them.
struct Item {
    index: usize,
    shard: usize,
    bytes: u64,
    stop: StopReason,
    detect_vm_steps: u64,
    peak_shadow_bytes: u64,
    bug_fnv: u64,
    test: String,
    case: Option<RaceCase>,
    report: Option<racedet::RaceReport>,
    info: Option<raceinfo::RaceInfo>,
    build: Option<crate::tournament::PoolBuild>,
    fix: Option<FixOutcome>,
}

fn per_case_cfg(cfg: &CampaignConfig, index: usize) -> PipelineConfig {
    let mut p = cfg.pipeline.clone();
    p.seed = derive_case_seed(cfg.pipeline.seed, index as u64);
    p
}

/// Resident-case-bytes accounting: `add` on generation, `sub` when the
/// sources drop; `peak` is observed via `fetch_max` after every add.
struct Resident {
    now: AtomicU64,
    peak: AtomicU64,
}

impl Resident {
    fn new() -> Self {
        Resident {
            now: AtomicU64::new(0),
            peak: AtomicU64::new(0),
        }
    }

    fn add(&self, bytes: u64) {
        let now = self.now.fetch_add(bytes, Ordering::Relaxed) + bytes;
        self.peak.fetch_max(now, Ordering::Relaxed);
    }

    fn sub(&self, bytes: u64) {
        self.now.fetch_sub(bytes, Ordering::Relaxed);
    }
}

/// Stage 1 — detect: synthesize the case from the stream and run the
/// detection campaign (the only stage that touches the scheduler in
/// detect mode).
fn stage_detect(cfg: &CampaignConfig, stream: &CorpusStream, index: usize, shard: usize) -> Item {
    let case = stream.case(index);
    let bytes = CorpusStream::case_bytes(&case);
    let drfix = DrFix::new(per_case_cfg(cfg, index), None);
    let (stop, steps, shadow, report) = match drfix.detect_outcome(&case.files, &case.test) {
        Some(out) => (
            out.stop,
            out.counters.vm_steps,
            out.counters.peak_shadow_bytes,
            out.races.into_iter().next(),
        ),
        // Synthetic cases always compile; a failure still folds as a
        // zero-step completed campaign rather than crashing the fleet.
        None => (StopReason::Completed, 0, 0, None),
    };
    let bug_fnv = report
        .as_ref()
        .map(|r| fnv1a64_fold(FNV1A_OFFSET, r.bug_hash().as_bytes()))
        .unwrap_or(0);
    Item {
        index,
        shard,
        bytes,
        stop,
        detect_vm_steps: steps,
        peak_shadow_bytes: shadow,
        bug_fnv,
        test: case.test.clone(),
        case: Some(case),
        report,
        info: None,
        build: None,
        fix: None,
    }
}

/// Stage 2 — diagnose: extract fix locations from the race report.
fn stage_diagnose(item: &mut Item) {
    if let (Some(report), Some(case)) = (&item.report, &item.case) {
        item.info = Some(raceinfo::extract(report, &case.files));
    }
}

/// Stage 3 — fix: run the fix arm's static half. With a tournament this
/// is candidate enumeration + lint repair (zero VM steps); the
/// single-path loop interleaves generation and validation by design, so
/// it runs whole here and stage 4 passes it through. The case sources
/// are dropped at the end — later stages never need them.
fn stage_fix(cfg: &CampaignConfig, item: &mut Item, resident: &Resident) {
    if cfg.mode == CampaignMode::Fix {
        let pcfg = per_case_cfg(cfg, item.index);
        let tournament = pcfg.tournament.clone();
        let drfix = DrFix::new(pcfg, None);
        match (&item.case, &item.report, &item.info) {
            (Some(case), Some(report), Some(info)) => {
                if let Some(tcfg) = tournament {
                    item.build = Some(drfix.tournament_pool(&case.files, info, &tcfg));
                } else {
                    item.fix = Some(drfix.fix_from_report(&case.files, &case.test, report));
                }
            }
            _ => item.fix = Some(DrFix::unreproduced_outcome()),
        }
    }
    if item.case.take().is_some() {
        resident.sub(item.bytes);
    }
}

/// Stage 4 — validate: the tournament's dynamic half (rank survivors,
/// campaign them, crown the winner), then compact the outcome.
fn stage_validate(cfg: &CampaignConfig, mut item: Item) -> (usize, CaseOutcome) {
    if let Some(build) = item.build.take() {
        let pcfg = per_case_cfg(cfg, item.index);
        let tcfg = pcfg
            .tournament
            .clone()
            .expect("pool build without tournament config");
        let info = item.info.as_ref().expect("pool build without race info");
        let drfix = DrFix::new(pcfg, None);
        item.fix = Some(drfix.tournament_decide(&item.test, info, &tcfg, build));
    }
    let o = match &item.fix {
        Some(f) => CaseOutcome {
            index: item.index,
            stop: item.stop,
            raced: item.report.is_some(),
            fixed: f.fixed,
            llm_calls: f.llm_calls,
            validations: f.validations,
            rejected_static: f.rejected_static,
            detect_vm_steps: item.detect_vm_steps,
            validation_vm_steps: f.validation_vm_steps,
            peak_shadow_bytes: item.peak_shadow_bytes,
            patch_loc: f.patch_loc.unwrap_or(0) as u64,
            bug_fnv: item.bug_fnv,
        },
        None => CaseOutcome {
            index: item.index,
            stop: item.stop,
            raced: item.report.is_some(),
            fixed: false,
            llm_calls: 0,
            validations: 0,
            rejected_static: 0,
            detect_vm_steps: item.detect_vm_steps,
            validation_vm_steps: 0,
            peak_shadow_bytes: item.peak_shadow_bytes,
            patch_loc: 0,
            bug_fnv: item.bug_fnv,
        },
    };
    (item.shard, o)
}

// ── Collection ───────────────────────────────────────────────────────

/// The collector: reorders arrivals per shard, folds the contiguous
/// frontier into digests/tallies, and writes checkpoints. Outcomes
/// beyond the frontier wait in bounded buffers (the claim gate caps
/// them); on a halt, unfolded stragglers are discarded — a resume
/// recomputes them deterministically.
struct Collector<'a> {
    cfg: &'a CampaignConfig,
    snap: Snapshot,
    pending: Vec<BTreeMap<usize, CaseOutcome>>,
    pending_len: usize,
    peak_pending: usize,
    folds: u64,
    checkpoints: u64,
    since: Vec<usize>,
    snapshot_path: Option<&'a Path>,
    halted: bool,
}

impl<'a> Collector<'a> {
    fn new(cfg: &'a CampaignConfig, snap: Snapshot, snapshot_path: Option<&'a Path>) -> Self {
        let shards = snap.shards.len();
        Collector {
            cfg,
            snap,
            pending: (0..shards).map(|_| BTreeMap::new()).collect(),
            pending_len: 0,
            peak_pending: 0,
            folds: 0,
            checkpoints: 0,
            since: vec![0; shards],
            snapshot_path,
            halted: false,
        }
    }

    /// Accepts one outcome; folds everything it makes contiguous.
    /// Returns how many cases were folded (gate slots to release).
    fn accept(&mut self, shard: usize, o: CaseOutcome) -> usize {
        self.pending[shard].insert(o.index, o);
        self.pending_len += 1;
        self.peak_pending = self.peak_pending.max(self.pending_len);
        let mut newly = 0;
        loop {
            let frontier = self.snap.shards[shard].start + self.snap.shards[shard].done;
            let Some(o) = self.pending[shard].remove(&frontier) else {
                break;
            };
            self.pending_len -= 1;
            let sp = &mut self.snap.shards[shard];
            sp.digest = fold_outcome(sp.digest, &o);
            sp.tallies.add(&o);
            sp.done += 1;
            self.folds += 1;
            self.since[shard] += 1;
            newly += 1;
            if self.since[shard] >= self.cfg.checkpoint_every.max(1) {
                self.since[shard] = 0;
                self.checkpoint();
            }
        }
        newly
    }

    fn checkpoint(&mut self) {
        self.checkpoints += 1;
        self.snap.completed = self.snap.done() == self.snap.cases;
        if let Some(path) = self.snapshot_path {
            // A failed checkpoint write is not fatal mid-run; the final
            // save reports the error.
            let _ = self.snap.save(path);
        }
        if let Some(h) = self.cfg.halt_after_checkpoints {
            if self.checkpoints >= h {
                self.halted = true;
            }
        }
    }

    fn finish(mut self) -> (Snapshot, CollectorStats) {
        self.snap.completed = self.snap.done() == self.snap.cases;
        (
            self.snap,
            CollectorStats {
                folds: self.folds,
                checkpoints: self.checkpoints,
                peak_pending: self.peak_pending,
            },
        )
    }
}

struct CollectorStats {
    folds: u64,
    checkpoints: u64,
    peak_pending: usize,
}

// ── Executors ────────────────────────────────────────────────────────

fn resolve_snapshot(cfg: &CampaignConfig, resume: Option<&Snapshot>) -> Result<Snapshot, String> {
    match resume {
        None => Ok(Snapshot::fresh(cfg)),
        Some(snap) => {
            if snap.schema != CAMPAIGN_SCHEMA {
                return Err(format!(
                    "snapshot schema {} ≠ supported {}",
                    snap.schema, CAMPAIGN_SCHEMA
                ));
            }
            if snap.fingerprint != cfg.fingerprint() {
                return Err(format!(
                    "snapshot fingerprint {:#018x} does not match this configuration \
                     ({:#018x}) — refusing to resume into different outcomes",
                    snap.fingerprint,
                    cfg.fingerprint()
                ));
            }
            let want = partition(cfg.cases, cfg.shards);
            let got: Vec<(usize, usize)> = snap.shards.iter().map(|s| (s.start, s.end)).collect();
            if want != got {
                return Err("snapshot shard ranges do not match this configuration".into());
            }
            for (i, s) in snap.shards.iter().enumerate() {
                if s.done > s.len() {
                    return Err(format!("snapshot shard {i} cursor past its range"));
                }
            }
            Ok(snap.clone())
        }
    }
}

/// Runs a campaign. `resume` continues from a snapshot (validated
/// against the config fingerprint); `snapshot_path` receives checkpoint
/// and final snapshots. `cfg.workers == 1` runs the serial reference
/// executor; more workers run the pipelined one — both produce
/// bit-identical snapshots and deterministic counters.
pub fn run_campaign(
    cfg: &CampaignConfig,
    resume: Option<&Snapshot>,
    snapshot_path: Option<&Path>,
) -> Result<CampaignRun, String> {
    let snap = resolve_snapshot(cfg, resume)?;
    let run = if cfg.workers <= 1 {
        run_serial(cfg, snap, snapshot_path)
    } else {
        run_pipelined(cfg, snap, snapshot_path)
    };
    if let Some(path) = snapshot_path {
        run.snapshot
            .save(path)
            .map_err(|e| format!("writing final snapshot: {e}"))?;
    }
    Ok(run)
}

/// The serial reference executor: one thread, no channels — the
/// bit-identity baseline and the deterministic-counter source the
/// perfscan campaign section gates.
fn run_serial(cfg: &CampaignConfig, snap: Snapshot, snapshot_path: Option<&Path>) -> CampaignRun {
    let start = Instant::now();
    let stream = CorpusStream::new(cfg.stream);
    let queues = ShardQueues::from_snapshot(&snap);
    let resident = Resident::new();
    let mut collector = Collector::new(cfg, snap, snapshot_path);
    let mut stage_cases = [0u64; 4];
    let mut stage_busy = [0f64; 4];
    let mut peak_in_flight = 0u64;

    while !collector.halted {
        let Some((index, shard)) = queues.claim(0) else {
            break;
        };
        peak_in_flight = 1;
        let t0 = Instant::now();
        let mut item = stage_detect(cfg, &stream, index, shard);
        resident.add(item.bytes);
        stage_cases[0] += 1;
        let t1 = Instant::now();
        stage_busy[0] += (t1 - t0).as_secs_f64();
        stage_diagnose(&mut item);
        stage_cases[1] += 1;
        let t2 = Instant::now();
        stage_busy[1] += (t2 - t1).as_secs_f64();
        stage_fix(cfg, &mut item, &resident);
        stage_cases[2] += 1;
        let t3 = Instant::now();
        stage_busy[2] += (t3 - t2).as_secs_f64();
        let (shard, outcome) = stage_validate(cfg, item);
        stage_cases[3] += 1;
        stage_busy[3] += t3.elapsed().as_secs_f64();
        collector.accept(shard, outcome);
    }

    let interrupted = collector.halted;
    let (snap, cstats) = collector.finish();
    let metrics = CampaignMetrics {
        schema: CAMPAIGN_SCHEMA,
        cases_done: cstats.folds,
        wall_seconds: start.elapsed().as_secs_f64(),
        stage_cases: stage_cases.to_vec(),
        stage_busy_seconds: stage_busy.to_vec(),
        queue_pops: queues.pops.load(Ordering::Relaxed),
        steals: queues.steals.load(Ordering::Relaxed),
        steal_probes: queues.probes.load(Ordering::Relaxed),
        channel_peak_depth: vec![0; 3],
        peak_in_flight,
        peak_pending: cstats.peak_pending as u64,
        peak_resident_case_bytes: resident.peak.load(Ordering::Relaxed),
        folds: cstats.folds,
        checkpoints: cstats.checkpoints,
        tallies: snap.tallies(),
    };
    CampaignRun {
        snapshot: snap,
        metrics,
        interrupted,
    }
}

/// Receives from a shared receiver (std mpsc receivers are single-
/// consumer; the mutex serializes the handoff, not the processing).
fn recv_shared<T>(rx: &Mutex<Receiver<T>>) -> Option<T> {
    rx.lock().expect("stage channel poisoned").recv().ok()
}

struct Depth {
    now: AtomicU64,
    peak: AtomicU64,
}

impl Depth {
    fn new() -> Self {
        Depth {
            now: AtomicU64::new(0),
            peak: AtomicU64::new(0),
        }
    }

    /// Called *before* the send: the consumer's `received` may run
    /// before a post-send increment would, underflowing the counter.
    fn sending(&self) {
        let now = self.now.fetch_add(1, Ordering::Relaxed) + 1;
        self.peak.fetch_max(now, Ordering::Relaxed);
    }

    fn received(&self) {
        self.now.fetch_sub(1, Ordering::Relaxed);
    }
}

/// The pipelined executor: detect/fix/validate worker pools and a
/// diagnose worker over bounded channels inside one `thread::scope`;
/// the calling thread is the collector.
fn run_pipelined(
    cfg: &CampaignConfig,
    snap: Snapshot,
    snapshot_path: Option<&Path>,
) -> CampaignRun {
    let start = Instant::now();
    let stream = CorpusStream::new(cfg.stream);
    let queues = ShardQueues::from_snapshot(&snap);
    let resident = Resident::new();
    let gate = Gate::new(cfg.in_flight_limit());
    let halt = AtomicBool::new(false);
    let workers = cfg.workers.max(2);
    let cap = cfg.in_flight_limit();
    let stage_cases: [AtomicU64; 4] = Default::default();
    let depths = [Depth::new(), Depth::new(), Depth::new()];
    let stage_busy = Mutex::new([0f64; 4]);

    let (tx_ab, rx_ab) = sync_channel::<Item>(cap);
    let (tx_bc, rx_bc) = sync_channel::<Item>(cap);
    let (tx_cd, rx_cd) = sync_channel::<Item>(cap);
    let (tx_out, rx_out) = sync_channel::<(usize, CaseOutcome)>(cap);
    let rx_bc = Mutex::new(rx_bc);
    let rx_cd = Mutex::new(rx_cd);

    let mut collector = Collector::new(cfg, snap, snapshot_path);
    std::thread::scope(|s| {
        // Stage 1: detect workers (worker w's home shard is w mod shards).
        for w in 0..workers {
            let tx = tx_ab.clone();
            let (queues, gate, halt, resident, stream) =
                (&queues, &gate, &halt, &resident, &stream);
            let (stage_cases, stage_busy, depth) = (&stage_cases, &stage_busy, &depths[0]);
            let home = w % cfg.shards.max(1);
            s.spawn(move || {
                let t0 = Instant::now();
                loop {
                    if halt.load(Ordering::Relaxed) || !gate.acquire() {
                        break;
                    }
                    let Some((index, shard)) = queues.claim(home) else {
                        gate.release();
                        break;
                    };
                    let item = stage_detect(cfg, stream, index, shard);
                    resident.add(item.bytes);
                    stage_cases[0].fetch_add(1, Ordering::Relaxed);
                    depth.sending();
                    if tx.send(item).is_err() {
                        break;
                    }
                }
                stage_busy.lock().expect("busy poisoned")[0] += t0.elapsed().as_secs_f64();
            });
        }
        drop(tx_ab);

        // Stage 2: one diagnose worker (location extraction is cheap).
        {
            let tx = tx_bc.clone();
            let (stage_cases, stage_busy) = (&stage_cases, &stage_busy);
            let (d_in, d_out) = (&depths[0], &depths[1]);
            s.spawn(move || {
                let t0 = Instant::now();
                while let Ok(mut item) = rx_ab.recv() {
                    d_in.received();
                    stage_diagnose(&mut item);
                    stage_cases[1].fetch_add(1, Ordering::Relaxed);
                    d_out.sending();
                    if tx.send(item).is_err() {
                        break;
                    }
                }
                stage_busy.lock().expect("busy poisoned")[1] += t0.elapsed().as_secs_f64();
            });
        }
        drop(tx_bc);

        // Stage 3: fix workers.
        for _ in 0..workers {
            let tx = tx_cd.clone();
            let (rx, resident) = (&rx_bc, &resident);
            let (stage_cases, stage_busy) = (&stage_cases, &stage_busy);
            let (d_in, d_out) = (&depths[1], &depths[2]);
            s.spawn(move || {
                let t0 = Instant::now();
                while let Some(mut item) = recv_shared(rx) {
                    d_in.received();
                    stage_fix(cfg, &mut item, resident);
                    stage_cases[2].fetch_add(1, Ordering::Relaxed);
                    d_out.sending();
                    if tx.send(item).is_err() {
                        break;
                    }
                }
                stage_busy.lock().expect("busy poisoned")[2] += t0.elapsed().as_secs_f64();
            });
        }
        drop(tx_cd);

        // Stage 4: validate workers.
        for _ in 0..workers {
            let tx: SyncSender<(usize, CaseOutcome)> = tx_out.clone();
            let rx = &rx_cd;
            let (stage_cases, stage_busy, d_in) = (&stage_cases, &stage_busy, &depths[2]);
            s.spawn(move || {
                let t0 = Instant::now();
                while let Some(item) = recv_shared(rx) {
                    d_in.received();
                    let out = stage_validate(cfg, item);
                    stage_cases[3].fetch_add(1, Ordering::Relaxed);
                    if tx.send(out).is_err() {
                        break;
                    }
                }
                stage_busy.lock().expect("busy poisoned")[3] += t0.elapsed().as_secs_f64();
            });
        }
        drop(tx_out);

        // Collector (this thread): fold, release gate slots, halt.
        while let Ok((shard, outcome)) = rx_out.recv() {
            let folded = collector.accept(shard, outcome);
            for _ in 0..folded {
                gate.release();
            }
            if collector.halted && !halt.swap(true, Ordering::Relaxed) {
                gate.halt();
            }
        }
    });

    let interrupted = collector.halted;
    let (snap, cstats) = collector.finish();
    let metrics = CampaignMetrics {
        schema: CAMPAIGN_SCHEMA,
        cases_done: cstats.folds,
        wall_seconds: start.elapsed().as_secs_f64(),
        stage_cases: stage_cases
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .collect(),
        stage_busy_seconds: stage_busy.lock().expect("busy poisoned").to_vec(),
        queue_pops: queues.pops.load(Ordering::Relaxed),
        steals: queues.steals.load(Ordering::Relaxed),
        steal_probes: queues.probes.load(Ordering::Relaxed),
        channel_peak_depth: depths
            .iter()
            .map(|d| d.peak.load(Ordering::Relaxed))
            .collect(),
        peak_in_flight: gate.peak() as u64,
        peak_pending: cstats.peak_pending as u64,
        peak_resident_case_bytes: resident.peak.load(Ordering::Relaxed),
        folds: cstats.folds,
        checkpoints: cstats.checkpoints,
        tallies: snap.tallies(),
    };
    CampaignRun {
        snapshot: snap,
        metrics,
        interrupted,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use corpus::stream::StreamFamily;

    fn small_cfg(cases: usize, shards: usize) -> CampaignConfig {
        let mut cfg = CampaignConfig::new(
            cases,
            shards,
            StreamConfig {
                family: StreamFamily::Exposure,
                seed: 0xCA4A,
            },
        );
        cfg.pipeline.detect_runs = 6;
        cfg.pipeline.seed = 0xFEED;
        cfg.checkpoint_every = 4;
        cfg
    }

    #[test]
    fn partition_covers_everything_contiguously() {
        for (cases, shards) in [(10, 3), (0, 2), (7, 7), (5, 9), (100, 1)] {
            let parts = partition(cases, shards);
            assert_eq!(parts.len(), shards.max(1));
            let mut at = 0;
            for &(s, e) in &parts {
                assert_eq!(s, at.min(cases));
                assert!(e >= s);
                at = e;
            }
            assert_eq!(parts.last().unwrap().1, cases);
        }
    }

    #[test]
    fn pipelined_digest_matches_serial_reference() {
        let cfg = small_cfg(18, 3);
        let serial = run_campaign(&cfg, None, None).unwrap();
        assert!(!serial.interrupted);
        assert!(serial.snapshot.completed);
        assert_eq!(serial.metrics.cases_done, 18);
        for workers in [2, 4] {
            let mut pcfg = cfg.clone();
            pcfg.workers = workers;
            let run = run_campaign(&pcfg, None, None).unwrap();
            assert_eq!(
                run.snapshot, serial.snapshot,
                "snapshot diverged at {workers} workers"
            );
            assert_eq!(run.snapshot.digest(), serial.snapshot.digest());
        }
    }

    #[test]
    fn detect_campaign_actually_detects() {
        let run = run_campaign(&small_cfg(12, 2), None, None).unwrap();
        let t = run.snapshot.tallies();
        assert_eq!(t.cases, 12);
        assert!(t.raced > 0, "exposure corpus exposed nothing: {t:?}");
        assert!(t.detect_vm_steps > 0);
        assert_eq!(t.fixed, 0, "detect mode must not fix");
        assert_eq!(
            t.cases,
            t.stop_completed
                + t.stop_race_exposed
                + t.stop_dedup_saturated
                + t.stop_budget_exhausted
        );
    }

    #[test]
    fn halt_then_resume_reproduces_uninterrupted_digest() {
        let cfg = small_cfg(16, 2);
        let full = run_campaign(&cfg, None, None).unwrap();

        let mut hcfg = cfg.clone();
        hcfg.halt_after_checkpoints = Some(1);
        let halted = run_campaign(&hcfg, None, None).unwrap();
        assert!(halted.interrupted);
        assert!(!halted.snapshot.completed);
        let done = halted.snapshot.done();
        assert!(done < 16, "halt failed to stop early ({done}/16)");
        assert!(done >= 4, "checkpoint fired before its quota");

        let resumed = run_campaign(&cfg, Some(&halted.snapshot), None).unwrap();
        assert!(resumed.snapshot.completed);
        assert_eq!(resumed.snapshot, full.snapshot);
        assert_eq!(
            resumed.metrics.cases_done,
            16 - done as u64,
            "resume recomputed finished work"
        );
    }

    #[test]
    fn resume_refuses_mismatched_fingerprint_and_schema() {
        let cfg = small_cfg(8, 2);
        let run = run_campaign(&cfg, None, None).unwrap();
        let mut other = cfg.clone();
        other.stream.seed ^= 1;
        let err = run_campaign(&other, Some(&run.snapshot), None).unwrap_err();
        assert!(err.contains("fingerprint"), "{err}");
        let mut stale = run.snapshot.clone();
        stale.schema = CAMPAIGN_SCHEMA - 1;
        let err = run_campaign(&cfg, Some(&stale), None).unwrap_err();
        assert!(err.contains("schema"), "{err}");
    }

    #[test]
    fn snapshot_survives_a_disk_round_trip() {
        let cfg = small_cfg(8, 2);
        let dir = std::env::temp_dir().join(format!("drfix-camp-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("snap.json");
        let run = run_campaign(&cfg, None, Some(&path)).unwrap();
        let loaded = Snapshot::load(&path).unwrap();
        assert_eq!(loaded, run.snapshot);
        assert_eq!(loaded.digest(), run.snapshot.digest());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn in_flight_and_resident_bytes_stay_bounded() {
        let mut cfg = small_cfg(24, 2);
        cfg.workers = 4;
        cfg.max_in_flight = 5;
        let run = run_campaign(&cfg, None, None).unwrap();
        assert!(run.metrics.peak_in_flight <= 5, "{:?}", run.metrics);
        assert!(run.metrics.peak_pending <= 5, "{:?}", run.metrics);
        assert!(run.metrics.peak_resident_case_bytes > 0);
        // 8 KiB is a generous per-case ceiling for these templates; the
        // point is the bound scales with the window, not the corpus.
        assert!(
            run.metrics.peak_resident_case_bytes <= 5 * 8192,
            "resident bytes not bounded by the in-flight window: {}",
            run.metrics.peak_resident_case_bytes
        );
    }

    #[test]
    fn mode_names_round_trip() {
        for m in [CampaignMode::Detect, CampaignMode::Fix] {
            assert_eq!(CampaignMode::parse(m.name()), Some(m));
        }
        assert_eq!(CampaignMode::parse("nope"), None);
    }

    #[test]
    fn empty_campaign_completes_immediately() {
        let run = run_campaign(&small_cfg(0, 2), None, None).unwrap();
        assert!(run.snapshot.completed);
        assert_eq!(run.metrics.cases_done, 0);
    }
}
