//! Step 0 (§3.1/§4.1): the example database.
//!
//! Each curated `(racy, fixed)` pair is stored twice: keyed by the
//! embedding of its concurrency *skeleton* (Dr.Fix's design) and keyed by
//! the embedding of its *raw* source (the "RAG without skeleton"
//! ablation arm of Fig. 3).

use serde::{Deserialize, Serialize};
use skeleton::{skeletonize, SkeletonOptions};
use synthllm::Example;
use vecdb::VectorStore;

/// How examples are retrieved (Fig. 3's three arms).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RagMode {
    /// No example: the LLM's inherent capability only.
    None,
    /// Retrieval over raw source text.
    Raw,
    /// Retrieval over concurrency skeletons (the paper's design).
    Skeleton,
}

/// A stored example with provenance.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DbEntry {
    /// The racy code.
    pub buggy: String,
    /// The accepted fix.
    pub fixed: String,
    /// Category label (for retrieval-accuracy accounting).
    pub category: synthllm::RaceCategory,
}

/// The example database: one vector store per retrieval mode.
pub struct ExampleDb {
    skeleton_store: VectorStore<DbEntry>,
    raw_store: VectorStore<DbEntry>,
}

impl ExampleDb {
    /// Builds the database from curated pairs (populating it is the
    /// "one-time activity" of §4.1).
    pub fn build(pairs: &[corpus::DbPair]) -> Self {
        let mut skeleton_store = VectorStore::new(embed::DIM);
        let mut raw_store = VectorStore::new(embed::DIM);
        for p in pairs {
            let entry = DbEntry {
                buggy: p.buggy.clone(),
                fixed: p.fixed.clone(),
                category: p.category,
            };
            let sk_text = skeletonize(
                &p.buggy,
                &[],
                &SkeletonOptions {
                    extra_racy_vars: vec![p.racy_var.clone()],
                    no_slicing: false,
                },
            )
            .map(|s| s.text)
            .unwrap_or_else(|_| p.buggy.clone());
            let _ = skeleton_store.insert(embed::embed(&sk_text), entry.clone());
            let _ = raw_store.insert(embed::embed(&p.buggy), entry);
        }
        ExampleDb {
            skeleton_store,
            raw_store,
        }
    }

    /// Number of stored pairs.
    pub fn len(&self) -> usize {
        self.skeleton_store.len()
    }

    /// Whether the database is empty.
    pub fn is_empty(&self) -> bool {
        self.skeleton_store.is_empty()
    }

    /// Retrieves the best example for the query code, per mode. Returns
    /// the example and its stored category (for accounting).
    pub fn retrieve(
        &self,
        mode: RagMode,
        code: &str,
        racy_var: &str,
        racy_lines: &[u32],
    ) -> Option<(Example, synthllm::RaceCategory, f32)> {
        match mode {
            RagMode::None => None,
            RagMode::Raw => {
                let q = embed::embed(code);
                let hit = self.raw_store.query(&q, 1).into_iter().next()?;
                Some((
                    Example {
                        buggy: hit.item.buggy.clone(),
                        fixed: hit.item.fixed.clone(),
                    },
                    hit.item.category,
                    hit.score,
                ))
            }
            RagMode::Skeleton => {
                let sk = skeletonize(
                    code,
                    racy_lines,
                    &SkeletonOptions {
                        extra_racy_vars: vec![racy_var.to_owned()],
                        no_slicing: false,
                    },
                )
                .map(|s| s.text)
                .unwrap_or_else(|_| code.to_owned());
                let q = embed::embed(&sk);
                let hit = self.skeleton_store.query(&q, 1).into_iter().next()?;
                Some((
                    Example {
                        buggy: hit.item.buggy.clone(),
                        fixed: hit.item.fixed.clone(),
                    },
                    hit.item.category,
                    hit.score,
                ))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use corpus::CorpusConfig;

    fn small_db() -> ExampleDb {
        let pairs = corpus::generate_example_db(&CorpusConfig {
            eval_cases: 0,
            db_pairs: 60,
            seed: 42,
        });
        ExampleDb::build(&pairs)
    }

    #[test]
    fn builds_both_stores() {
        let db = small_db();
        assert_eq!(db.len(), 60);
        assert!(!db.is_empty());
    }

    #[test]
    fn skeleton_retrieval_beats_raw_on_category_accuracy() {
        let db = small_db();
        // Fresh queries from the same generator (different seed): measure
        // how often the retrieved example has the query's category.
        let queries = corpus::generate_eval_corpus(&CorpusConfig {
            eval_cases: 60,
            db_pairs: 0,
            seed: 4242,
        });
        let mut skel_hits = 0usize;
        let mut raw_hits = 0usize;
        let mut total = 0usize;
        for q in queries.iter().filter(|c| c.fixable) {
            let code = &q.files[0].1;
            // The pipeline passes the report's racy variable; the
            // templates record it in a `// racy:` comment.
            let var = code
                .lines()
                .find_map(|l| l.trim().strip_prefix("// racy:").map(|v| v.trim().to_owned()))
                .unwrap_or_else(|| "x".to_owned());
            total += 1;
            if let Some((_, cat, _)) = db.retrieve(RagMode::Skeleton, code, &var, &[]) {
                if cat == q.category {
                    skel_hits += 1;
                }
            }
            if let Some((_, cat, _)) = db.retrieve(RagMode::Raw, code, &var, &[]) {
                if cat == q.category {
                    raw_hits += 1;
                }
            }
        }
        assert!(total > 10);
        assert!(
            skel_hits > raw_hits,
            "skeleton retrieval ({skel_hits}/{total}) must beat raw ({raw_hits}/{total})"
        );
        assert!(
            skel_hits * 10 >= total * 7,
            "skeleton retrieval should be mostly right: {skel_hits}/{total}"
        );
    }

    #[test]
    fn none_mode_returns_nothing() {
        let db = small_db();
        assert!(db.retrieve(RagMode::None, "package p", "x", &[]).is_none());
    }
}
