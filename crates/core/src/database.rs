//! Step 0 (§3.1/§4.1): the example database.
//!
//! Each curated `(racy, fixed)` pair is stored twice: keyed by the
//! embedding of its concurrency *skeleton* (Dr.Fix's design) and keyed by
//! the embedding of its *raw* source (the "RAG without skeleton"
//! ablation arm of Fig. 3).

use crate::fleet::{self, FleetConfig};
use serde::{Deserialize, Serialize};
use skeleton::{skeletonize, SkeletonOptions};
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::RwLock;
use synthllm::Example;
use vecdb::VectorStore;

/// How examples are retrieved (Fig. 3's three arms).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RagMode {
    /// No example: the LLM's inherent capability only.
    None,
    /// Retrieval over raw source text.
    Raw,
    /// Retrieval over concurrency skeletons (the paper's design).
    Skeleton,
}

/// A stored example with provenance.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DbEntry {
    /// The racy code.
    pub buggy: String,
    /// The accepted fix.
    pub fixed: String,
    /// Category label (for retrieval-accuracy accounting).
    pub category: synthllm::RaceCategory,
}

/// The example database: one vector store per retrieval mode, plus a
/// process-wide query-embedding cache.
///
/// The cache memoizes the expensive half of [`ExampleDb::retrieve`] —
/// skeletonizing and embedding the *query* — keyed by the query content,
/// so a case retried across ablation arms (or scopes) pays for its
/// embedding once. It is interior-mutable behind an `RwLock`, keeping
/// the database shareable read-only across fleet workers.
pub struct ExampleDb {
    skeleton_store: VectorStore<DbEntry>,
    raw_store: VectorStore<DbEntry>,
    query_cache: RwLock<HashMap<u64, Vec<f32>>>,
    cache_hits: AtomicUsize,
    cache_misses: AtomicUsize,
}

impl ExampleDb {
    /// Builds the database from curated pairs (populating it is the
    /// "one-time activity" of §4.1).
    pub fn build(pairs: &[corpus::DbPair]) -> Self {
        Self::build_with(pairs, &FleetConfig::serial())
    }

    /// Builds the database with per-pair skeletonization and embedding
    /// sharded across the fleet. The stores are filled in pair order
    /// afterwards, so the result is bit-identical to [`ExampleDb::build`]
    /// at any thread count.
    pub fn build_with(pairs: &[corpus::DbPair], fleet: &FleetConfig) -> Self {
        let embedded = fleet::run_indexed(fleet, pairs.len(), |i| {
            let p = &pairs[i];
            let sk_text = skeletonize(
                &p.buggy,
                &[],
                &SkeletonOptions {
                    extra_racy_vars: vec![p.racy_var.clone()],
                    no_slicing: false,
                },
            )
            .map(|s| s.text)
            .unwrap_or_else(|_| p.buggy.clone());
            (embed::embed(&sk_text), embed::embed(&p.buggy))
        });
        let mut skeleton_store = VectorStore::new(embed::DIM);
        let mut raw_store = VectorStore::new(embed::DIM);
        for (p, (sk_vec, raw_vec)) in pairs.iter().zip(embedded.results) {
            let entry = DbEntry {
                buggy: p.buggy.clone(),
                fixed: p.fixed.clone(),
                category: p.category,
            };
            let _ = skeleton_store.insert(sk_vec, entry.clone());
            let _ = raw_store.insert(raw_vec, entry);
        }
        ExampleDb {
            skeleton_store,
            raw_store,
            query_cache: RwLock::new(HashMap::new()),
            cache_hits: AtomicUsize::new(0),
            cache_misses: AtomicUsize::new(0),
        }
    }

    /// Number of stored pairs.
    pub fn len(&self) -> usize {
        self.skeleton_store.len()
    }

    /// Whether the database is empty.
    pub fn is_empty(&self) -> bool {
        self.skeleton_store.is_empty()
    }

    /// Retrieves the best example for the query code, per mode. Returns
    /// the example and its stored category (for accounting).
    ///
    /// The query embedding is memoized in the database's cache: repeat
    /// retrievals for the same case (across ablation arms, locations, or
    /// retries) skip skeletonization and embedding entirely.
    pub fn retrieve(
        &self,
        mode: RagMode,
        code: &str,
        racy_var: &str,
        racy_lines: &[u32],
    ) -> Option<(Example, synthllm::RaceCategory, f32)> {
        let store = match mode {
            RagMode::None => return None,
            RagMode::Raw => &self.raw_store,
            RagMode::Skeleton => &self.skeleton_store,
        };
        let q = self.query_embedding(mode, code, racy_var, racy_lines);
        let hit = store.query(&q, 1).into_iter().next()?;
        Some((
            Example {
                buggy: hit.item.buggy.clone(),
                fixed: hit.item.fixed.clone(),
            },
            hit.item.category,
            hit.score,
        ))
    }

    /// Computes (or recalls) the embedding for one query.
    fn query_embedding(
        &self,
        mode: RagMode,
        code: &str,
        racy_var: &str,
        racy_lines: &[u32],
    ) -> Vec<f32> {
        let key = query_key(mode, code, racy_var, racy_lines);
        if let Some(v) = self.query_cache.read().expect("cache poisoned").get(&key) {
            self.cache_hits.fetch_add(1, Ordering::Relaxed);
            return v.clone();
        }
        self.cache_misses.fetch_add(1, Ordering::Relaxed);
        let v = match mode {
            RagMode::None => unreachable!("None mode never embeds"),
            RagMode::Raw => embed::embed(code),
            RagMode::Skeleton => {
                let sk = skeletonize(
                    code,
                    racy_lines,
                    &SkeletonOptions {
                        extra_racy_vars: vec![racy_var.to_owned()],
                        no_slicing: false,
                    },
                )
                .map(|s| s.text)
                .unwrap_or_else(|_| code.to_owned());
                embed::embed(&sk)
            }
        };
        self.query_cache
            .write()
            .expect("cache poisoned")
            .insert(key, v.clone());
        v
    }

    /// `(hits, misses)` of the query-embedding cache so far.
    pub fn cache_stats(&self) -> (usize, usize) {
        (
            self.cache_hits.load(Ordering::Relaxed),
            self.cache_misses.load(Ordering::Relaxed),
        )
    }
}

/// Content hash of one retrieval query (FNV-1a over every input that
/// can change the embedding). Keying by content — not merely by case id
/// — keeps the cache exact: two scopes of the same case embed different
/// code and must not share an entry. Raw mode embeds the code alone, so
/// its key deliberately ignores `racy_var`/`racy_lines` — otherwise the
/// same embedding would be recomputed once per fix location.
fn query_key(mode: RagMode, code: &str, racy_var: &str, racy_lines: &[u32]) -> u64 {
    let mut h = fleet::fnv1a64_fold(
        fleet::FNV1A_OFFSET,
        &[match mode {
            RagMode::None => 0,
            RagMode::Raw => 1,
            RagMode::Skeleton => 2,
        }],
    );
    h = fleet::fnv1a64_fold(h, code.as_bytes());
    if mode == RagMode::Skeleton {
        h = fleet::fnv1a64_fold(h, &[0xFF]);
        h = fleet::fnv1a64_fold(h, racy_var.as_bytes());
        for line in racy_lines {
            h = fleet::fnv1a64_fold(h, &line.to_le_bytes());
        }
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use corpus::CorpusConfig;

    fn small_db() -> ExampleDb {
        let pairs = corpus::generate_example_db(&CorpusConfig {
            eval_cases: 0,
            db_pairs: 60,
            seed: 42,
        });
        ExampleDb::build(&pairs)
    }

    #[test]
    fn builds_both_stores() {
        let db = small_db();
        assert_eq!(db.len(), 60);
        assert!(!db.is_empty());
    }

    #[test]
    fn skeleton_retrieval_beats_raw_on_category_accuracy() {
        let db = small_db();
        // Fresh queries from the same generator (different seed): measure
        // how often the retrieved example has the query's category.
        let queries = corpus::generate_eval_corpus(&CorpusConfig {
            eval_cases: 60,
            db_pairs: 0,
            seed: 4242,
        });
        let mut skel_hits = 0usize;
        let mut raw_hits = 0usize;
        let mut total = 0usize;
        for q in queries.iter().filter(|c| c.fixable) {
            let code = &q.files[0].1;
            // The pipeline passes the report's racy variable; the
            // templates record it in a `// racy:` comment.
            let var = code
                .lines()
                .find_map(|l| {
                    l.trim()
                        .strip_prefix("// racy:")
                        .map(|v| v.trim().to_owned())
                })
                .unwrap_or_else(|| "x".to_owned());
            total += 1;
            if let Some((_, cat, _)) = db.retrieve(RagMode::Skeleton, code, &var, &[]) {
                if cat == q.category {
                    skel_hits += 1;
                }
            }
            if let Some((_, cat, _)) = db.retrieve(RagMode::Raw, code, &var, &[]) {
                if cat == q.category {
                    raw_hits += 1;
                }
            }
        }
        assert!(total > 10);
        assert!(
            skel_hits > raw_hits,
            "skeleton retrieval ({skel_hits}/{total}) must beat raw ({raw_hits}/{total})"
        );
        assert!(
            skel_hits * 10 >= total * 7,
            "skeleton retrieval should be mostly right: {skel_hits}/{total}"
        );
    }

    #[test]
    fn none_mode_returns_nothing() {
        let db = small_db();
        assert!(db.retrieve(RagMode::None, "package p", "x", &[]).is_none());
        assert_eq!(
            db.cache_stats(),
            (0, 0),
            "None mode must not touch the cache"
        );
    }

    #[test]
    fn repeat_queries_hit_the_embedding_cache() {
        let db = small_db();
        let code =
            "package p\n\nfunc f() {\n\tx := 0\n\tgo func() {\n\t\tx = 1\n\t}()\n\t_ = x\n}\n";
        let first = db.retrieve(RagMode::Skeleton, code, "x", &[5]);
        assert_eq!(db.cache_stats(), (0, 1));
        let second = db.retrieve(RagMode::Skeleton, code, "x", &[5]);
        assert_eq!(db.cache_stats(), (1, 1), "identical query must hit");
        let (e1, c1, s1) = first.unwrap();
        let (e2, c2, s2) = second.unwrap();
        assert_eq!((e1.buggy, c1, s1.to_bits()), (e2.buggy, c2, s2.to_bits()));
        // Different scope code, mode, var, or lines → distinct entries.
        db.retrieve(RagMode::Raw, code, "x", &[5]);
        db.retrieve(RagMode::Skeleton, code, "y", &[5]);
        db.retrieve(RagMode::Skeleton, code, "x", &[6]);
        assert_eq!(db.cache_stats(), (1, 4));
        // Raw embeds the code alone: var/lines must not split its key.
        db.retrieve(RagMode::Raw, code, "other", &[9]);
        assert_eq!(db.cache_stats(), (2, 4));
    }

    #[test]
    fn parallel_build_is_bit_identical_to_serial() {
        let pairs = corpus::generate_example_db(&CorpusConfig {
            eval_cases: 0,
            db_pairs: 40,
            seed: 77,
        });
        let serial = ExampleDb::build(&pairs);
        let parallel = ExampleDb::build_with(&pairs, &crate::fleet::FleetConfig::new(8));
        assert_eq!(serial.len(), parallel.len());
        let probe = &pairs[17].buggy;
        let a = serial.retrieve(RagMode::Skeleton, probe, &pairs[17].racy_var, &[]);
        let b = parallel.retrieve(RagMode::Skeleton, probe, &pairs[17].racy_var, &[]);
        let (ea, ca, sa) = a.unwrap();
        let (eb, cb, sb) = b.unwrap();
        assert_eq!(
            (ea.buggy, ea.fixed, ca, sa.to_bits()),
            (eb.buggy, eb.fixed, cb, sb.to_bits())
        );
    }
}
