//! Developer validation (§4.5) and perception (RQ4): a seeded model of
//! the human populations the paper reports on.
//!
//! Code-review acceptance, ticket resolution times, and the user survey
//! are human measurements; this module models the populations with the
//! paper's published marginals (86% acceptance with §5.2's rejection
//! reasons, 3-day vs 11-day closure, Table 6's response distribution) so
//! the benches can regenerate the corresponding tables. EXPERIMENTS.md
//! documents this substitution.

use crate::pipeline::FixOutcome;
use serde::{Deserialize, Serialize};
use synthllm::capability::draw;
use synthllm::StrategyKind;

/// Outcome of a code review.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum ReviewOutcome {
    /// Approved and merged as-is.
    Approved,
    /// Approved after minor idiomatic refinement (8 of 193 in §5.2).
    ApprovedWithTouchups,
    /// Rejected, with the §5.2 reason.
    Rejected(RejectReason),
}

impl ReviewOutcome {
    /// Whether the patch landed.
    pub fn accepted(&self) -> bool {
        !matches!(self, ReviewOutcome::Rejected(_))
    }
}

/// §5.2's rejection reasons.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RejectReason {
    /// "prioritizing code readability over intricate solutions".
    Readability,
    /// "opting for broader manual refactoring instead of targeted fixes".
    PrefersRefactor,
    /// "identifying certain solutions as incorrect despite passing tests".
    SuspectedIncorrect,
}

/// Reviews one produced fix. Deterministic per `(seed, case_key)`.
pub fn review_fix(seed: u64, case_key: &str, outcome: &FixOutcome) -> ReviewOutcome {
    let strategy = outcome.strategy;
    let loc = outcome.patch_loc.unwrap_or(10) as f64;
    // Idiomatic strategies sail through; blanket locks draw the
    // readability objection; very large diffs push reviewers toward
    // manual refactoring.
    let base = match strategy {
        Some(StrategyKind::BlanketMutex) => 0.45,
        Some(s) if s.idiomatic() => 0.92,
        _ => 0.85,
    };
    let p_accept = (base - (loc / 400.0)).clamp(0.2, 0.97);
    let r = draw(seed, &[case_key], "review");
    if r < p_accept {
        // A small slice of approvals need idiomatic touch-ups
        // (8/193 ≈ 4%).
        if draw(seed, &[case_key], "touchup") < 0.042 {
            ReviewOutcome::ApprovedWithTouchups
        } else {
            ReviewOutcome::Approved
        }
    } else {
        let which = draw(seed, &[case_key], "reason");
        let reason = if which < 0.4 {
            RejectReason::Readability
        } else if which < 0.75 {
            RejectReason::PrefersRefactor
        } else {
            RejectReason::SuspectedIncorrect
        };
        ReviewOutcome::Rejected(reason)
    }
}

/// Ticket wall-clock days: Dr.Fix tickets averaged 3 days, manual fixes
/// 11 days (§5.5).
pub fn resolution_days(seed: u64, case_key: &str, via_drfix: bool) -> f64 {
    let r = draw(seed, &[case_key], "days");
    if via_drfix {
        1.5 + r * 3.0 // mean 3.0
    } else {
        6.0 + r * 10.0 // mean 11.0
    }
}

/// One survey respondent (Table 6).
///
/// Serialize-only: responses are sampled in-process and exported, never
/// parsed back (the `&'static str` buckets cannot be deserialized).
#[derive(Debug, Clone, Serialize)]
pub struct SurveyResponse {
    /// Go experience bucket.
    pub experience: &'static str,
    /// Concurrency familiarity bucket.
    pub familiarity: &'static str,
    /// Comfort fixing races.
    pub comfort: &'static str,
    /// Fix-quality rating (1–5).
    pub quality: u8,
    /// Race-complexity rating (1–5).
    pub complexity: u8,
    /// Estimated time saved bucket.
    pub time_saved: &'static str,
}

/// Samples the 21-developer survey with Table 6's marginal counts.
pub fn survey(seed: u64) -> Vec<SurveyResponse> {
    let experience: Vec<&'static str> = expand(&[
        ("Less than 1 year", 5),
        ("1 to 3 years", 9),
        ("3 to 5 years", 3),
        ("More than 5 years", 4),
    ]);
    let familiarity = expand(&[("Somewhat Familiar", 12), ("Very Familiar", 9)]);
    let comfort = expand(&[
        ("Not Comfortable at All", 1),
        ("Slightly Comfortable but Need Help", 14),
        ("Very Comfortable and Do Not Need Help", 6),
    ]);
    let time_saved = expand(&[
        ("Up to 1 day", 14),
        ("1 to 2 days", 4),
        ("2 to 4 days", 2),
        ("1 to 2 weeks", 1),
    ]);
    // Quality 3.38 ± 1.24; complexity 3.00 ± 0.89 on n=21.
    let quality_scores = [
        5, 5, 5, 4, 4, 4, 4, 4, 3, 3, 3, 3, 3, 3, 2, 2, 2, 2, 5, 1, 4,
    ];
    let complexity_scores = [
        3, 3, 3, 3, 3, 3, 3, 4, 4, 4, 2, 2, 2, 4, 3, 3, 2, 3, 4, 2, 3,
    ];

    (0..21)
        .map(|i| {
            let pick = |items: &Vec<&'static str>, tag: &str| -> &'static str {
                let r = draw(seed, &[&i.to_string()], tag);
                items[(r * items.len() as f64) as usize % items.len()]
            };
            SurveyResponse {
                experience: pick(&experience, "exp"),
                familiarity: pick(&familiarity, "fam"),
                comfort: pick(&comfort, "comfort"),
                quality: quality_scores[i],
                complexity: complexity_scores[i],
                time_saved: pick(&time_saved, "saved"),
            }
        })
        .collect()
}

fn expand(buckets: &[(&'static str, usize)]) -> Vec<&'static str> {
    let mut out = Vec::new();
    for (label, n) in buckets {
        for _ in 0..*n {
            out.push(*label);
        }
    }
    out
}

/// Mean and sample standard deviation.
pub fn mean_std(xs: &[f64]) -> (f64, f64) {
    if xs.is_empty() {
        return (0.0, 0.0);
    }
    let mean = xs.iter().sum::<f64>() / xs.len() as f64;
    let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>()
        / (xs.len().saturating_sub(1).max(1)) as f64;
    (mean, var.sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::FixOutcome;

    fn outcome(strategy: StrategyKind, loc: usize) -> FixOutcome {
        FixOutcome {
            fixed: true,
            patch: None,
            strategy: Some(strategy),
            location: None,
            scope: None,
            example_used: false,
            example_category: None,
            llm_calls: 2,
            validations: 1,
            rejected_static: 0,
            validation_vm_steps: 0,
            duration_minutes: 8.0,
            patch_loc: Some(loc),
            failure: None,
            bug_hash: Some("h".into()),
            racy_var: Some("x".into()),
            tournament: None,
        }
    }

    #[test]
    fn idiomatic_fixes_mostly_accepted() {
        let mut accepted = 0;
        for i in 0..200 {
            let o = outcome(StrategyKind::RedeclareInGoroutine, 6);
            if review_fix(1, &format!("case{i}"), &o).accepted() {
                accepted += 1;
            }
        }
        assert!((160..=200).contains(&accepted), "{accepted}");
    }

    #[test]
    fn blanket_locks_rejected_far_more() {
        let mut idiomatic = 0;
        let mut blanket = 0;
        for i in 0..200 {
            if review_fix(1, &format!("a{i}"), &outcome(StrategyKind::MutexGuard, 8)).accepted() {
                idiomatic += 1;
            }
            if review_fix(1, &format!("a{i}"), &outcome(StrategyKind::BlanketMutex, 8)).accepted() {
                blanket += 1;
            }
        }
        assert!(blanket < idiomatic - 40, "{blanket} vs {idiomatic}");
    }

    #[test]
    fn drfix_tickets_close_much_faster() {
        let mut fast = 0.0;
        let mut slow = 0.0;
        for i in 0..100 {
            fast += resolution_days(2, &format!("c{i}"), true);
            slow += resolution_days(2, &format!("c{i}"), false);
        }
        let (fast, slow) = (fast / 100.0, slow / 100.0);
        assert!((2.0..4.5).contains(&fast), "{fast}");
        assert!((9.0..13.0).contains(&slow), "{slow}");
    }

    #[test]
    fn survey_matches_table6_marginals() {
        let s = survey(3);
        assert_eq!(s.len(), 21);
        let (q_mean, q_std) = mean_std(&s.iter().map(|r| r.quality as f64).collect::<Vec<_>>());
        let (c_mean, _) = mean_std(&s.iter().map(|r| r.complexity as f64).collect::<Vec<_>>());
        assert!((3.0..3.8).contains(&q_mean), "{q_mean}");
        assert!((0.9..1.6).contains(&q_std), "{q_std}");
        assert!((2.7..3.3).contains(&c_mean), "{c_mean}");
    }

    #[test]
    fn review_is_deterministic() {
        let o = outcome(StrategyKind::MutexGuard, 10);
        assert_eq!(review_fix(9, "k", &o), review_fix(9, "k", &o));
    }
}
