//! The slicing pass: keep concurrency structure and interest variables,
//! drop everything else (§4.3: "keeping control structures like loops and
//! conditionals only if they transitively contain relevant concurrency
//! constructs or variables of interest").

use crate::relevance::{stmt_has_concurrency, stmt_touches_vars};
use golite::ast::*;

/// Slices one function, returning a copy whose body keeps only relevant
/// statements. `keep_all` skips slicing (rename-only skeletons).
pub fn slice_function(f: &FuncDecl, vars: &[String], keep_all: bool) -> FuncDecl {
    let mut out = f.clone();
    if keep_all {
        return out;
    }
    if let Some(body) = &f.body {
        out.body = Some(slice_block(body, vars));
    }
    out
}

fn slice_block(b: &Block, vars: &[String]) -> Block {
    let mut stmts = Vec::new();
    for s in &b.stmts {
        if let Some(kept) = slice_stmt(s, vars) {
            stmts.push(kept);
        }
    }
    Block {
        stmts,
        span: b.span,
    }
}

/// Returns the sliced version of a statement, or `None` when it is
/// irrelevant noise.
fn slice_stmt(s: &Stmt, vars: &[String]) -> Option<Stmt> {
    match s {
        // Control structures recurse: kept if their headers touch
        // interest variables or any nested statement survives.
        Stmt::If(st) => {
            let then = slice_block(&st.then, vars);
            let else_ = st.else_.as_ref().and_then(|e| slice_stmt(e, vars));
            let header_relevant = stmt_touches_vars(s, vars) || stmt_has_concurrency_header(s);
            if then.stmts.is_empty() && else_.is_none() && !header_relevant {
                return None;
            }
            Some(Stmt::If(IfStmt {
                init: st.init.clone(),
                cond: st.cond.clone(),
                then,
                else_: else_.map(Box::new),
                span: st.span,
            }))
        }
        Stmt::For(st) => {
            let body = slice_block(&st.body, vars);
            let header_relevant = stmt_touches_vars(s, vars);
            if body.stmts.is_empty() && !header_relevant {
                return None;
            }
            Some(Stmt::For(ForStmt {
                init: st.init.clone(),
                cond: st.cond.clone(),
                post: st.post.clone(),
                body,
                span: st.span,
            }))
        }
        Stmt::Range(st) => {
            let body = slice_block(&st.body, vars);
            let header_relevant = stmt_touches_vars(s, vars);
            if body.stmts.is_empty() && !header_relevant {
                return None;
            }
            Some(Stmt::Range(RangeStmt {
                key: st.key.clone(),
                value: st.value.clone(),
                define: st.define,
                expr: st.expr.clone(),
                body,
                span: st.span,
            }))
        }
        Stmt::Switch(st) => {
            let mut cases = Vec::new();
            let mut any = false;
            for c in &st.cases {
                let body: Vec<Stmt> = c.body.iter().filter_map(|x| slice_stmt(x, vars)).collect();
                if !body.is_empty() {
                    any = true;
                }
                cases.push(SwitchCase {
                    exprs: c.exprs.clone(),
                    body,
                    span: c.span,
                });
            }
            if !any && !stmt_touches_vars(s, vars) {
                return None;
            }
            Some(Stmt::Switch(SwitchStmt {
                init: st.init.clone(),
                tag: st.tag.clone(),
                cases,
                span: st.span,
            }))
        }
        // Select is inherently a concurrency construct: always kept, with
        // case bodies sliced.
        Stmt::Select(st) => {
            let cases = st
                .cases
                .iter()
                .map(|c| SelectCase {
                    comm: c.comm.clone(),
                    body: c.body.iter().filter_map(|x| slice_stmt(x, vars)).collect(),
                    span: c.span,
                })
                .collect();
            Some(Stmt::Select(SelectStmt {
                cases,
                span: st.span,
            }))
        }
        Stmt::Block(b) => {
            let inner = slice_block(b, vars);
            if inner.stmts.is_empty() {
                return None;
            }
            Some(Stmt::Block(inner))
        }
        Stmt::Labeled { label, stmt, span } => {
            let inner = slice_stmt(stmt, vars)?;
            Some(Stmt::Labeled {
                label: label.clone(),
                stmt: Box::new(inner),
                span: *span,
            })
        }
        // `go`/`defer` launches: always concurrency-relevant; slice the
        // closure body if the call target is a function literal.
        Stmt::Go { call, span } => Some(Stmt::Go {
            call: slice_call_closure(call, vars),
            span: *span,
        }),
        Stmt::Defer { call, span } => Some(Stmt::Defer {
            call: slice_call_closure(call, vars),
            span: *span,
        }),
        // Leaf statements: kept iff concurrency-bearing or touching
        // interest variables (closure arguments are sliced in place).
        other => {
            if stmt_has_concurrency(other) || stmt_touches_vars(other, vars) {
                Some(slice_closures_in_stmt(other, vars))
            } else {
                None
            }
        }
    }
}

fn stmt_has_concurrency_header(s: &Stmt) -> bool {
    // Conservative: `if` headers with channel receives.
    let mut found = false;
    crate::relevance::stmt_exprs(s, &mut |e| {
        if crate::relevance::expr_has_concurrency(e) {
            found = true;
        }
    });
    found
}

/// Slices the bodies of function literals appearing inside a call.
fn slice_call_closure(call: &Expr, vars: &[String]) -> Expr {
    map_expr(call, &mut |e| {
        if let Expr::FuncLit { sig, body, span } = e {
            Expr::FuncLit {
                sig: sig.clone(),
                body: slice_block(body, vars),
                span: *span,
            }
        } else {
            e.clone()
        }
    })
}

fn slice_closures_in_stmt(s: &Stmt, vars: &[String]) -> Stmt {
    match s {
        Stmt::Expr(e) => Stmt::Expr(slice_call_closure(e, vars)),
        Stmt::Assign { lhs, op, rhs, span } => Stmt::Assign {
            lhs: lhs.clone(),
            op: *op,
            rhs: rhs.iter().map(|e| slice_call_closure(e, vars)).collect(),
            span: *span,
        },
        Stmt::ShortVar {
            names,
            values,
            span,
        } => Stmt::ShortVar {
            names: names.clone(),
            values: values.iter().map(|e| slice_call_closure(e, vars)).collect(),
            span: *span,
        },
        other => other.clone(),
    }
}

/// Shallow-maps an expression tree bottom-up.
fn map_expr(e: &Expr, f: &mut impl FnMut(&Expr) -> Expr) -> Expr {
    let rebuilt = match e {
        Expr::Call {
            fun,
            args,
            variadic,
            span,
        } => Expr::Call {
            fun: Box::new(map_expr(fun, f)),
            args: args.iter().map(|a| map_expr(a, f)).collect(),
            variadic: *variadic,
            span: *span,
        },
        Expr::Selector { expr, name, span } => Expr::Selector {
            expr: Box::new(map_expr(expr, f)),
            name: name.clone(),
            span: *span,
        },
        Expr::Paren { expr, span } => Expr::Paren {
            expr: Box::new(map_expr(expr, f)),
            span: *span,
        },
        other => other.clone(),
    };
    f(&rebuilt)
}

#[cfg(test)]
mod tests {
    use super::*;
    use golite::parse_file;

    fn func_of(src: &str, name: &str) -> FuncDecl {
        parse_file(src).unwrap().find_func(name).unwrap().clone()
    }

    #[test]
    fn drops_pure_business_statements() {
        let f = func_of(
            "package p\nfunc f() {\n\tx := 0\n\ta := 1\n\tb := a + 2\n\tuse(b)\n\tgo func() {\n\t\tx = 1\n\t}()\n\tuse2(x)\n}\n",
            "f",
        );
        let sliced = slice_function(&f, &["x".to_owned()], false);
        let body = sliced.body.unwrap();
        // x := 0, go stmt, use2(x) survive; a/b noise dropped.
        assert_eq!(body.stmts.len(), 3);
    }

    #[test]
    fn keeps_goroutine_and_slices_its_body() {
        let f = func_of(
            "package p\nfunc f() {\n\tx := 0\n\tgo func() {\n\t\tnoise()\n\t\tx = 1\n\t}()\n}\n",
            "f",
        );
        let sliced = slice_function(&f, &["x".to_owned()], false);
        let printed = golite::print_func(&sliced);
        assert!(printed.contains("go func()"));
        assert!(printed.contains("x = 1"));
        assert!(!printed.contains("noise"));
    }

    #[test]
    fn keeps_select_always() {
        let f = func_of(
            "package p\nfunc f(ch chan int) {\n\tselect {\n\tcase v := <-ch:\n\t\tuse(v)\n\tdefault:\n\t\tnoise()\n\t}\n}\n",
            "f",
        );
        let sliced = slice_function(&f, &[], false);
        let printed = golite::print_func(&sliced);
        assert!(printed.contains("select"));
    }

    #[test]
    fn empty_if_blocks_disappear() {
        let f = func_of(
            "package p\nfunc f() {\n\tif cond() {\n\t\tnoise()\n\t}\n\tmu.Lock()\n}\n",
            "f",
        );
        let sliced = slice_function(&f, &[], false);
        let printed = golite::print_func(&sliced);
        assert!(!printed.contains("if "));
        assert!(printed.contains("mu.Lock()"));
    }
}
