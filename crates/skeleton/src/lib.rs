//! `skeleton` — concurrency-aware program slicing (Dr.Fix §4.3).
//!
//! Given a Go source file and the line numbers involved in a data race,
//! this crate produces the *concurrency skeleton*: a distilled version of
//! the enclosing functions that keeps only concurrency constructs and the
//! race-relevant variables, with every identifier consistently renamed
//! (`racyVar1…`, `v1…`, `type1…`, `func1…`). Skeletons denoise
//! embedding-based retrieval: two races with the same concurrency
//! structure but different business logic map to nearly identical
//! skeletons (the paper's key retrieval insight, evaluated in Fig. 3).
//!
//! # Example
//!
//! ```
//! use skeleton::{skeletonize, SkeletonOptions};
//!
//! let src = "package p\n\nfunc f() {\n\tshared := 0\n\tgo func() {\n\t\tshared = 1\n\t}()\n\tshared = 2\n}\n";
//! let sk = skeletonize(src, &[6, 8], &SkeletonOptions::default())?;
//! assert!(sk.text.contains("racyVar1"));
//! assert!(sk.text.contains("go func()"));
//! # Ok::<(), golite::Diag>(())
//! ```

#![warn(missing_docs)]

mod relevance;
mod rename;
mod slice;

pub use relevance::{is_concurrency_call, vars_on_lines};
pub use rename::Renamer;
pub use slice::slice_function;

use golite::ast::{Decl, File};
use golite::diag::{Diag, Result};
use golite::span::LineMap;

/// Options controlling skeletonization.
#[derive(Debug, Clone, Default)]
pub struct SkeletonOptions {
    /// Additional variable names to treat as racy (beyond those found on
    /// the racy lines).
    pub extra_racy_vars: Vec<String>,
    /// Keep every statement (skip the slicing step, rename only). Used by
    /// ablations that embed raw structure.
    pub no_slicing: bool,
}

/// A produced skeleton.
#[derive(Debug, Clone)]
pub struct Skeleton {
    /// The rendered skeleton source.
    pub text: String,
    /// Original names of the racy variables, in `racyVarN` order.
    pub racy_vars: Vec<String>,
    /// Names of the functions that were skeletonized.
    pub functions: Vec<String>,
}

/// Skeletonizes the functions of `src` that cover `racy_lines`.
///
/// Variables named on the racy lines become the variables of interest;
/// statements without concurrency constructs or interest variables are
/// elided; identifiers are consistently renamed.
///
/// # Errors
///
/// Returns a [`Diag`] when the source does not parse.
pub fn skeletonize(src: &str, racy_lines: &[u32], opts: &SkeletonOptions) -> Result<Skeleton> {
    let file = golite::parse_file(src)?;
    skeletonize_file(&file, src, racy_lines, opts)
}

/// Skeletonizes an already-parsed file.
///
/// # Errors
///
/// Returns a [`Diag`] when the file contains no functions.
pub fn skeletonize_file(
    file: &File,
    src: &str,
    racy_lines: &[u32],
    opts: &SkeletonOptions,
) -> Result<Skeleton> {
    let lm = LineMap::new(src);
    let mut racy_vars = vars_on_lines(file, &lm, racy_lines);
    for v in &opts.extra_racy_vars {
        if !racy_vars.contains(v) {
            racy_vars.push(v.clone());
        }
    }

    // Functions covering racy lines; fall back to functions mentioning a
    // racy variable, then to all functions.
    let mut selected: Vec<&golite::ast::FuncDecl> = file
        .funcs()
        .filter(|f| {
            let span = f.span;
            racy_lines.iter().any(|&l| {
                lm.line_span(l)
                    .map(|ls| ls.lo >= span.lo && ls.lo < span.hi)
                    .unwrap_or(false)
            })
        })
        .collect();
    if selected.is_empty() && !racy_vars.is_empty() {
        selected = file
            .funcs()
            .filter(|f| {
                f.body
                    .as_ref()
                    .map(|b| {
                        let mut found = false;
                        golite::visit::walk_exprs(b, &mut |e| {
                            if let golite::ast::Expr::Ident { name, .. } = e {
                                if racy_vars.contains(name) {
                                    found = true;
                                }
                            }
                        });
                        found
                    })
                    .unwrap_or(false)
            })
            .collect();
    }
    if selected.is_empty() {
        selected = file.funcs().collect();
    }
    if selected.is_empty() {
        return Err(Diag::new(
            "no functions to skeletonize",
            golite::Span::DUMMY,
        ));
    }

    let mut renamer = Renamer::new(&racy_vars);
    let mut pieces = Vec::new();
    let mut functions = Vec::new();

    // Type declarations with concurrency-relevant fields come first, like
    // Listing 8's `lockMap sync.Map` struct.
    for d in &file.decls {
        if let Decl::Type(t) = d {
            if relevance::type_is_concurrency_relevant(&t.ty) {
                let renamed = renamer.rename_typedecl(t);
                pieces.push(golite::printer::print_type_decl(&renamed));
            }
        }
    }

    for f in &selected {
        functions.push(f.name.clone());
        let sliced = slice_function(f, &racy_vars, opts.no_slicing);
        let renamed = renamer.rename_func(&sliced);
        pieces.push(golite::print_func(&renamed));
    }

    Ok(Skeleton {
        text: pieces.join("\n\n"),
        racy_vars: renamer.racy_in_order(),
        functions,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Listing 3 → Listing 4 of the paper: the golden skeleton test.
    #[test]
    fn listing3_skeleton_matches_paper_shape() {
        let src = r#"
package store

func (s *storeObject) ProcessStoreData(ctx *Context, req *Request) error {
	err := s.Validate(req)
	if err != nil {
		return err
	}
	var bazaarStores BazaarStores
	var uuidDefectRateMap UUIDMap
	group.Go(func() error {
		docs := s.GetNecessaryDocs()
		if flipr.GetBool(xpAdditionalDocs) {
			otherDocs := s.GetAdditionalDocs()
			docs = append(docs, otherDocs)
		}
		bazaarStores, err = s.LoadStores(ctx, req, docs)
		return err
	})
	group.Go(func() error {
		uuidDefectRateMap, err = s.LoadOAData(ctx, s.DocstoreClient, req)
		return err
	})
	err = group.Wait()
	return err
}
"#;
        // Race on `err` at the two closure assignment lines.
        let sk = skeletonize(src, &[17, 21], &SkeletonOptions::default()).unwrap();
        // err became racyVar1 everywhere (only the `error` type keeps the
        // substring).
        assert!(sk.text.contains("racyVar1"), "{}", sk.text);
        assert!(!sk.text.contains("err "), "{}", sk.text);
        assert!(!sk.text.contains("err,"), "{}", sk.text);
        assert!(!sk.text.contains("err ="), "{}", sk.text);
        // Concurrency constructs retained.
        assert_eq!(sk.text.matches(".Go(func()").count(), 2, "{}", sk.text);
        assert!(sk.text.contains(".Wait()"), "{}", sk.text);
        // Business logic elided: the flipr block disappears.
        assert!(!sk.text.contains("GetBool"), "{}", sk.text);
        assert!(!sk.text.contains("append"), "{}", sk.text);
        // Business identifiers renamed away.
        assert!(!sk.text.contains("bazaarStores"), "{}", sk.text);
        assert!(!sk.text.contains("LoadStores"), "{}", sk.text);
        assert_eq!(sk.racy_vars, vec!["err".to_owned()]);
    }

    #[test]
    fn same_structure_different_business_logic_same_skeleton() {
        let a = r#"
package p

func ProcessOrders() {
	total := 0
	go func() {
		total = computeOrderTotal()
	}()
	total = fallbackOrderTotal()
	use(total)
}
"#;
        let b = r#"
package p

func RefreshInventory() {
	stockLevel := 0
	go func() {
		stockLevel = fetchWarehouseCount()
	}()
	stockLevel = cachedWarehouseCount()
	use(stockLevel)
}
"#;
        let sa = skeletonize(a, &[7, 9], &SkeletonOptions::default()).unwrap();
        let sb = skeletonize(b, &[7, 9], &SkeletonOptions::default()).unwrap();
        assert_eq!(
            sa.text, sb.text,
            "\n--- a:\n{}\n--- b:\n{}",
            sa.text, sb.text
        );
    }

    #[test]
    fn keeps_control_structures_that_touch_racy_vars() {
        let src = r#"
package p

func f() {
	shared := 0
	noise := 1
	if noise > 0 {
		noise = noise + 1
	}
	go func() {
		if shared > 0 {
			shared = 2
		}
	}()
	shared = 3
}
"#;
        let sk = skeletonize(src, &[10, 15], &SkeletonOptions::default()).unwrap();
        // The noise-only if block disappears; the shared one stays.
        assert_eq!(sk.text.matches("if").count(), 1, "{}", sk.text);
        assert!(sk.text.contains("racyVar1 = 3"), "{}", sk.text);
    }

    #[test]
    fn retains_sync_calls_and_channels() {
        let src = r#"
package p

import "sync"

func f(ch chan int) {
	var mu sync.Mutex
	x := 0
	businessPrep()
	mu.Lock()
	x = x + 1
	mu.Unlock()
	ch <- x
	<-ch
}

func businessPrep() {}
"#;
        let sk = skeletonize(src, &[11], &SkeletonOptions::default()).unwrap();
        assert!(sk.text.contains(".Lock()"), "{}", sk.text);
        assert!(sk.text.contains(".Unlock()"), "{}", sk.text);
        assert!(sk.text.contains("<-"), "{}", sk.text);
        assert!(!sk.text.contains("businessPrep"), "{}", sk.text);
    }

    #[test]
    fn struct_types_with_sync_fields_are_included() {
        let src = r#"
package p

type Scanner struct {
	lockMap sync.Map
	label   string
}

func (t *Scanner) runShards() {
	t.lockMap.Range(func(key, value interface{}) bool {
		t.lockMap.Delete(key)
		return true
	})
}
"#;
        let sk = skeletonize(src, &[11], &SkeletonOptions::default()).unwrap();
        assert!(sk.text.contains("sync.Map"), "{}", sk.text);
        assert!(sk.text.contains(".Range(func"), "{}", sk.text);
        assert!(sk.text.contains(".Delete("), "{}", sk.text);
        assert!(!sk.text.contains("lockMap"), "{}", sk.text);
    }

    #[test]
    fn no_slicing_option_keeps_everything() {
        let src = r#"
package p

func f() {
	shared := 0
	noiseOnly := 1
	use(noiseOnly)
	go func() {
		shared = 1
	}()
	use(shared)
}
"#;
        let full = skeletonize(
            src,
            &[9],
            &SkeletonOptions {
                no_slicing: true,
                ..SkeletonOptions::default()
            },
        )
        .unwrap();
        let sliced = skeletonize(src, &[9], &SkeletonOptions::default()).unwrap();
        assert!(full.text.len() > sliced.text.len());
        assert!(full.text.contains("v1"), "{}", full.text);
    }

    #[test]
    fn skeleton_is_deterministic() {
        let src =
            "package p\n\nfunc f() {\n\tx := 0\n\tgo func() {\n\t\tx = 1\n\t}()\n\tx = 2\n}\n";
        let a = skeletonize(src, &[6, 8], &SkeletonOptions::default()).unwrap();
        let b = skeletonize(src, &[6, 8], &SkeletonOptions::default()).unwrap();
        assert_eq!(a.text, b.text);
    }

    #[test]
    fn string_literals_are_blanked() {
        let src = r#"
package p

func f() {
	msg := "super secret business text"
	go func() {
		msg = "other text"
	}()
	use(msg)
}
"#;
        let sk = skeletonize(src, &[7, 9], &SkeletonOptions::default()).unwrap();
        assert!(!sk.text.contains("secret"), "{}", sk.text);
    }
}
