//! Relevance analysis: which statements carry concurrency structure or
//! touch the variables of interest.

use golite::ast::*;
use golite::span::LineMap;
use golite::visit;

/// Method names treated as concurrency constructs and preserved verbatim
/// in skeletons (§4.3 lists `go`, `WaitGroup`, `sync`, `Lock`, `Unlock`,
/// `atomic`, channels; we include the full `sync`/`errgroup`/`testing`
/// vocabulary used in the corpus).
pub const CONCURRENCY_METHODS: &[&str] = &[
    "Lock",
    "Unlock",
    "RLock",
    "RUnlock",
    "TryLock",
    "Add",
    "Done",
    "Wait",
    "Load",
    "Store",
    "Delete",
    "Range",
    "LoadOrStore",
    "CompareAndSwap",
    "Go",
    "Run",
    "Parallel",
    "AddInt32",
    "LoadInt32",
    "StoreInt32",
    "CompareAndSwapInt32",
    "AddInt64",
    "LoadInt64",
    "StoreInt64",
    "CompareAndSwapInt64",
];

/// Package roots whose member calls count as concurrency constructs.
pub const CONCURRENCY_PACKAGES: &[&str] = &["sync", "atomic"];

/// Returns `true` if the called name is a concurrency construct.
pub fn is_concurrency_call(name: &str) -> bool {
    CONCURRENCY_METHODS.contains(&name)
}

/// Returns `true` if a type mentions a sync primitive or channel — type
/// declarations like Listing 8's `lockMap sync.Map` are kept in skeletons.
pub fn type_is_concurrency_relevant(ty: &Type) -> bool {
    match ty {
        Type::Named { path, .. } => {
            let joined = path.join(".");
            matches!(
                joined.as_str(),
                "sync.Mutex" | "sync.RWMutex" | "sync.WaitGroup" | "sync.Map"
            )
        }
        Type::Pointer(t) | Type::Slice(t) => type_is_concurrency_relevant(t),
        Type::Array { elem, .. } => type_is_concurrency_relevant(elem),
        Type::Map { key, value } => {
            type_is_concurrency_relevant(key) || type_is_concurrency_relevant(value)
        }
        Type::Chan { .. } => true,
        Type::Struct(fields) => fields.iter().any(|f| type_is_concurrency_relevant(&f.ty)),
        Type::Func(_) | Type::Interface(_) => false,
    }
}

/// Collects the "shared variables of interest" from the racy lines
/// (§4.3: "uses the variable names found on the lines involved in race").
///
/// The racy variable is accessed at *both* access sites, so we prefer the
/// intersection of the per-line candidates: first the intersection of
/// write targets, then the intersection of all mentioned variables, then
/// the union of targets, then everything (minus call names).
pub fn vars_on_lines(file: &File, lm: &LineMap, lines: &[u32]) -> Vec<String> {
    let mut per_line_targets: Vec<Vec<String>> = Vec::new();
    let mut per_line_all: Vec<Vec<String>> = Vec::new();
    for &line in lines {
        let Some(span) = lm.line_span(line) else {
            continue;
        };
        let mut targets = Vec::new();
        let mut all = Vec::new();
        for f in file.funcs() {
            let Some(body) = &f.body else { continue };
            visit::walk_stmts(body, &mut |s| {
                let ss = s.span();
                if ss.lo < span.lo || ss.lo >= span.hi {
                    return;
                }
                match s {
                    Stmt::ShortVar { names, .. } => {
                        for n in names {
                            push_unique(&mut targets, n);
                        }
                    }
                    Stmt::Assign { lhs, .. } => {
                        for e in lhs {
                            if let Some(n) = e.root_ident() {
                                push_unique(&mut targets, n);
                            }
                        }
                    }
                    Stmt::IncDec { expr, .. } => {
                        if let Some(n) = expr.root_ident() {
                            push_unique(&mut targets, n);
                        }
                    }
                    _ => {}
                }
            });
            visit::walk_exprs(body, &mut |e| {
                let es = e.span();
                if es.lo < span.lo || es.lo >= span.hi {
                    return;
                }
                match e {
                    Expr::Ident { name, .. } => push_unique(&mut all, name),
                    Expr::Call { fun, .. } => {
                        // The callee chain root is API plumbing, not data.
                        if let Some(root) = fun.root_ident() {
                            all.retain(|x| x != root);
                        }
                    }
                    _ => {}
                }
            });
        }
        per_line_targets.push(targets);
        per_line_all.push(all);
    }

    let inter = |sets: &[Vec<String>]| -> Vec<String> {
        let Some(first) = sets.first() else {
            return Vec::new();
        };
        first
            .iter()
            .filter(|n| sets.iter().all(|s| s.contains(n)))
            .cloned()
            .collect()
    };

    let t_inter = inter(&per_line_targets);
    if !t_inter.is_empty() {
        return t_inter;
    }
    // Mix: target on one line must be read on the others.
    let mixed: Vec<String> = per_line_targets
        .iter()
        .flatten()
        .filter(|n| {
            per_line_all
                .iter()
                .zip(&per_line_targets)
                .all(|(a, t)| a.contains(n) || t.contains(n))
        })
        .cloned()
        .collect();
    if !mixed.is_empty() {
        return dedup(mixed);
    }
    let a_inter = inter(&per_line_all);
    if !a_inter.is_empty() {
        return a_inter;
    }
    let t_union: Vec<String> = dedup(per_line_targets.into_iter().flatten().collect());
    if !t_union.is_empty() {
        return t_union;
    }
    dedup(per_line_all.into_iter().flatten().collect())
}

fn push_unique(v: &mut Vec<String>, n: &str) {
    if !is_noise_name(n) && !v.iter().any(|x| x == n) {
        v.push(n.to_owned());
    }
}

fn dedup(v: Vec<String>) -> Vec<String> {
    let mut out = Vec::new();
    for n in v {
        if !out.contains(&n) {
            out.push(n);
        }
    }
    out
}

fn is_noise_name(n: &str) -> bool {
    matches!(n, "_" | "true" | "false" | "nil")
}

/// Returns `true` when the statement (transitively) contains a
/// concurrency construct.
pub fn stmt_has_concurrency(s: &Stmt) -> bool {
    let mut found = false;
    stmt_walk(s, &mut |st| {
        if matches!(
            st,
            Stmt::Go { .. } | Stmt::Send { .. } | Stmt::Select(_) | Stmt::Defer { .. }
        ) {
            found = true;
        }
        stmt_exprs(st, &mut |e| {
            if expr_has_concurrency(e) {
                found = true;
            }
        });
    });
    found
}

/// Returns `true` when the expression is a concurrency construct
/// (channel receive, sync-method call, make(chan), goroutine launch API).
pub fn expr_has_concurrency(e: &Expr) -> bool {
    let mut found = false;
    visit::walk_expr(e, &mut |x| match x {
        Expr::Unary { op: UnOp::Recv, .. } => found = true,
        Expr::Make {
            ty: Type::Chan { .. },
            ..
        } => found = true,
        Expr::Call { fun, .. } => match fun.as_ref() {
            Expr::Selector { name, expr, .. } => {
                if is_concurrency_call(name) {
                    found = true;
                }
                if let Some(root) = expr.as_ident() {
                    if CONCURRENCY_PACKAGES.contains(&root) {
                        found = true;
                    }
                }
            }
            Expr::Ident { name, .. } if name == "close" => {
                found = true;
            }
            _ => {}
        },
        _ => {}
    });
    found
}

/// Returns `true` when the statement references any variable of interest.
pub fn stmt_touches_vars(s: &Stmt, vars: &[String]) -> bool {
    if vars.is_empty() {
        return false;
    }
    let mut found = false;
    stmt_exprs(s, &mut |e| {
        visit::walk_expr(e, &mut |x| {
            if let Expr::Ident { name, .. } = x {
                if vars.iter().any(|v| v == name) {
                    found = true;
                }
            }
        });
    });
    if found {
        return true;
    }
    match s {
        Stmt::ShortVar { names, .. } => names.iter().any(|n| vars.contains(n)),
        Stmt::Decl(v) => v.names.iter().any(|n| vars.contains(n)),
        _ => false,
    }
}

/// Walks a statement's direct (non-nested-closure) expressions.
pub(crate) fn stmt_exprs(s: &Stmt, f: &mut impl FnMut(&Expr)) {
    match s {
        Stmt::Decl(v) => {
            for e in &v.values {
                f(e);
            }
        }
        Stmt::ShortVar { values, .. } | Stmt::Return { values, .. } => {
            for e in values {
                f(e);
            }
        }
        Stmt::Assign { lhs, rhs, .. } => {
            for e in lhs.iter().chain(rhs) {
                f(e);
            }
        }
        Stmt::IncDec { expr, .. } => f(expr),
        Stmt::Expr(e) => f(e),
        Stmt::Send { chan, value, .. } => {
            f(chan);
            f(value);
        }
        Stmt::Go { call, .. } | Stmt::Defer { call, .. } => f(call),
        Stmt::If(st) => {
            f(&st.cond);
        }
        Stmt::For(st) => {
            if let Some(c) = &st.cond {
                f(c);
            }
        }
        Stmt::Range(st) => f(&st.expr),
        Stmt::Switch(st) => {
            if let Some(t) = &st.tag {
                f(t);
            }
        }
        _ => {}
    }
}

fn stmt_walk(s: &Stmt, f: &mut impl FnMut(&Stmt)) {
    f(s);
    match s {
        Stmt::If(st) => {
            if let Some(init) = &st.init {
                stmt_walk(init, f);
            }
            for x in &st.then.stmts {
                stmt_walk(x, f);
            }
            if let Some(el) = &st.else_ {
                stmt_walk(el, f);
            }
        }
        Stmt::For(st) => {
            for x in &st.body.stmts {
                stmt_walk(x, f);
            }
        }
        Stmt::Range(st) => {
            for x in &st.body.stmts {
                stmt_walk(x, f);
            }
        }
        Stmt::Switch(st) => {
            for c in &st.cases {
                for x in &c.body {
                    stmt_walk(x, f);
                }
            }
        }
        Stmt::Select(st) => {
            for c in &st.cases {
                for x in &c.body {
                    stmt_walk(x, f);
                }
            }
        }
        Stmt::Block(b) => {
            for x in &b.stmts {
                stmt_walk(x, f);
            }
        }
        Stmt::Labeled { stmt, .. } => stmt_walk(stmt, f),
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use golite::parse_stmts;

    #[test]
    fn detects_go_and_channel_statements() {
        let stmts = parse_stmts("go work()\nch <- 1\nx := <-ch\ny := 1").unwrap();
        assert!(stmt_has_concurrency(&stmts[0]));
        assert!(stmt_has_concurrency(&stmts[1]));
        assert!(stmt_has_concurrency(&stmts[2]));
        assert!(!stmt_has_concurrency(&stmts[3]));
    }

    #[test]
    fn detects_sync_method_calls() {
        let stmts = parse_stmts("mu.Lock()\nwg.Wait()\nfoo.Bar()").unwrap();
        assert!(stmt_has_concurrency(&stmts[0]));
        assert!(stmt_has_concurrency(&stmts[1]));
        assert!(!stmt_has_concurrency(&stmts[2]));
    }

    #[test]
    fn touches_vars_checks_reads_and_writes() {
        let stmts = parse_stmts("x = y + 1\nz := 2\nuse(q)").unwrap();
        let vars = vec!["y".to_owned()];
        assert!(stmt_touches_vars(&stmts[0], &vars));
        assert!(!stmt_touches_vars(&stmts[1], &vars));
        let zvars = vec!["z".to_owned()];
        assert!(stmt_touches_vars(&stmts[1], &zvars));
        assert!(!stmt_touches_vars(&stmts[2], &zvars));
    }

    #[test]
    fn concurrency_types() {
        use golite::ast::Type;
        assert!(type_is_concurrency_relevant(&Type::named("sync.Mutex")));
        assert!(type_is_concurrency_relevant(&Type::Chan {
            dir: golite::ast::ChanDir::Both,
            elem: Box::new(Type::named("int")),
        }));
        assert!(!type_is_concurrency_relevant(&Type::named("string")));
    }
}
