//! Consistent renaming: racy variables become `racyVarN`, other
//! identifiers `vN`, called functions `funcN`, and types `typeN`, while
//! concurrency API names are preserved (§4.3).

use crate::relevance::is_concurrency_call;
use golite::ast::*;
use std::collections::HashMap;

/// Names never renamed: keywords-adjacent builtins and the concurrency
/// vocabulary.
const PRESERVED: &[&str] = &[
    "nil",
    "true",
    "false",
    "_",
    "make",
    "new",
    "len",
    "cap",
    "append",
    "delete",
    "close",
    "panic",
    "copy",
    "int",
    "int32",
    "int64",
    "string",
    "bool",
    "float64",
    "error",
    "byte",
    "any",
    "sync",
    "atomic",
    "context",
    "testing",
    "chan",
    "struct",
    "interface",
];

/// The renamer: shared across the functions of one skeleton so that the
/// same original name always maps to the same fresh name.
#[derive(Debug, Default)]
pub struct Renamer {
    vars: HashMap<String, String>,
    funcs: HashMap<String, String>,
    types: HashMap<String, String>,
    racy: Vec<String>,
    racy_set: Vec<String>,
    var_count: u32,
    func_count: u32,
    type_count: u32,
}

impl Renamer {
    /// Creates a renamer with the given racy-variable set.
    pub fn new(racy_vars: &[String]) -> Self {
        Renamer {
            racy_set: racy_vars.to_vec(),
            ..Renamer::default()
        }
    }

    /// Racy variables in the order their `racyVarN` names were assigned.
    pub fn racy_in_order(&self) -> Vec<String> {
        self.racy.clone()
    }

    fn var(&mut self, name: &str) -> String {
        if PRESERVED.contains(&name) {
            return name.to_owned();
        }
        if let Some(n) = self.vars.get(name) {
            return n.clone();
        }
        let fresh = if self.racy_set.iter().any(|r| r == name) {
            self.racy.push(name.to_owned());
            format!("racyVar{}", self.racy.len())
        } else {
            self.var_count += 1;
            format!("v{}", self.var_count)
        };
        self.vars.insert(name.to_owned(), fresh.clone());
        fresh
    }

    fn func(&mut self, name: &str) -> String {
        if PRESERVED.contains(&name) || is_concurrency_call(name) {
            return name.to_owned();
        }
        if let Some(n) = self.funcs.get(name) {
            return n.clone();
        }
        self.func_count += 1;
        let fresh = format!("func{}", self.func_count);
        self.funcs.insert(name.to_owned(), fresh.clone());
        fresh
    }

    fn type_name(&mut self, name: &str) -> String {
        if PRESERVED.contains(&name) {
            return name.to_owned();
        }
        if let Some(n) = self.types.get(name) {
            return n.clone();
        }
        self.type_count += 1;
        let fresh = format!("type{}", self.type_count);
        self.types.insert(name.to_owned(), fresh.clone());
        fresh
    }

    /// Renames a whole function declaration.
    pub fn rename_func(&mut self, f: &FuncDecl) -> FuncDecl {
        FuncDecl {
            receiver: f.receiver.as_ref().map(|r| Receiver {
                name: self.var(&r.name),
                ty: self.ty(&r.ty),
                span: r.span,
            }),
            name: self.func(&f.name),
            type_params: f.type_params.clone(),
            sig: self.sig(&f.sig),
            body: f.body.as_ref().map(|b| self.block(b)),
            span: f.span,
        }
    }

    /// Renames a type declaration.
    pub fn rename_typedecl(&mut self, t: &TypeDecl) -> TypeDecl {
        TypeDecl {
            name: self.type_name(&t.name),
            type_params: t.type_params.clone(),
            ty: self.ty(&t.ty),
            span: t.span,
        }
    }

    fn sig(&mut self, s: &FuncSig) -> FuncSig {
        FuncSig {
            params: s.params.iter().map(|p| self.param(p)).collect(),
            results: s.results.iter().map(|p| self.param(p)).collect(),
        }
    }

    fn param(&mut self, p: &Param) -> Param {
        Param {
            names: p.names.iter().map(|n| self.var(n)).collect(),
            ty: self.ty(&p.ty),
            variadic: p.variadic,
            span: p.span,
        }
    }

    fn ty(&mut self, t: &Type) -> Type {
        match t {
            Type::Named { path, args } => {
                let joined = path.join(".");
                // sync.* / atomic.* / primitive types preserved.
                if joined.starts_with("sync.")
                    || joined.starts_with("atomic.")
                    || joined.starts_with("testing.")
                    || joined.starts_with("context.")
                    || PRESERVED.contains(&joined.as_str())
                {
                    return t.clone();
                }
                Type::Named {
                    path: vec![self.type_name(&joined)],
                    args: args.iter().map(|a| self.ty(a)).collect(),
                }
            }
            Type::Pointer(i) => Type::Pointer(Box::new(self.ty(i))),
            Type::Slice(i) => Type::Slice(Box::new(self.ty(i))),
            Type::Array { len, elem } => Type::Array {
                len: Box::new(self.expr(len)),
                elem: Box::new(self.ty(elem)),
            },
            Type::Map { key, value } => Type::Map {
                key: Box::new(self.ty(key)),
                value: Box::new(self.ty(value)),
            },
            Type::Chan { dir, elem } => Type::Chan {
                dir: *dir,
                elem: Box::new(self.ty(elem)),
            },
            Type::Func(sig) => Type::Func(Box::new(self.sig(sig))),
            Type::Struct(fields) => Type::Struct(
                fields
                    .iter()
                    .map(|f| Field {
                        names: f.names.iter().map(|n| self.var(n)).collect(),
                        ty: self.ty(&f.ty),
                        span: f.span,
                    })
                    .collect(),
            ),
            Type::Interface(_) => t.clone(),
        }
    }

    fn block(&mut self, b: &Block) -> Block {
        Block {
            stmts: b.stmts.iter().map(|s| self.stmt(s)).collect(),
            span: b.span,
        }
    }

    fn stmt(&mut self, s: &Stmt) -> Stmt {
        match s {
            Stmt::Decl(v) => Stmt::Decl(VarDecl {
                names: v.names.iter().map(|n| self.var(n)).collect(),
                ty: v.ty.as_ref().map(|t| self.ty(t)),
                values: v.values.iter().map(|e| self.expr(e)).collect(),
                span: v.span,
            }),
            Stmt::ShortVar {
                names,
                values,
                span,
            } => Stmt::ShortVar {
                names: names.iter().map(|n| self.var(n)).collect(),
                values: values.iter().map(|e| self.expr(e)).collect(),
                span: *span,
            },
            Stmt::Assign { lhs, op, rhs, span } => Stmt::Assign {
                lhs: lhs.iter().map(|e| self.expr(e)).collect(),
                op: *op,
                rhs: rhs.iter().map(|e| self.expr(e)).collect(),
                span: *span,
            },
            Stmt::IncDec { expr, inc, span } => Stmt::IncDec {
                expr: self.expr(expr),
                inc: *inc,
                span: *span,
            },
            Stmt::Expr(e) => Stmt::Expr(self.expr(e)),
            Stmt::Send { chan, value, span } => Stmt::Send {
                chan: self.expr(chan),
                value: self.expr(value),
                span: *span,
            },
            Stmt::Go { call, span } => Stmt::Go {
                call: self.expr(call),
                span: *span,
            },
            Stmt::Defer { call, span } => Stmt::Defer {
                call: self.expr(call),
                span: *span,
            },
            Stmt::Return { values, span } => Stmt::Return {
                values: values.iter().map(|e| self.expr(e)).collect(),
                span: *span,
            },
            Stmt::If(st) => Stmt::If(IfStmt {
                init: st.init.as_ref().map(|i| Box::new(self.stmt(i))),
                cond: self.expr(&st.cond),
                then: self.block(&st.then),
                else_: st.else_.as_ref().map(|e| Box::new(self.stmt(e))),
                span: st.span,
            }),
            Stmt::For(st) => Stmt::For(ForStmt {
                init: st.init.as_ref().map(|i| Box::new(self.stmt(i))),
                cond: st.cond.as_ref().map(|c| self.expr(c)),
                post: st.post.as_ref().map(|p| Box::new(self.stmt(p))),
                body: self.block(&st.body),
                span: st.span,
            }),
            Stmt::Range(st) => Stmt::Range(RangeStmt {
                key: st.key.as_ref().map(|k| self.expr(k)),
                value: st.value.as_ref().map(|v| self.expr(v)),
                define: st.define,
                expr: self.expr(&st.expr),
                body: self.block(&st.body),
                span: st.span,
            }),
            Stmt::Switch(st) => Stmt::Switch(SwitchStmt {
                init: st.init.as_ref().map(|i| Box::new(self.stmt(i))),
                tag: st.tag.as_ref().map(|t| self.expr(t)),
                cases: st
                    .cases
                    .iter()
                    .map(|c| SwitchCase {
                        exprs: c.exprs.iter().map(|e| self.expr(e)).collect(),
                        body: c.body.iter().map(|s| self.stmt(s)).collect(),
                        span: c.span,
                    })
                    .collect(),
                span: st.span,
            }),
            Stmt::Select(st) => Stmt::Select(SelectStmt {
                cases: st
                    .cases
                    .iter()
                    .map(|c| SelectCase {
                        comm: match &c.comm {
                            CommClause::Send { chan, value } => CommClause::Send {
                                chan: self.expr(chan),
                                value: self.expr(value),
                            },
                            CommClause::Recv { lhs, define, chan } => CommClause::Recv {
                                lhs: lhs.iter().map(|e| self.expr(e)).collect(),
                                define: *define,
                                chan: self.expr(chan),
                            },
                            CommClause::Default => CommClause::Default,
                        },
                        body: c.body.iter().map(|s| self.stmt(s)).collect(),
                        span: c.span,
                    })
                    .collect(),
                span: st.span,
            }),
            Stmt::Block(b) => Stmt::Block(self.block(b)),
            Stmt::Labeled { label, stmt, span } => Stmt::Labeled {
                label: label.clone(),
                stmt: Box::new(self.stmt(stmt)),
                span: *span,
            },
            other => other.clone(),
        }
    }

    fn expr(&mut self, e: &Expr) -> Expr {
        match e {
            Expr::Ident { name, span } => Expr::Ident {
                name: self.var(name),
                span: *span,
            },
            Expr::StrLit { span, .. } => Expr::StrLit {
                // Literal payloads are business noise.
                value: String::new(),
                span: *span,
            },
            Expr::CompositeLit { ty, elems, span } => Expr::CompositeLit {
                ty: ty.as_ref().map(|t| self.ty(t)),
                elems: elems
                    .iter()
                    .map(|el| CompositeElem {
                        key: el.key.as_ref().map(|k| match k {
                            // Field keys rename as variables.
                            Expr::Ident { name, span } => Expr::Ident {
                                name: self.var(name),
                                span: *span,
                            },
                            other => self.expr(other),
                        }),
                        value: self.expr(&el.value),
                    })
                    .collect(),
                span: *span,
            },
            Expr::FuncLit { sig, body, span } => Expr::FuncLit {
                sig: self.sig(sig),
                body: self.block(body),
                span: *span,
            },
            Expr::Selector { expr, name, span } => {
                let renamed = if is_concurrency_call(name) {
                    name.clone()
                } else {
                    // Field/method selection: treat as function-ish name
                    // space so `s.Validate` → `v1.func2`.
                    self.func(name)
                };
                Expr::Selector {
                    expr: Box::new(self.expr(expr)),
                    name: renamed,
                    span: *span,
                }
            }
            Expr::Index { expr, index, span } => Expr::Index {
                expr: Box::new(self.expr(expr)),
                index: Box::new(self.expr(index)),
                span: *span,
            },
            Expr::SliceExpr { expr, lo, hi, span } => Expr::SliceExpr {
                expr: Box::new(self.expr(expr)),
                lo: lo.as_ref().map(|e| Box::new(self.expr(e))),
                hi: hi.as_ref().map(|e| Box::new(self.expr(e))),
                span: *span,
            },
            Expr::Call {
                fun,
                args,
                variadic,
                span,
            } => {
                let fun = match fun.as_ref() {
                    // Direct calls rename in the func namespace.
                    Expr::Ident { name, span } => Expr::Ident {
                        name: self.func(name),
                        span: *span,
                    },
                    other => self.expr(other),
                };
                Expr::Call {
                    fun: Box::new(fun),
                    args: args.iter().map(|a| self.expr(a)).collect(),
                    variadic: *variadic,
                    span: *span,
                }
            }
            Expr::Make { ty, args, span } => Expr::Make {
                ty: self.ty(ty),
                args: args.iter().map(|a| self.expr(a)).collect(),
                span: *span,
            },
            Expr::New { ty, span } => Expr::New {
                ty: self.ty(ty),
                span: *span,
            },
            Expr::Unary { op, expr, span } => Expr::Unary {
                op: *op,
                expr: Box::new(self.expr(expr)),
                span: *span,
            },
            Expr::Binary { op, lhs, rhs, span } => Expr::Binary {
                op: *op,
                lhs: Box::new(self.expr(lhs)),
                rhs: Box::new(self.expr(rhs)),
                span: *span,
            },
            Expr::Paren { expr, span } => Expr::Paren {
                expr: Box::new(self.expr(expr)),
                span: *span,
            },
            Expr::TypeAssert { expr, ty, span } => Expr::TypeAssert {
                expr: Box::new(self.expr(expr)),
                ty: self.ty(ty),
                span: *span,
            },
            other => other.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use golite::parse_file;

    #[test]
    fn racy_vars_get_racy_names() {
        let f = parse_file("package p\nfunc f() {\n\terr := g()\n\tuse(err)\n}\n")
            .unwrap()
            .find_func("f")
            .unwrap()
            .clone();
        let mut r = Renamer::new(&["err".to_owned()]);
        let out = r.rename_func(&f);
        let printed = golite::print_func(&out);
        assert!(printed.contains("racyVar1 := func2()"), "{printed}");
        assert!(printed.contains("func3(racyVar1)"), "{printed}");
        assert_eq!(r.racy_in_order(), vec!["err".to_owned()]);
    }

    #[test]
    fn concurrency_names_survive() {
        let f = parse_file(
            "package p\nfunc f() {\n\tvar wg sync.WaitGroup\n\twg.Add(1)\n\twg.Done()\n\twg.Wait()\n\tmu.Lock()\n}\n",
        )
        .unwrap()
        .find_func("f")
        .unwrap()
        .clone();
        let mut r = Renamer::new(&[]);
        let printed = golite::print_func(&r.rename_func(&f));
        for kept in [".Add(1)", ".Done()", ".Wait()", ".Lock()", "sync.WaitGroup"] {
            assert!(printed.contains(kept), "missing {kept} in {printed}");
        }
        assert!(!printed.contains("wg"), "{printed}");
    }

    #[test]
    fn renaming_is_consistent_across_functions() {
        let file = parse_file(
            "package p\nfunc a() {\n\tshared = 1\n}\nfunc b() {\n\tuse(shared)\n}\nvar shared int\nfunc use(x int) {}\n",
        )
        .unwrap();
        let mut r = Renamer::new(&["shared".to_owned()]);
        let fa = golite::print_func(&r.rename_func(file.find_func("a").unwrap()));
        let fb = golite::print_func(&r.rename_func(file.find_func("b").unwrap()));
        assert!(fa.contains("racyVar1 = 1"));
        assert!(fb.contains("(racyVar1)"));
    }
}
