//! Golden test for the corpus `LintShapes` family: pins `statcheck`'s
//! exact rendered output on each canonical synchronization-misuse shape
//! (and the clean control). Any analyzer change that shifts a rule,
//! message, or span on these fixed sources shows up here first.

use corpus::lint_shapes;

/// Fully rendered diagnostics per shape id, pinned verbatim.
fn golden(id: &str) -> &'static [&'static str] {
    match id {
        "clean" => &[],
        "double-lock" => {
            &["double_lock.go:13:2: error[double-lock]: second Lock of `mu` deadlocks: the write lock is already held"]
        }
        "leaked-lock-early-return" => {
            &["leaked_lock.go:14:3: warning[missing-unlock]: lock `mu` is still held at this return"]
        }
        "lock-order-inversion" => {
            &["lock_order.go:12:2: warning[lock-order-cycle]: locks `muA` and `muB` are acquired in inconsistent order (potential deadlock)"]
        }
        "mutex-by-value" => {
            &["mutex_by_value.go:13:11: warning[copylocks]: parameter `c` passes `Counter` by value, copying its mutex"]
        }
        other => panic!("no golden entry for shape `{other}`"),
    }
}

#[test]
fn lint_shapes_match_golden_output() {
    for shape in lint_shapes() {
        let report = statcheck::check_file(shape.file, shape.source)
            .unwrap_or_else(|d| panic!("shape `{}` failed to parse: {d}", shape.id));
        let rendered: Vec<String> = report
            .diagnostics
            .iter()
            .map(|d| d.render(&report.file, shape.source))
            .collect();
        assert_eq!(
            rendered,
            golden(shape.id),
            "shape `{}` diverged from golden output",
            shape.id
        );
        let rules: Vec<&str> = report.diagnostics.iter().map(|d| d.rule.as_str()).collect();
        assert_eq!(
            rules, shape.expected_rules,
            "shape `{}` expected_rules out of sync with analyzer",
            shape.id
        );
    }
}

#[test]
fn shape_ids_are_unique_and_sources_compile() {
    let shapes = lint_shapes();
    let mut ids: Vec<&str> = shapes.iter().map(|s| s.id).collect();
    ids.sort_unstable();
    ids.dedup();
    assert_eq!(ids.len(), shapes.len(), "duplicate shape ids");
    for shape in &shapes {
        govm::compile_sources(
            &[(shape.file.to_string(), shape.source.to_string())],
            &govm::CompileOptions::default(),
        )
        .unwrap_or_else(|d| panic!("shape `{}` does not compile: {d}", shape.id));
    }
}

#[test]
fn clean_shape_is_diagnostic_free_and_error_shapes_split_by_tier() {
    let shapes = lint_shapes();
    let clean = shapes.iter().find(|s| s.id == "clean").unwrap();
    let report = statcheck::check_file(clean.file, clean.source).unwrap();
    assert!(
        report.diagnostics.is_empty(),
        "clean shape must produce no diagnostics"
    );
    // double-lock is the only error-tier shape; the rest are warn-only.
    for shape in &shapes {
        let report = statcheck::check_file(shape.file, shape.source).unwrap();
        let has_error = statcheck::has_errors(std::slice::from_ref(&report));
        assert_eq!(
            has_error,
            shape.id == "double-lock",
            "severity tier drifted for shape `{}`",
            shape.id
        );
    }
}
