//! Proptest: re-formatting a program through the golite printer→parser
//! round-trip must not change what `statcheck` reports.
//!
//! Diagnostics carry positions only in their spans — rule ids and
//! messages embed no line/column text — so a pure re-format (parse, then
//! pretty-print, then re-analyze) must preserve the multiset of
//! `(file, severity, rule, message)` tuples exactly. The corpus
//! generators provide the program distribution: racy eval cases, their
//! human fixes, and the fixed LintShapes family.

use corpus::{generate_eval_corpus, lint_shapes, CorpusConfig};
use proptest::prelude::*;
use statcheck::FileReport;

/// One program under test: named sources.
fn programs() -> Vec<Vec<(String, String)>> {
    let mut out = Vec::new();
    for case in generate_eval_corpus(&CorpusConfig {
        eval_cases: 24,
        db_pairs: 0,
        seed: 0x51AB,
    }) {
        out.push(case.files.clone());
        if let Some(fix) = &case.human_fix {
            let mut fixed = case.files.clone();
            for (name, src) in fix {
                if let Some(slot) = fixed.iter_mut().find(|(n, _)| n == name) {
                    slot.1 = src.clone();
                }
            }
            out.push(fixed);
        }
    }
    for shape in lint_shapes() {
        out.push(vec![(shape.file.to_string(), shape.source.to_string())]);
    }
    out
}

/// The re-format-stable fingerprint of a report set.
fn signature(reports: &[FileReport]) -> Vec<(String, String, String, String)> {
    let mut sig: Vec<_> = reports
        .iter()
        .flat_map(|r| {
            r.diagnostics.iter().map(|d| {
                (
                    r.file.clone(),
                    d.severity.to_string(),
                    d.rule.clone(),
                    d.message.clone(),
                )
            })
        })
        .collect();
    sig.sort();
    sig
}

/// Pretty-prints every file back from its parsed AST.
fn reformat(files: &[(String, String)]) -> Vec<(String, String)> {
    files
        .iter()
        .map(|(name, src)| {
            let ast = golite::parse_file(src)
                .unwrap_or_else(|d| panic!("corpus file {name} does not parse: {d}"));
            (name.clone(), golite::print_file(&ast))
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn reformatting_preserves_diagnostics(idx in 0usize..1000) {
        let programs = programs();
        let files = &programs[idx % programs.len()];

        let before = statcheck::check_sources(files)
            .unwrap_or_else(|(f, d)| panic!("{f} does not parse: {d}"));
        let reformatted = reformat(files);
        let after = statcheck::check_sources(&reformatted)
            .unwrap_or_else(|(f, d)| panic!("reformatted {f} does not parse: {d}"));

        prop_assert_eq!(signature(&before), signature(&after));
    }

    #[test]
    fn reformatting_is_idempotent_for_the_analyzer(idx in 0usize..1000) {
        // A second round-trip adds nothing: the printer is a fixpoint
        // for the analyzer's view of the program.
        let programs = programs();
        let files = &programs[idx % programs.len()];
        let once = reformat(files);
        let twice = reformat(&once);
        let a = statcheck::check_sources(&once)
            .unwrap_or_else(|(f, d)| panic!("{f} does not parse: {d}"));
        let b = statcheck::check_sources(&twice)
            .unwrap_or_else(|(f, d)| panic!("{f} does not parse: {d}"));
        prop_assert_eq!(signature(&a), signature(&b));
    }
}
