//! Lockset dataflow over one [`Context`]'s CFG.
//!
//! The abstract state per lock is the *set of possible hold counts*, a
//! pair `(write, read)` per path that reached this point. Tracking a
//! set of pairs (instead of one interval) keeps the must/may distinction
//! exact enough for the error tier: a rule fires as an error only when
//! **every** possible count satisfies its predicate, so a report on the
//! error tier means the misuse happens on all paths — the contract that
//! lets the patch gate reject without risking a sound candidate.
//!
//! Counts saturate at [`MAX_COUNT`]; a pair-set wider than `MAX_PAIRS`
//! widens to "unknown", which silences every rule for that lock.

use crate::cfg::{Context, ContextKind, LockMethod, Op};
use golite::{Diagnostic, Span};
use std::collections::{BTreeMap, BTreeSet};

/// Hold counts saturate here; 3 distinguishes 0/1/re-entry.
pub const MAX_COUNT: u8 = 3;
/// Pair-sets wider than this widen to unknown.
const MAX_PAIRS: usize = 4;

/// Possible `(write, read)` hold counts of one lock; `None` = unknown.
type PairSet = Option<Vec<(u8, u8)>>;

/// Dataflow fact at a program point.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Flow {
    /// Per-lock possible hold counts; a missing key means `{(0, 0)}`.
    locks: BTreeMap<String, PairSet>,
    /// Per-lock `(Unlock, RUnlock)` counts registered via `defer`
    /// (must-counts: merged with `min`).
    deferred: BTreeMap<String, (u8, u8)>,
    /// Whether a `go` statement may have executed before this point:
    /// accesses in the sequential prefix of a function cannot race.
    spawned: bool,
}

fn canon(pairs: &mut Vec<(u8, u8)>) {
    pairs.sort_unstable();
    pairs.dedup();
}

fn join_pairs(a: &PairSet, b: &PairSet) -> PairSet {
    match (a, b) {
        (Some(x), Some(y)) => {
            let mut u = x.clone();
            u.extend(y.iter().copied());
            canon(&mut u);
            if u.len() > MAX_PAIRS {
                None
            } else {
                Some(u)
            }
        }
        _ => None,
    }
}

impl Flow {
    fn pairs(&self, lock: &str) -> PairSet {
        self.locks
            .get(lock)
            .cloned()
            .unwrap_or_else(|| Some(vec![(0, 0)]))
    }

    fn normalize(&mut self) {
        self.locks
            .retain(|_, v| !matches!(v, Some(p) if p.as_slice() == [(0, 0)]));
        self.deferred.retain(|_, v| *v != (0, 0));
    }

    fn join_from(&mut self, other: &Flow) {
        let keys: BTreeSet<&String> = self.locks.keys().chain(other.locks.keys()).collect();
        let mut joined = BTreeMap::new();
        for k in keys {
            joined.insert(k.clone(), join_pairs(&self.pairs(k), &other.pairs(k)));
        }
        self.locks = joined;
        let keys: Vec<String> = self.deferred.keys().cloned().collect();
        for k in keys {
            let o = other.deferred.get(&k).copied().unwrap_or((0, 0));
            let e = self.deferred.get_mut(&k).expect("key from self");
            e.0 = e.0.min(o.0);
            e.1 = e.1.min(o.1);
        }
        // Keys only in `other` merge with our implicit (0, 0): they stay 0.
        self.spawned |= other.spawned;
        self.normalize();
    }

    /// Locks whose write count is ≥ 1 on every path.
    fn must_write_held(&self) -> BTreeSet<String> {
        self.locks
            .iter()
            .filter_map(|(k, v)| match v {
                Some(p) if p.iter().all(|(w, _)| *w >= 1) => Some(k.clone()),
                _ => None,
            })
            .collect()
    }

    /// Locks whose read count is ≥ 1 on every path.
    fn must_read_held(&self) -> BTreeSet<String> {
        self.locks
            .iter()
            .filter_map(|(k, v)| match v {
                Some(p) if p.iter().all(|(_, r)| *r >= 1) => Some(k.clone()),
                _ => None,
            })
            .collect()
    }

    /// Locks held in *some* mode on every path.
    fn must_held_any(&self) -> BTreeSet<String> {
        self.locks
            .iter()
            .filter_map(|(k, v)| match v {
                Some(p) if p.iter().all(|(w, r)| *w + *r >= 1) => Some(k.clone()),
                _ => None,
            })
            .collect()
    }
}

/// One variable access with the locks that must be held around it.
#[derive(Debug, Clone)]
pub struct AccessFact {
    /// Qualified variable path.
    pub path: String,
    /// `true` for writes.
    pub write: bool,
    /// Source span.
    pub span: Span,
    /// Locks write-held on every path to this access.
    pub held_write: BTreeSet<String>,
    /// Locks read-held on every path to this access.
    pub held_read: BTreeSet<String>,
    /// Whether the accessed variable is declared inside its context.
    pub declared_local: bool,
    /// The context kind the access runs in.
    pub kind: ContextKind,
    /// Whether this access can overlap another goroutine: it runs in a
    /// spawned context, or in a function body after a `go` statement.
    /// Accesses in the sequential prefix of a function are `false`.
    pub concurrent: bool,
}

/// `held → acquired` ordering observation at a lock acquisition.
#[derive(Debug, Clone)]
pub struct LockEdge {
    /// The lock already held.
    pub held: String,
    /// The lock being acquired.
    pub acquired: String,
    /// Span of the acquisition.
    pub span: Span,
}

/// A direct call with the lock context it runs under.
#[derive(Debug, Clone)]
pub struct CallFact {
    /// Callee function name.
    pub callee: String,
    /// Locks held (any mode, must) at the call site.
    pub held: BTreeSet<String>,
    /// Span of the call.
    pub span: Span,
}

/// Everything the lockset analysis learned about one context.
#[derive(Debug, Default)]
pub struct ContextResult {
    /// Diagnostics found in this context.
    pub diags: Vec<Diagnostic>,
    /// Per-access lock facts, for the cross-context lints.
    pub accesses: Vec<AccessFact>,
    /// Lock-order observations for the deadlock graph.
    pub lock_edges: Vec<LockEdge>,
    /// Calls with held locks, for call-mediated ordering edges.
    pub calls: Vec<CallFact>,
    /// Locks this context acquires directly (non-deferred).
    pub acquires: BTreeSet<String>,
}

/// Strips the `owner::` qualifier for display in messages.
pub fn display_path(id: &str) -> &str {
    id.rsplit_once("::").map(|(_, p)| p).unwrap_or(id)
}

/// Applies `op` to `flow`; when `out` is given, also reports.
fn transfer(flow: &mut Flow, op: &Op, ctx: &Context, out: Option<&mut ContextResult>) {
    match op {
        Op::Sync {
            lock,
            method,
            deferred: true,
            ..
        } => match method {
            LockMethod::Unlock => {
                let e = flow.deferred.entry(lock.clone()).or_insert((0, 0));
                e.0 = (e.0 + 1).min(MAX_COUNT);
            }
            LockMethod::RUnlock => {
                let e = flow.deferred.entry(lock.clone()).or_insert((0, 0));
                e.1 = (e.1 + 1).min(MAX_COUNT);
            }
            // A deferred acquire runs at an unknowable point: give up on
            // this lock rather than risk a wrong error.
            LockMethod::Lock | LockMethod::RLock => {
                flow.locks.insert(lock.clone(), None);
            }
        },
        Op::Sync {
            lock,
            method,
            deferred: false,
            span,
        } => {
            let pairs = flow.pairs(lock);
            if let (Some(out), Some(p)) = (out, &pairs) {
                let name = display_path(lock);
                match method {
                    LockMethod::Lock if p.iter().all(|(w, r)| *w + *r >= 1) => {
                        let msg = if p.iter().all(|(w, _)| *w >= 1) {
                            format!(
                                "second Lock of `{name}` deadlocks: the write lock is already held"
                            )
                        } else if p.iter().all(|(_, r)| *r >= 1) {
                            format!("Lock of `{name}` deadlocks: the read lock is already held (no upgrade)")
                        } else {
                            format!("Lock of `{name}` deadlocks: the lock is already held")
                        };
                        out.diags.push(Diagnostic::error("double-lock", msg, *span));
                    }
                    LockMethod::RLock if p.iter().all(|(w, _)| *w >= 1) => {
                        out.diags.push(Diagnostic::error(
                            "double-lock",
                            format!("RLock of `{name}` deadlocks: the write lock is already held"),
                            *span,
                        ));
                    }
                    LockMethod::Unlock if p.iter().all(|(w, _)| *w == 0) => {
                        out.diags.push(Diagnostic::error(
                            "unlock-without-lock",
                            format!("Unlock of `{name}` without holding the write lock"),
                            *span,
                        ));
                    }
                    LockMethod::RUnlock if p.iter().all(|(_, r)| *r == 0) => {
                        out.diags.push(Diagnostic::error(
                            "runlock-without-rlock",
                            format!("RUnlock of `{name}` without holding the read lock"),
                            *span,
                        ));
                    }
                    _ => {}
                }
                if method.is_acquire() {
                    for held in flow.must_held_any() {
                        if held != *lock {
                            out.lock_edges.push(LockEdge {
                                held,
                                acquired: lock.clone(),
                                span: *span,
                            });
                        }
                    }
                    out.acquires.insert(lock.clone());
                }
            }
            let next = pairs.map(|p| {
                let mut p: Vec<(u8, u8)> = p
                    .into_iter()
                    .map(|(w, r)| match method {
                        LockMethod::Lock => ((w + 1).min(MAX_COUNT), r),
                        LockMethod::RLock => (w, (r + 1).min(MAX_COUNT)),
                        LockMethod::Unlock => (w.saturating_sub(1), r),
                        LockMethod::RUnlock => (w, r.saturating_sub(1)),
                    })
                    .collect();
                canon(&mut p);
                p
            });
            flow.locks.insert(lock.clone(), next);
        }
        Op::Access { path, write, span } => {
            if let Some(out) = out {
                let raw = display_path(path);
                let root = raw.split('.').next().unwrap_or(raw);
                out.accesses.push(AccessFact {
                    path: path.clone(),
                    write: *write,
                    span: *span,
                    held_write: flow.must_write_held(),
                    held_read: flow.must_read_held(),
                    declared_local: ctx.declared.contains(root),
                    kind: ctx.kind,
                    concurrent: ctx.kind != ContextKind::Function || flow.spawned,
                });
            }
        }
        Op::Spawn => flow.spawned = true,
        Op::Call { callee, span } => {
            if let Some(out) = out {
                out.calls.push(CallFact {
                    callee: callee.clone(),
                    held: flow.must_held_any(),
                    span: *span,
                });
            }
        }
        Op::Exit { span } => {
            if let Some(out) = out {
                for (lock, state) in &flow.locks {
                    let Some(pairs) = state else { continue };
                    let (du, dr) = flow.deferred.get(lock).copied().unwrap_or((0, 0));
                    let leaked = pairs
                        .iter()
                        .all(|(w, r)| w.saturating_sub(du) + r.saturating_sub(dr) >= 1);
                    if leaked {
                        out.diags.push(Diagnostic::warning(
                            "missing-unlock",
                            format!("lock `{}` is still held at this return", display_path(lock)),
                            *span,
                        ));
                    }
                }
            }
        }
    }
}

/// Runs the lockset analysis over one context.
pub fn solve(ctx: &Context) -> ContextResult {
    let blocks = &ctx.cfg.blocks;
    let mut in_states: Vec<Option<Flow>> = vec![None; blocks.len()];
    in_states[0] = Some(Flow::default());
    let mut work = vec![0usize];
    while let Some(b) = work.pop() {
        let Some(mut flow) = in_states[b].clone() else {
            continue;
        };
        for op in &blocks[b].ops {
            transfer(&mut flow, op, ctx, None);
        }
        flow.normalize();
        for &s in &blocks[b].succs {
            let changed = match &mut in_states[s] {
                Some(existing) => {
                    let before = existing.clone();
                    existing.join_from(&flow);
                    *existing != before
                }
                slot @ None => {
                    *slot = Some(flow.clone());
                    true
                }
            };
            if changed {
                work.push(s);
            }
        }
    }
    // Report pass: one deterministic sweep over reachable blocks with
    // their fixpoint in-states.
    let mut out = ContextResult::default();
    for (b, state) in in_states.iter().enumerate() {
        let Some(state) = state else { continue };
        let mut flow = state.clone();
        for op in &blocks[b].ops {
            transfer(&mut flow, op, ctx, Some(&mut out));
        }
    }
    out.diags
        .sort_by(|a, b| (a.span.lo, a.span.hi, &a.rule).cmp(&(b.span.lo, b.span.hi, &b.rule)));
    out.diags.dedup();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cfg::contexts;

    fn solve_src(src: &str) -> Vec<ContextResult> {
        let file = golite::parse_file(src).expect("test source parses");
        contexts(&file).iter().map(solve).collect()
    }

    fn rules(results: &[ContextResult]) -> Vec<String> {
        results
            .iter()
            .flat_map(|r| r.diags.iter().map(|d| d.rule.clone()))
            .collect()
    }

    #[test]
    fn balanced_lock_is_clean() {
        let r = solve_src(
            "package p\n\nimport \"sync\"\n\nvar mu sync.Mutex\nvar n int\n\nfunc F() {\n\tmu.Lock()\n\tn++\n\tmu.Unlock()\n}\n",
        );
        assert!(rules(&r).is_empty());
    }

    #[test]
    fn defer_unlock_is_clean() {
        let r = solve_src(
            "package p\n\nimport \"sync\"\n\nvar mu sync.Mutex\nvar n int\n\nfunc F() int {\n\tmu.Lock()\n\tdefer mu.Unlock()\n\tn++\n\treturn n\n}\n",
        );
        assert!(rules(&r).is_empty());
    }

    #[test]
    fn double_lock_fires_error() {
        let r = solve_src(
            "package p\n\nimport \"sync\"\n\nvar mu sync.Mutex\n\nfunc F() {\n\tmu.Lock()\n\tmu.Lock()\n\tmu.Unlock()\n\tmu.Unlock()\n}\n",
        );
        assert_eq!(rules(&r), vec!["double-lock"]);
        assert_eq!(r[0].diags[0].severity, golite::Severity::Error);
    }

    #[test]
    fn conditional_lock_pair_is_not_double_lock() {
        let r = solve_src(
            "package p\n\nimport \"sync\"\n\nvar mu sync.Mutex\n\nfunc F(c bool) {\n\tif c {\n\t\tmu.Lock()\n\t}\n\tif c {\n\t\tmu.Unlock()\n\t}\n}\n",
        );
        assert!(rules(&r)
            .iter()
            .all(|r| r != "double-lock" && r != "unlock-without-lock"));
    }

    #[test]
    fn unlock_without_lock_fires_error() {
        let r = solve_src(
            "package p\n\nimport \"sync\"\n\nvar mu sync.Mutex\n\nfunc F() {\n\tmu.Unlock()\n}\n",
        );
        assert_eq!(rules(&r), vec!["unlock-without-lock"]);
    }

    #[test]
    fn early_return_leak_warns_missing_unlock() {
        let r = solve_src(
            "package p\n\nimport \"sync\"\n\nvar mu sync.Mutex\nvar n int\n\nfunc F(c bool) int {\n\tmu.Lock()\n\tif c {\n\t\treturn 0\n\t}\n\tn++\n\tmu.Unlock()\n\treturn n\n}\n",
        );
        assert_eq!(rules(&r), vec!["missing-unlock"]);
        assert_eq!(r[0].diags[0].severity, golite::Severity::Warning);
    }

    #[test]
    fn rlock_then_lock_is_upgrade_deadlock() {
        let r = solve_src(
            "package p\n\nimport \"sync\"\n\nvar mu sync.RWMutex\n\nfunc F() {\n\tmu.RLock()\n\tmu.Lock()\n\tmu.Unlock()\n\tmu.RUnlock()\n}\n",
        );
        assert_eq!(rules(&r), vec!["double-lock"]);
        assert!(r[0].diags[0].message.contains("read lock"));
    }

    #[test]
    fn rlock_pairs_are_reentrant() {
        let r = solve_src(
            "package p\n\nimport \"sync\"\n\nvar mu sync.RWMutex\nvar n int\n\nfunc F() int {\n\tmu.RLock()\n\tmu.RLock()\n\tm := n\n\tmu.RUnlock()\n\tmu.RUnlock()\n\treturn m\n}\n",
        );
        assert!(rules(&r).is_empty());
    }

    #[test]
    fn lock_order_edges_are_collected() {
        let r = solve_src(
            "package p\n\nimport \"sync\"\n\nvar a sync.Mutex\nvar b sync.Mutex\n\nfunc F() {\n\ta.Lock()\n\tb.Lock()\n\tb.Unlock()\n\ta.Unlock()\n}\n",
        );
        let edges: Vec<(String, String)> = r[0]
            .lock_edges
            .iter()
            .map(|e| (e.held.clone(), e.acquired.clone()))
            .collect();
        assert_eq!(edges, vec![("a".to_owned(), "b".to_owned())]);
    }

    #[test]
    fn access_facts_carry_held_locks() {
        let r = solve_src(
            "package p\n\nimport \"sync\"\n\nvar mu sync.Mutex\nvar n int\n\nfunc F() {\n\tgo func() {\n\t\tmu.Lock()\n\t\tn++\n\t\tmu.Unlock()\n\t}()\n}\n",
        );
        let goroutine = &r[1];
        let fact = goroutine
            .accesses
            .iter()
            .find(|a| a.path == "n")
            .expect("access to n");
        assert!(fact.write);
        assert!(fact.held_write.contains("mu"));
        assert_eq!(fact.kind, ContextKind::Goroutine);
        assert!(!fact.declared_local);
    }
}
