//! `statcheck` — a lockset/lock-order static analyzer for `golite`
//! programs, used by the Dr.Fix reproduction (PLDI 2025) to gate
//! candidate patches *before* dynamic validation.
//!
//! The analyzer builds per-function control-flow graphs ([`mod@cfg`]), runs
//! a lockset dataflow over each ([`lockset`]), links lock acquisitions
//! into a cross-function ordering graph ([`lockorder`]), and adds a set
//! of AST-level lints ([`lints`]). Findings are [`golite::Diagnostic`]s
//! on two tiers:
//!
//! - **errors** are sound for rejection: a flagged program misuses
//!   synchronization on every execution (guaranteed deadlock, unlock of
//!   an unheld lock, a `WaitGroup` that can never drain, …), so the
//!   patch gate can discard the candidate without running it;
//! - **warnings** are heuristic (possible leaks, ordering cycles,
//!   suspicious lock usage) and must never override a dynamically-clean
//!   verdict.
//!
//! # Example
//!
//! ```
//! let src = "package main\n\nimport \"sync\"\n\nvar mu sync.Mutex\n\nfunc main() {\n\tmu.Lock()\n\tmu.Lock()\n}\n";
//! let reports = statcheck::check_sources(&[("main.go".to_owned(), src.to_owned())]).unwrap();
//! let (file, diag) = statcheck::first_error(&reports).expect("double lock found");
//! assert_eq!(file, "main.go");
//! assert_eq!(diag.rule, "double-lock");
//! ```

#![warn(missing_docs)]

pub mod cfg;
pub mod lints;
pub mod lockorder;
pub mod lockset;

use cfg::ContextKind;
use lockset::{display_path, AccessFact};
use std::collections::BTreeMap;

pub use golite::{Diagnostic, Severity};

/// All diagnostics found in one source file, sorted by position.
#[derive(Debug)]
pub struct FileReport {
    /// File name as given to [`check_sources`].
    pub file: String,
    /// Diagnostics, ordered by span then rule.
    pub diagnostics: Vec<Diagnostic>,
}

/// Analyzes a set of sources that form one program. Returns one report
/// per file (in input order); lock-order cycles are detected across
/// files. Fails only if a file does not parse.
pub fn check_sources(
    files: &[(String, String)],
) -> Result<Vec<FileReport>, (String, golite::Diag)> {
    let mut parsed = Vec::new();
    for (name, src) in files {
        let file = golite::parse_file(src).map_err(|d| (name.clone(), d))?;
        parsed.push((name.clone(), file));
    }
    // Program-wide naming facts: a package-level lock declared in one
    // file must qualify identically when used from another.
    let env = cfg::FileEnv::for_program(parsed.iter().map(|(_, f)| f));
    let mut reports: Vec<FileReport> = Vec::new();
    let mut all_contexts = Vec::new(); // (file_idx, func, kind, result)
    for (idx, (name, file)) in parsed.iter().enumerate() {
        let mut diags = lints::ast_lints(file);
        let ctxs = cfg::contexts_with(file, &env);
        let mut accesses: Vec<AccessFact> = Vec::new();
        for ctx in &ctxs {
            let res = lockset::solve(ctx);
            diags.extend(res.diags.iter().cloned());
            accesses.extend(res.accesses.iter().cloned());
            all_contexts.push((idx, ctx.func.clone(), ctx.kind, res));
        }
        diags.extend(access_lints(&accesses));
        reports.push(FileReport {
            file: name.clone(),
            diagnostics: diags,
        });
    }
    let tagged: Vec<(usize, String, ContextKind, &lockset::ContextResult)> = all_contexts
        .iter()
        .map(|(i, f, k, r)| (*i, f.clone(), *k, r))
        .collect();
    for (idx, diag) in lockorder::lock_order_diagnostics(&tagged) {
        reports[idx].diagnostics.push(diag);
    }
    for r in &mut reports {
        r.diagnostics
            .sort_by(|a, b| (a.span.lo, a.span.hi, &a.rule).cmp(&(b.span.lo, b.span.hi, &b.rule)));
        r.diagnostics.dedup();
    }
    Ok(reports)
}

/// Analyzes a single file.
pub fn check_file(name: &str, src: &str) -> Result<FileReport, golite::Diag> {
    let mut reports = check_sources(&[(name.to_owned(), src.to_owned())]).map_err(|(_, d)| d)?;
    Ok(reports.remove(0))
}

/// Whether any report carries an error-tier diagnostic.
pub fn has_errors(reports: &[FileReport]) -> bool {
    first_error(reports).is_some()
}

/// The first error-tier diagnostic across all reports, with its file.
pub fn first_error(reports: &[FileReport]) -> Option<(&str, &Diagnostic)> {
    reports.iter().find_map(|r| {
        r.diagnostics
            .iter()
            .find(|d| d.severity == Severity::Error)
            .map(|d| (r.file.as_str(), d))
    })
}

/// Counts diagnostics of `severity` across all reports.
pub fn count_severity(reports: &[FileReport], severity: Severity) -> usize {
    reports
        .iter()
        .map(|r| {
            r.diagnostics
                .iter()
                .filter(|d| d.severity == severity)
                .count()
        })
        .sum()
}

/// Cross-context lints over the access facts of one file:
/// `inconsistent-lock` and `rwmutex-confusion`.
fn access_lints(accesses: &[AccessFact]) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    let mut groups: BTreeMap<&str, Vec<&AccessFact>> = BTreeMap::new();
    for a in accesses {
        groups.entry(a.path.as_str()).or_default().push(a);
    }
    for (path, facts) in groups {
        let written = facts.iter().any(|a| a.write && a.concurrent);
        if !written {
            // Read-only data cannot race, and neither can writes that
            // all happen in a function's sequential prefix (before any
            // `go` statement) — init-then-spawn is a correct idiom.
            continue;
        }
        // Only shared state touched on spawned goroutines matters;
        // context-local variables are private by construction.
        let shared: Vec<&&AccessFact> = facts
            .iter()
            .filter(|a| a.kind == ContextKind::Goroutine && !a.declared_local)
            .collect();
        let guarded: Vec<&&&AccessFact> = shared
            .iter()
            .filter(|a| !a.held_write.is_empty() || !a.held_read.is_empty())
            .collect();
        let unguarded: Vec<&&&AccessFact> = shared
            .iter()
            .filter(|a| a.held_write.is_empty() && a.held_read.is_empty())
            .collect();
        if let (Some(g), Some(u)) = (guarded.first(), unguarded.iter().min_by_key(|a| a.span.lo)) {
            let lock = g
                .held_write
                .iter()
                .chain(g.held_read.iter())
                .next()
                .cloned()
                .unwrap_or_default();
            diags.push(Diagnostic::warning(
                "inconsistent-lock",
                format!(
                    "`{}` is guarded by `{}` in some goroutines but accessed without a lock here",
                    display_path(path),
                    display_path(&lock)
                ),
                u.span,
            ));
        }
        for a in &shared {
            if a.write && a.held_write.is_empty() {
                if let Some(lock) = a.held_read.iter().next() {
                    diags.push(Diagnostic::warning(
                        "rwmutex-confusion",
                        format!(
                            "write to `{}` while only the read lock of `{}` is held",
                            display_path(path),
                            display_path(lock)
                        ),
                        a.span,
                    ));
                }
            }
        }
    }
    diags
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rules(src: &str) -> Vec<(String, Severity)> {
        check_file("main.go", src)
            .expect("parses")
            .diagnostics
            .into_iter()
            .map(|d| (d.rule, d.severity))
            .collect()
    }

    #[test]
    fn clean_guarded_counter_has_no_diagnostics() {
        let r = rules(
            "package main\n\nimport \"sync\"\n\nfunc main() {\n\tvar mu sync.Mutex\n\tvar wg sync.WaitGroup\n\tn := 0\n\twg.Add(2)\n\tfor i := 0; i < 2; i++ {\n\t\tgo func() {\n\t\t\tdefer wg.Done()\n\t\t\tmu.Lock()\n\t\t\tn++\n\t\t\tmu.Unlock()\n\t\t}()\n\t}\n\twg.Wait()\n\tprintln(n)\n}\n",
        );
        assert!(r.is_empty(), "unexpected diagnostics: {r:?}");
    }

    #[test]
    fn inconsistent_guard_warns() {
        let r = rules(
            "package main\n\nimport \"sync\"\n\nvar mu sync.Mutex\nvar n int\n\nfunc main() {\n\tgo func() {\n\t\tmu.Lock()\n\t\tn++\n\t\tmu.Unlock()\n\t}()\n\tgo func() {\n\t\tn++\n\t}()\n}\n",
        );
        assert_eq!(r, vec![("inconsistent-lock".to_owned(), Severity::Warning)]);
    }

    #[test]
    fn write_under_read_lock_warns() {
        let r = rules(
            "package main\n\nimport \"sync\"\n\nvar mu sync.RWMutex\nvar n int\n\nfunc main() {\n\tgo func() {\n\t\tmu.RLock()\n\t\tn++\n\t\tmu.RUnlock()\n\t}()\n\tgo func() {\n\t\tmu.RLock()\n\t\tn++\n\t\tmu.RUnlock()\n\t}()\n}\n",
        );
        assert!(
            r.iter().any(|(rule, _)| rule == "rwmutex-confusion"),
            "{r:?}"
        );
    }

    #[test]
    fn cross_file_lock_order_cycle_is_found() {
        let f1 = "package main\n\nimport \"sync\"\n\nvar a sync.Mutex\nvar b sync.Mutex\n\nfunc F() {\n\ta.Lock()\n\tb.Lock()\n\tb.Unlock()\n\ta.Unlock()\n}\n";
        let f2 =
            "package main\n\nfunc G() {\n\tb.Lock()\n\ta.Lock()\n\ta.Unlock()\n\tb.Unlock()\n}\n";
        let reports = check_sources(&[
            ("a.go".to_owned(), f1.to_owned()),
            ("b.go".to_owned(), f2.to_owned()),
        ])
        .expect("parses");
        let all: Vec<&str> = reports
            .iter()
            .flat_map(|r| r.diagnostics.iter().map(|d| d.rule.as_str()))
            .collect();
        assert!(all.contains(&"lock-order-cycle"), "{all:?}");
    }

    #[test]
    fn error_helpers_see_only_errors() {
        let src = "package main\n\nimport \"sync\"\n\nvar mu sync.Mutex\n\nfunc main() {\n\tmu.Unlock()\n}\n";
        let reports = check_sources(&[("m.go".to_owned(), src.to_owned())]).unwrap();
        assert!(has_errors(&reports));
        let (file, diag) = first_error(&reports).unwrap();
        assert_eq!(file, "m.go");
        assert_eq!(diag.rule, "unlock-without-lock");
        assert_eq!(count_severity(&reports, Severity::Error), 1);
        assert_eq!(count_severity(&reports, Severity::Warning), 0);
    }

    #[test]
    fn parse_failure_reports_the_failing_file() {
        let err = check_sources(&[
            (
                "ok.go".to_owned(),
                "package main\n\nfunc main() {}\n".to_owned(),
            ),
            ("bad.go".to_owned(), "package main\n\nfunc {\n".to_owned()),
        ])
        .unwrap_err();
        assert_eq!(err.0, "bad.go");
    }
}
