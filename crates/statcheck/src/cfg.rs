//! Per-function control-flow graphs over `golite` ASTs.
//!
//! Every function body — and every function literal inside one — becomes
//! its own [`Context`] with a small basic-block CFG. Statements are
//! lowered to the flat [`Op`] alphabet the lockset analysis consumes:
//! lock operations (with `defer` tracked at registration point),
//! variable accesses, direct calls, and function exits.
//!
//! Closure bodies are *not* inlined into their parent's CFG: a `go`
//! literal runs on another goroutine and an escaping closure runs at an
//! unknown time, so each gets an independent context whose entry lockset
//! is empty.

use golite::ast::{
    Block, CommClause, Decl, Expr, File, FuncDecl, FuncSig, Stmt, Type, UnOp, VarDecl,
};
use golite::Span;
use std::collections::BTreeSet;

/// Sentinel for "control flow diverged" (after `return`/`break`/…).
const NO_BLOCK: usize = usize::MAX;

/// The four mutex methods the lockset tracks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LockMethod {
    /// `mu.Lock()`.
    Lock,
    /// `mu.Unlock()`.
    Unlock,
    /// `mu.RLock()`.
    RLock,
    /// `mu.RUnlock()`.
    RUnlock,
}

impl LockMethod {
    /// Maps a method name to a lock method.
    pub fn from_name(name: &str) -> Option<LockMethod> {
        match name {
            "Lock" => Some(LockMethod::Lock),
            "Unlock" => Some(LockMethod::Unlock),
            "RLock" => Some(LockMethod::RLock),
            "RUnlock" => Some(LockMethod::RUnlock),
            _ => None,
        }
    }

    /// `true` for `Lock`/`RLock`.
    pub fn is_acquire(self) -> bool {
        matches!(self, LockMethod::Lock | LockMethod::RLock)
    }
}

/// One lowered operation.
#[derive(Debug, Clone)]
pub enum Op {
    /// A lock operation on the lock named `lock` (qualified id).
    Sync {
        /// Qualified lock id: package-level locks keep their bare path,
        /// method-receiver locks rewrite to `Type.path`, and locals are
        /// scoped as `func::path`.
        lock: String,
        /// Which mutex method.
        method: LockMethod,
        /// `true` when registered via `defer` (runs at function exit).
        deferred: bool,
        /// Source span of the call.
        span: Span,
    },
    /// A read or write of a variable path.
    Access {
        /// Qualified variable path.
        path: String,
        /// `true` for writes (assignment targets, `++`/`--`).
        write: bool,
        /// Source span.
        span: Span,
    },
    /// A direct call to a file-local function or method.
    Call {
        /// Callee name (receiver-type-agnostic for methods).
        callee: String,
        /// Source span.
        span: Span,
    },
    /// A function exit point (`return` or fall-off-the-end).
    Exit {
        /// Source span of the exit.
        span: Span,
    },
    /// A `go` statement: from here on, a spawned goroutine may run
    /// concurrently with this context.
    Spawn,
}

/// A basic block: straight-line ops plus successor edges.
#[derive(Debug, Default)]
pub struct BasicBlock {
    /// Ops in execution order.
    pub ops: Vec<Op>,
    /// Successor block indices.
    pub succs: Vec<usize>,
}

/// A control-flow graph; block 0 is the entry.
#[derive(Debug)]
pub struct Cfg {
    /// Basic blocks.
    pub blocks: Vec<BasicBlock>,
    /// The synthetic exit block (no ops, no successors).
    pub exit: usize,
}

/// What kind of execution context a CFG models.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ContextKind {
    /// A top-level function or method body.
    Function,
    /// A function literal spawned with `go` (its own goroutine).
    Goroutine,
    /// Any other function literal (callback, deferred closure, …).
    Closure,
}

/// One analyzed execution context: a function body or closure body.
#[derive(Debug)]
pub struct Context {
    /// Name of the owning top-level function (closures inherit it).
    pub func: String,
    /// Context kind.
    pub kind: ContextKind,
    /// Control-flow graph.
    pub cfg: Cfg,
    /// Names declared inside this context (params, `:=`, `var`, range
    /// bindings) — accesses to these are context-private.
    pub declared: BTreeSet<String>,
    /// Span of the context's body.
    pub span: Span,
}

/// File-level naming facts shared by every context of one file.
#[derive(Debug, Default)]
pub struct FileEnv {
    /// Imported package names (aliases resolved).
    pub packages: BTreeSet<String>,
    /// Top-level function and method names.
    pub funcs: BTreeSet<String>,
    /// Declared type names.
    pub types: BTreeSet<String>,
    /// Package-level variable names.
    pub globals: BTreeSet<String>,
}

impl FileEnv {
    /// Collects the naming facts of `file`.
    pub fn new(file: &File) -> FileEnv {
        FileEnv::for_program(std::iter::once(file))
    }

    /// Collects naming facts across every file of a program, so that a
    /// package-level variable declared in one file qualifies the same
    /// way when used from another.
    pub fn for_program<'a>(files: impl IntoIterator<Item = &'a File>) -> FileEnv {
        let mut env = FileEnv::default();
        for file in files {
            env.add_file(file);
        }
        env
    }

    fn add_file(&mut self, file: &File) {
        let env = self;
        for imp in &file.imports {
            let name = imp
                .alias
                .clone()
                .unwrap_or_else(|| imp.path.rsplit('/').next().unwrap_or(&imp.path).to_owned());
            env.packages.insert(name);
        }
        for d in &file.decls {
            match d {
                Decl::Func(f) => {
                    env.funcs.insert(f.name.clone());
                }
                Decl::Type(t) => {
                    env.types.insert(t.name.clone());
                }
                Decl::Var(v) | Decl::Const(v) => {
                    env.globals.extend(v.names.iter().cloned());
                }
            }
        }
    }
}

/// Names that are never variable accesses.
fn is_builtin(name: &str) -> bool {
    matches!(
        name,
        "_" | "true"
            | "false"
            | "nil"
            | "iota"
            | "len"
            | "cap"
            | "append"
            | "copy"
            | "delete"
            | "close"
            | "panic"
            | "print"
            | "println"
            | "recover"
            | "min"
            | "max"
            | "int"
            | "int8"
            | "int16"
            | "int32"
            | "int64"
            | "uint"
            | "uint8"
            | "uint16"
            | "uint32"
            | "uint64"
            | "float32"
            | "float64"
            | "complex64"
            | "complex128"
            | "bool"
            | "string"
            | "byte"
            | "rune"
            | "error"
            | "any"
            | "uintptr"
    )
}

/// Renders a pure lvalue chain (`a`, `a.b`, `a.b[i].c`, `(*p).f`) as a
/// dotted path, dropping index expressions: `m[k]` renders as `m`.
pub fn path_of(e: &Expr) -> Option<String> {
    match e {
        Expr::Ident { name, .. } => Some(name.clone()),
        Expr::Selector { expr, name, .. } => Some(format!("{}.{name}", path_of(expr)?)),
        Expr::Index { expr, .. } | Expr::SliceExpr { expr, .. } => path_of(expr),
        Expr::Paren { expr, .. } | Expr::TypeAssert { expr, .. } => path_of(expr),
        Expr::Unary {
            op: UnOp::Deref | UnOp::Addr,
            expr,
            ..
        } => path_of(expr),
        _ => None,
    }
}

/// The builder turning one body into a [`Cfg`].
struct Builder<'a> {
    blocks: Vec<BasicBlock>,
    exit: usize,
    /// `(break_target, continue_target)` stack; `continue_target` is
    /// `NO_BLOCK` for switch/select scopes.
    scopes: Vec<(usize, usize)>,
    declared: BTreeSet<String>,
    env: &'a FileEnv,
    /// Substitution applied to path roots: method receivers rewrite to
    /// their type name so `s.mu` means the same lock in every method.
    recv: Option<(String, String)>,
}

impl<'a> Builder<'a> {
    fn new(env: &'a FileEnv, recv: Option<(String, String)>) -> Self {
        Builder {
            blocks: vec![BasicBlock::default()],
            exit: 0,
            scopes: Vec::new(),
            declared: BTreeSet::new(),
            env,
            recv,
        }
    }

    fn new_block(&mut self) -> usize {
        self.blocks.push(BasicBlock::default());
        self.blocks.len() - 1
    }

    fn edge(&mut self, from: usize, to: usize) {
        if from != NO_BLOCK && !self.blocks[from].succs.contains(&to) {
            self.blocks[from].succs.push(to);
        }
    }

    fn push(&mut self, block: usize, op: Op) {
        if block != NO_BLOCK {
            self.blocks[block].ops.push(op);
        }
    }

    /// Qualifies a raw lvalue path into a stable id: package-level names
    /// stay bare, method-receiver roots rewrite to the receiver type,
    /// and everything else is scoped to the owning function.
    fn qualify(&self, raw: &str, owner: &str) -> String {
        let root = raw.split('.').next().unwrap_or(raw);
        if let Some((recv_name, type_name)) = &self.recv {
            if root == recv_name {
                return format!("{type_name}{}", &raw[root.len()..]);
            }
        }
        if self.env.globals.contains(root) {
            return raw.to_owned();
        }
        format!("{owner}::{raw}")
    }

    // ---- expression lowering -------------------------------------------------

    /// Emits read accesses (and nested sync/call ops) for `e`.
    fn reads(&mut self, block: usize, e: &Expr, owner: &str) {
        if let Some(p) = path_of(e) {
            self.access(block, &p, false, e.span(), owner);
            // Index expressions inside the chain still execute.
            self.index_reads(block, e, owner);
            return;
        }
        match e {
            Expr::Call { .. } => self.call(block, e, owner),
            Expr::FuncLit { .. } => {} // separate context
            Expr::CompositeLit { elems, .. } => {
                for el in elems {
                    if let Some(k) = &el.key {
                        if k.as_ident().is_none() {
                            self.reads(block, k, owner);
                        }
                    }
                    self.reads(block, &el.value, owner);
                }
            }
            Expr::Make { args, .. } => {
                for a in args {
                    self.reads(block, a, owner);
                }
            }
            Expr::New { .. } => {}
            Expr::Unary { expr, .. } | Expr::Paren { expr, .. } => self.reads(block, expr, owner),
            Expr::Binary { lhs, rhs, .. } => {
                self.reads(block, lhs, owner);
                self.reads(block, rhs, owner);
            }
            Expr::Selector { expr, .. }
            | Expr::Index { expr, .. }
            | Expr::SliceExpr { expr, .. }
            | Expr::TypeAssert { expr, .. } => {
                self.reads(block, expr, owner);
                self.index_reads(block, e, owner);
            }
            _ => {}
        }
    }

    /// Emits reads for index/slice-bound expressions nested in a chain.
    fn index_reads(&mut self, block: usize, e: &Expr, owner: &str) {
        match e {
            Expr::Index { expr, index, .. } => {
                self.index_reads(block, expr, owner);
                self.reads(block, index, owner);
            }
            Expr::SliceExpr { expr, lo, hi, .. } => {
                self.index_reads(block, expr, owner);
                if let Some(lo) = lo {
                    self.reads(block, lo, owner);
                }
                if let Some(hi) = hi {
                    self.reads(block, hi, owner);
                }
            }
            Expr::Selector { expr, .. }
            | Expr::Paren { expr, .. }
            | Expr::TypeAssert { expr, .. }
            | Expr::Unary { expr, .. } => self.index_reads(block, expr, owner),
            _ => {}
        }
    }

    /// Emits an access op unless the path is a non-variable name.
    fn access(&mut self, block: usize, raw: &str, write: bool, span: Span, owner: &str) {
        let root = raw.split('.').next().unwrap_or(raw);
        if is_builtin(root)
            || self.env.packages.contains(root)
            || self.env.types.contains(root)
            || (self.env.funcs.contains(root) && raw == root)
        {
            return;
        }
        let path = self.qualify(raw, owner);
        self.push(block, Op::Access { path, write, span });
    }

    /// Lowers a call expression: sync ops for mutex methods, call ops
    /// for file-local callees, plus argument reads.
    fn call(&mut self, block: usize, e: &Expr, owner: &str) {
        let Expr::Call {
            fun, args, span, ..
        } = e
        else {
            return;
        };
        match fun.as_ref() {
            Expr::Selector {
                expr: recv, name, ..
            } => {
                let recv_path = path_of(recv);
                let is_pkg = recv
                    .as_ident()
                    .map(|r| self.env.packages.contains(r))
                    .unwrap_or(false);
                if !is_pkg {
                    if let (Some(m), Some(p), true) = (
                        LockMethod::from_name(name),
                        recv_path.as_deref(),
                        args.is_empty(),
                    ) {
                        let lock = self.qualify(p, owner);
                        self.push(
                            block,
                            Op::Sync {
                                lock,
                                method: m,
                                deferred: false,
                                span: *span,
                            },
                        );
                        return;
                    }
                    if let Some(p) = &recv_path {
                        self.access(block, p, false, recv.span(), owner);
                        if self.env.funcs.contains(name.as_str()) {
                            self.push(
                                block,
                                Op::Call {
                                    callee: name.clone(),
                                    span: *span,
                                },
                            );
                        }
                    } else {
                        self.reads(block, recv, owner);
                    }
                }
            }
            Expr::Ident { name, .. } => {
                if self.env.funcs.contains(name.as_str()) {
                    self.push(
                        block,
                        Op::Call {
                            callee: name.clone(),
                            span: *span,
                        },
                    );
                } else if !is_builtin(name) {
                    // Calling through a function-typed variable.
                    self.access(block, name, false, fun.span(), owner);
                }
            }
            Expr::FuncLit { .. } => {} // IIFE body is its own context
            other => self.reads(block, other, owner),
        }
        for a in args {
            self.reads(block, a, owner);
        }
    }

    /// Emits a write access for an assignment target.
    fn write_target(&mut self, block: usize, e: &Expr, owner: &str) {
        if let Some(p) = path_of(e) {
            self.access(block, &p, true, e.span(), owner);
            self.index_reads(block, e, owner);
        } else {
            self.reads(block, e, owner);
        }
    }

    // ---- statement lowering --------------------------------------------------

    fn stmts(&mut self, mut cur: usize, list: &[Stmt], owner: &str) -> usize {
        for s in list {
            if cur == NO_BLOCK {
                break; // unreachable code after return/break/continue
            }
            cur = self.stmt(cur, s, owner);
        }
        cur
    }

    fn var_decl(&mut self, cur: usize, d: &VarDecl, owner: &str) {
        self.declared.extend(d.names.iter().cloned());
        for v in &d.values {
            self.reads(cur, v, owner);
        }
    }

    fn stmt(&mut self, cur: usize, s: &Stmt, owner: &str) -> usize {
        match s {
            Stmt::Decl(d) => {
                self.var_decl(cur, d, owner);
                cur
            }
            Stmt::ShortVar { names, values, .. } => {
                for v in values {
                    self.reads(cur, v, owner);
                }
                self.declared.extend(names.iter().cloned());
                cur
            }
            Stmt::Assign { lhs, rhs, .. } => {
                for v in rhs {
                    self.reads(cur, v, owner);
                }
                for t in lhs {
                    self.write_target(cur, t, owner);
                }
                cur
            }
            Stmt::IncDec { expr, .. } => {
                self.write_target(cur, expr, owner);
                cur
            }
            Stmt::Expr(e) => {
                self.reads(cur, e, owner);
                cur
            }
            Stmt::Send { chan, value, .. } => {
                self.reads(cur, chan, owner);
                self.reads(cur, value, owner);
                cur
            }
            Stmt::Go { call, .. } => {
                // Arguments are evaluated on the spawning goroutine; the
                // callee body (if a literal) is a separate context.
                if let Expr::Call { args, fun, .. } = call {
                    if !matches!(fun.as_ref(), Expr::FuncLit { .. }) {
                        if let Some(p) = path_of(fun) {
                            self.access(cur, &p, false, fun.span(), owner);
                        }
                    }
                    for a in args {
                        self.reads(cur, a, owner);
                    }
                }
                self.push(cur, Op::Spawn);
                cur
            }
            Stmt::Defer { call, span } => {
                self.defer_call(cur, call, *span, owner);
                cur
            }
            Stmt::Return { values, span } => {
                for v in values {
                    self.reads(cur, v, owner);
                }
                self.push(cur, Op::Exit { span: *span });
                self.edge(cur, self.exit);
                NO_BLOCK
            }
            Stmt::If(ifs) => {
                let mut cur = cur;
                if let Some(init) = &ifs.init {
                    cur = self.stmt(cur, init, owner);
                }
                self.reads(cur, &ifs.cond, owner);
                let then_b = self.new_block();
                self.edge(cur, then_b);
                let t_end = self.stmts(then_b, &ifs.then.stmts, owner);
                let join = self.new_block();
                let mut reachable = false;
                if t_end != NO_BLOCK {
                    self.edge(t_end, join);
                    reachable = true;
                }
                match &ifs.else_ {
                    Some(e) => {
                        let else_b = self.new_block();
                        self.edge(cur, else_b);
                        let e_end = match e.as_ref() {
                            Stmt::Block(b) => self.stmts(else_b, &b.stmts, owner),
                            other => self.stmt(else_b, other, owner),
                        };
                        if e_end != NO_BLOCK {
                            self.edge(e_end, join);
                            reachable = true;
                        }
                    }
                    None => {
                        self.edge(cur, join);
                        reachable = true;
                    }
                }
                if reachable {
                    join
                } else {
                    NO_BLOCK
                }
            }
            Stmt::For(f) => {
                let mut cur = cur;
                if let Some(init) = &f.init {
                    cur = self.stmt(cur, init, owner);
                }
                let head = self.new_block();
                self.edge(cur, head);
                if let Some(c) = &f.cond {
                    self.reads(head, c, owner);
                }
                let body_b = self.new_block();
                let exit_b = self.new_block();
                self.edge(head, body_b);
                if f.cond.is_some() {
                    self.edge(head, exit_b);
                }
                // `continue` runs the post statement before re-testing.
                let post_b = if f.post.is_some() {
                    self.new_block()
                } else {
                    head
                };
                self.scopes.push((exit_b, post_b));
                let b_end = self.stmts(body_b, &f.body.stmts, owner);
                self.scopes.pop();
                if b_end != NO_BLOCK {
                    self.edge(b_end, post_b);
                }
                if let Some(post) = &f.post {
                    let p_end = self.stmt(post_b, post, owner);
                    if p_end != NO_BLOCK {
                        self.edge(p_end, head);
                    }
                }
                exit_b
            }
            Stmt::Range(r) => {
                self.reads(cur, &r.expr, owner);
                let head = self.new_block();
                self.edge(cur, head);
                let body_b = self.new_block();
                let exit_b = self.new_block();
                self.edge(head, body_b);
                self.edge(head, exit_b);
                for bind in [&r.key, &r.value].into_iter().flatten() {
                    if r.define {
                        if let Some(n) = bind.as_ident() {
                            self.declared.insert(n.to_owned());
                        }
                    } else {
                        self.write_target(body_b, bind, owner);
                    }
                }
                self.scopes.push((exit_b, head));
                let b_end = self.stmts(body_b, &r.body.stmts, owner);
                self.scopes.pop();
                if b_end != NO_BLOCK {
                    self.edge(b_end, head);
                }
                exit_b
            }
            Stmt::Switch(sw) => {
                let mut cur = cur;
                if let Some(init) = &sw.init {
                    cur = self.stmt(cur, init, owner);
                }
                if let Some(tag) = &sw.tag {
                    self.reads(cur, tag, owner);
                }
                let join = self.new_block();
                let mut has_default = false;
                for case in &sw.cases {
                    has_default |= case.exprs.is_empty();
                    let cb = self.new_block();
                    self.edge(cur, cb);
                    for e in &case.exprs {
                        self.reads(cb, e, owner);
                    }
                    self.scopes.push((join, NO_BLOCK));
                    let end = self.stmts(cb, &case.body, owner);
                    self.scopes.pop();
                    if end != NO_BLOCK {
                        self.edge(end, join);
                    }
                }
                if !has_default {
                    self.edge(cur, join);
                }
                join
            }
            Stmt::Select(sel) => {
                let join = self.new_block();
                for case in &sel.cases {
                    let cb = self.new_block();
                    self.edge(cur, cb);
                    match &case.comm {
                        CommClause::Send { chan, value } => {
                            self.reads(cb, chan, owner);
                            self.reads(cb, value, owner);
                        }
                        CommClause::Recv { lhs, define, chan } => {
                            self.reads(cb, chan, owner);
                            for t in lhs {
                                if *define {
                                    if let Some(n) = t.as_ident() {
                                        self.declared.insert(n.to_owned());
                                    }
                                } else {
                                    self.write_target(cb, t, owner);
                                }
                            }
                        }
                        CommClause::Default => {}
                    }
                    self.scopes.push((join, NO_BLOCK));
                    let end = self.stmts(cb, &case.body, owner);
                    self.scopes.pop();
                    if end != NO_BLOCK {
                        self.edge(end, join);
                    }
                }
                if sel.cases.is_empty() {
                    self.edge(cur, join);
                }
                join
            }
            Stmt::Block(b) => self.stmts(cur, &b.stmts, owner),
            Stmt::Break { .. } => {
                if let Some(&(target, _)) = self.scopes.last() {
                    self.edge(cur, target);
                }
                NO_BLOCK
            }
            Stmt::Continue { .. } => {
                // Innermost scope with a continue target (loops only).
                if let Some(&(_, target)) = self.scopes.iter().rev().find(|(_, c)| *c != NO_BLOCK) {
                    self.edge(cur, target);
                }
                NO_BLOCK
            }
            Stmt::Labeled { stmt, .. } => self.stmt(cur, stmt, owner),
            Stmt::Empty { .. } => cur,
        }
    }

    /// Lowers `defer call`: deferred lock ops are recorded at the
    /// registration point; a deferred closure is scanned (shallowly) for
    /// the lock calls it will run.
    fn defer_call(&mut self, cur: usize, call: &Expr, span: Span, owner: &str) {
        if let Expr::Call { fun, args, .. } = call {
            if let Expr::Selector {
                expr: recv, name, ..
            } = fun.as_ref()
            {
                if let (Some(m), Some(p), true) =
                    (LockMethod::from_name(name), path_of(recv), args.is_empty())
                {
                    let lock = self.qualify(&p, owner);
                    self.push(
                        cur,
                        Op::Sync {
                            lock,
                            method: m,
                            deferred: true,
                            span,
                        },
                    );
                    return;
                }
            }
            if let Expr::FuncLit { body, .. } = fun.as_ref() {
                for s in &body.stmts {
                    if let Stmt::Expr(Expr::Call {
                        fun, args, span, ..
                    }) = s
                    {
                        if let Expr::Selector {
                            expr: recv, name, ..
                        } = fun.as_ref()
                        {
                            if let (Some(m), Some(p), true) =
                                (LockMethod::from_name(name), path_of(recv), args.is_empty())
                            {
                                let lock = self.qualify(&p, owner);
                                self.push(
                                    cur,
                                    Op::Sync {
                                        lock,
                                        method: m,
                                        deferred: true,
                                        span: *span,
                                    },
                                );
                            }
                        }
                    }
                }
                for a in args {
                    self.reads(cur, a, owner);
                }
                return;
            }
            // Other deferred calls: arguments evaluate now; the receiver
            // is an ordinary access.
            self.reads(cur, call, owner);
        }
    }
}

/// Builds the CFG for one body.
fn build_cfg(
    env: &FileEnv,
    recv: Option<(String, String)>,
    params: &FuncSig,
    extra_declared: &[String],
    body: &Block,
    owner: &str,
) -> (Cfg, BTreeSet<String>) {
    let mut b = Builder::new(env, recv);
    b.exit = b.new_block();
    for (name, _) in params.param_names() {
        b.declared.insert(name.to_owned());
    }
    for n in extra_declared {
        b.declared.insert(n.clone());
    }
    let end = b.stmts(0, &body.stmts, owner);
    if end != NO_BLOCK {
        let span = Span::new(body.span.hi.saturating_sub(1), body.span.hi);
        b.push(end, Op::Exit { span });
        let exit = b.exit;
        b.edge(end, exit);
    }
    let exit = b.exit;
    (
        Cfg {
            blocks: b.blocks,
            exit,
        },
        b.declared,
    )
}

/// Collects function literals inside a body, tagging `go`-spawned ones.
fn collect_lits<'a>(body: &'a Block, out: &mut Vec<(&'a Expr, ContextKind)>) {
    fn expr<'a>(e: &'a Expr, kind: ContextKind, out: &mut Vec<(&'a Expr, ContextKind)>) {
        match e {
            Expr::FuncLit { body, .. } => {
                out.push((e, kind));
                block(body, out);
            }
            Expr::Call { fun, args, .. } => {
                expr(fun, kind, out);
                for a in args {
                    expr(a, ContextKind::Closure, out);
                }
            }
            Expr::CompositeLit { elems, .. } => {
                for el in elems {
                    if let Some(k) = &el.key {
                        expr(k, ContextKind::Closure, out);
                    }
                    expr(&el.value, ContextKind::Closure, out);
                }
            }
            Expr::Make { args, .. } => {
                for a in args {
                    expr(a, ContextKind::Closure, out);
                }
            }
            Expr::Selector { expr: e, .. }
            | Expr::Paren { expr: e, .. }
            | Expr::TypeAssert { expr: e, .. }
            | Expr::Unary { expr: e, .. } => expr(e, kind, out),
            Expr::Index { expr: e, index, .. } => {
                expr(e, kind, out);
                expr(index, ContextKind::Closure, out);
            }
            Expr::SliceExpr {
                expr: e, lo, hi, ..
            } => {
                expr(e, kind, out);
                for b in [lo, hi].into_iter().flatten() {
                    expr(b, ContextKind::Closure, out);
                }
            }
            Expr::Binary { lhs, rhs, .. } => {
                expr(lhs, ContextKind::Closure, out);
                expr(rhs, ContextKind::Closure, out);
            }
            _ => {}
        }
    }
    fn stmt<'a>(s: &'a Stmt, out: &mut Vec<(&'a Expr, ContextKind)>) {
        match s {
            Stmt::Decl(d) => {
                for v in &d.values {
                    expr(v, ContextKind::Closure, out);
                }
            }
            Stmt::ShortVar { values, .. } => {
                for v in values {
                    expr(v, ContextKind::Closure, out);
                }
            }
            Stmt::Assign { lhs, rhs, .. } => {
                for e in lhs.iter().chain(rhs) {
                    expr(e, ContextKind::Closure, out);
                }
            }
            Stmt::IncDec { expr: e, .. } => expr(e, ContextKind::Closure, out),
            Stmt::Expr(e) => expr(e, ContextKind::Closure, out),
            Stmt::Send { chan, value, .. } => {
                expr(chan, ContextKind::Closure, out);
                expr(value, ContextKind::Closure, out);
            }
            Stmt::Go { call, .. } => {
                if let Expr::Call { fun, args, .. } = call {
                    if let Expr::FuncLit { body, .. } = fun.as_ref() {
                        out.push((fun, ContextKind::Goroutine));
                        block(body, out);
                    } else {
                        expr(fun, ContextKind::Closure, out);
                    }
                    for a in args {
                        expr(a, ContextKind::Closure, out);
                    }
                } else {
                    expr(call, ContextKind::Closure, out);
                }
            }
            Stmt::Defer { call, .. } => {
                // A deferred closure's lock calls are modelled by the
                // parent context (as deferred ops); giving its body a
                // context of its own would double-report them, so only
                // literals nested *inside* it are collected.
                if let Expr::Call { fun, args, .. } = call {
                    if let Expr::FuncLit { body, .. } = fun.as_ref() {
                        block(body, out);
                    } else {
                        expr(fun, ContextKind::Closure, out);
                    }
                    for a in args {
                        expr(a, ContextKind::Closure, out);
                    }
                } else {
                    expr(call, ContextKind::Closure, out);
                }
            }
            Stmt::Return { values, .. } => {
                for v in values {
                    expr(v, ContextKind::Closure, out);
                }
            }
            Stmt::If(ifs) => {
                if let Some(init) = &ifs.init {
                    stmt(init, out);
                }
                expr(&ifs.cond, ContextKind::Closure, out);
                block(&ifs.then, out);
                if let Some(e) = &ifs.else_ {
                    stmt(e, out);
                }
            }
            Stmt::For(f) => {
                if let Some(init) = &f.init {
                    stmt(init, out);
                }
                if let Some(c) = &f.cond {
                    expr(c, ContextKind::Closure, out);
                }
                if let Some(p) = &f.post {
                    stmt(p, out);
                }
                block(&f.body, out);
            }
            Stmt::Range(r) => {
                expr(&r.expr, ContextKind::Closure, out);
                block(&r.body, out);
            }
            Stmt::Switch(sw) => {
                if let Some(init) = &sw.init {
                    stmt(init, out);
                }
                if let Some(tag) = &sw.tag {
                    expr(tag, ContextKind::Closure, out);
                }
                for c in &sw.cases {
                    for e in &c.exprs {
                        expr(e, ContextKind::Closure, out);
                    }
                    for s in &c.body {
                        stmt(s, out);
                    }
                }
            }
            Stmt::Select(sel) => {
                for c in &sel.cases {
                    match &c.comm {
                        CommClause::Send { chan, value } => {
                            expr(chan, ContextKind::Closure, out);
                            expr(value, ContextKind::Closure, out);
                        }
                        CommClause::Recv { lhs, chan, .. } => {
                            for t in lhs {
                                expr(t, ContextKind::Closure, out);
                            }
                            expr(chan, ContextKind::Closure, out);
                        }
                        CommClause::Default => {}
                    }
                    for s in &c.body {
                        stmt(s, out);
                    }
                }
            }
            Stmt::Block(b) => block(b, out),
            Stmt::Labeled { stmt: s, .. } => stmt(s, out),
            _ => {}
        }
    }
    fn block<'a>(b: &'a Block, out: &mut Vec<(&'a Expr, ContextKind)>) {
        for s in &b.stmts {
            stmt(s, out);
        }
    }
    // Only direct children: nested literals are found when their parent
    // literal's body is scanned (`block` recurses already). To keep one
    // flat list, `block` pushes every literal it meets — the top-level
    // call below therefore covers all depths.
    block(body, out);
}

/// The receiver qualification for a method: `(binding name, type name)`.
fn receiver_of(f: &FuncDecl) -> Option<(String, String)> {
    let r = f.receiver.as_ref()?;
    let ty = match &r.ty {
        Type::Pointer(inner) => inner.as_named_path(),
        other => other.as_named_path(),
    }?;
    Some((r.name.clone(), ty))
}

/// Builds every analysis context of `file` (single-file program).
pub fn contexts(file: &File) -> Vec<Context> {
    contexts_with(file, &FileEnv::new(file))
}

/// Builds every analysis context of `file` against a (possibly
/// program-wide) naming environment.
pub fn contexts_with(file: &File, env: &FileEnv) -> Vec<Context> {
    let mut out = Vec::new();
    for d in &file.decls {
        let Decl::Func(f) = d else { continue };
        let Some(body) = &f.body else { continue };
        let recv = receiver_of(f);
        let extra: Vec<String> = recv.iter().map(|(n, _)| n.clone()).collect();
        let (cfg, declared) = build_cfg(env, recv.clone(), &f.sig, &extra, body, &f.name);
        out.push(Context {
            func: f.name.clone(),
            kind: ContextKind::Function,
            cfg,
            declared,
            span: body.span,
        });
        let mut lits = Vec::new();
        collect_lits(body, &mut lits);
        // `collect_lits` pushes nested literals too; dedup by span.
        let mut seen = BTreeSet::new();
        for (lit, kind) in lits {
            let Expr::FuncLit {
                sig,
                body: lb,
                span,
                ..
            } = lit
            else {
                continue;
            };
            if !seen.insert((span.lo, span.hi)) {
                continue;
            }
            let (cfg, declared) = build_cfg(env, recv.clone(), sig, &[], lb, &f.name);
            out.push(Context {
                func: f.name.clone(),
                kind,
                cfg,
                declared,
                span: *span,
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(src: &str) -> File {
        golite::parse_file(src).expect("test source parses")
    }

    #[test]
    fn builds_contexts_for_funcs_and_goroutines() {
        let file = parse(
            "package p\n\nimport \"sync\"\n\nfunc F() {\n\tvar mu sync.Mutex\n\tgo func() {\n\t\tmu.Lock()\n\t\tmu.Unlock()\n\t}()\n\tf2 := func() {}\n\tf2()\n}\n",
        );
        let ctxs = contexts(&file);
        assert_eq!(ctxs.len(), 3);
        assert_eq!(ctxs[0].kind, ContextKind::Function);
        assert!(ctxs
            .iter()
            .any(|c| c.kind == ContextKind::Goroutine && c.func == "F"));
        assert!(ctxs.iter().any(|c| c.kind == ContextKind::Closure));
    }

    #[test]
    fn lock_ops_are_qualified_per_function() {
        let file = parse(
            "package p\n\nimport \"sync\"\n\nvar g sync.Mutex\n\nfunc F() {\n\tvar mu sync.Mutex\n\tmu.Lock()\n\tg.Lock()\n\tg.Unlock()\n\tmu.Unlock()\n}\n",
        );
        let ctxs = contexts(&file);
        let locks: Vec<String> = ctxs[0]
            .cfg
            .blocks
            .iter()
            .flat_map(|b| &b.ops)
            .filter_map(|op| match op {
                Op::Sync { lock, .. } => Some(lock.clone()),
                _ => None,
            })
            .collect();
        assert_eq!(locks, vec!["F::mu", "g", "g", "F::mu"]);
    }

    #[test]
    fn receiver_locks_unify_across_methods() {
        let file = parse(
            "package p\n\nimport \"sync\"\n\ntype S struct {\n\tmu sync.Mutex\n\tn int\n}\n\nfunc (s *S) A() {\n\ts.mu.Lock()\n\ts.mu.Unlock()\n}\n\nfunc (t *S) B() {\n\tt.mu.Lock()\n\tt.mu.Unlock()\n}\n",
        );
        let ctxs = contexts(&file);
        let lock_of = |i: usize| {
            ctxs[i]
                .cfg
                .blocks
                .iter()
                .flat_map(|b| &b.ops)
                .find_map(|op| match op {
                    Op::Sync { lock, .. } => Some(lock.clone()),
                    _ => None,
                })
                .unwrap()
        };
        assert_eq!(lock_of(0), "S.mu");
        assert_eq!(lock_of(0), lock_of(1));
    }

    #[test]
    fn branch_and_loop_edges_exist() {
        let file = parse(
            "package p\n\nfunc F(xs []int) int {\n\tn := 0\n\tfor _, x := range xs {\n\t\tif x > 0 {\n\t\t\tn = n + x\n\t\t\tcontinue\n\t\t}\n\t\tbreak\n\t}\n\treturn n\n}\n",
        );
        let ctxs = contexts(&file);
        let cfg = &ctxs[0].cfg;
        assert!(cfg.blocks.len() >= 5);
        let exits = cfg
            .blocks
            .iter()
            .flat_map(|b| &b.ops)
            .filter(|op| matches!(op, Op::Exit { .. }))
            .count();
        assert_eq!(exits, 1);
        // Every non-exit block eventually reaches the exit block.
        assert!(cfg.blocks[cfg.exit].succs.is_empty());
    }
}
