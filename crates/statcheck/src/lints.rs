//! AST-level lints that need no dataflow: call-arity mismatches,
//! `sync.Map` misuse, `WaitGroup` double-adds, mixed atomic/plain
//! access, and mutex-by-value copies.
//!
//! Error-tier rules here (`arity-mismatch`, `syncmap-range`,
//! `waitgroup-double-add`) flag shapes that fail on every execution;
//! the rest are heuristics and stay on the warning tier.

use crate::cfg::path_of;
use golite::ast::{Decl, Expr, File, FuncSig, Stmt, Type, UnOp, VarDecl};
use golite::{Diagnostic, Span};
use std::collections::{BTreeMap, BTreeSet};

/// Runs every AST lint over `file`.
pub fn ast_lints(file: &File) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    arity_lint(file, &mut diags);
    syncmap_lint(file, &mut diags);
    waitgroup_lint(file, &mut diags);
    mixed_atomic_lint(file, &mut diags);
    copylocks_lint(file, &mut diags);
    diags.sort_by_key(|d| (d.span.lo, d.span.hi, d.rule.clone()));
    diags.dedup();
    diags
}

// ---- generic walker ---------------------------------------------------------

/// Walks every statement list, statement and expression (pre-order),
/// descending into function-literal bodies.
fn walk_lists(
    list: &[Stmt],
    on_list: &mut dyn FnMut(&[Stmt]),
    on_stmt: &mut dyn FnMut(&Stmt),
    on_expr: &mut dyn FnMut(&Expr),
) {
    on_list(list);
    for s in list {
        walk_stmt(s, on_list, on_stmt, on_expr);
    }
}

fn walk_stmt(
    s: &Stmt,
    on_list: &mut dyn FnMut(&[Stmt]),
    on_stmt: &mut dyn FnMut(&Stmt),
    on_expr: &mut dyn FnMut(&Expr),
) {
    on_stmt(s);
    let mut expr = |e: &Expr| walk_expr(e, on_list, on_stmt, on_expr);
    match s {
        Stmt::Decl(d) => d.values.iter().for_each(&mut expr),
        Stmt::ShortVar { values, .. } => values.iter().for_each(&mut expr),
        Stmt::Assign { lhs, rhs, .. } => lhs.iter().chain(rhs).for_each(&mut expr),
        Stmt::IncDec { expr: e, .. } => expr(e),
        Stmt::Expr(e) => expr(e),
        Stmt::Send { chan, value, .. } => {
            expr(chan);
            expr(value);
        }
        Stmt::Go { call, .. } | Stmt::Defer { call, .. } => expr(call),
        Stmt::Return { values, .. } => values.iter().for_each(&mut expr),
        Stmt::If(ifs) => {
            if let Some(init) = &ifs.init {
                walk_stmt(init, on_list, on_stmt, on_expr);
            }
            walk_expr(&ifs.cond, on_list, on_stmt, on_expr);
            walk_lists(&ifs.then.stmts, on_list, on_stmt, on_expr);
            if let Some(e) = &ifs.else_ {
                walk_stmt(e, on_list, on_stmt, on_expr);
            }
        }
        Stmt::For(f) => {
            if let Some(init) = &f.init {
                walk_stmt(init, on_list, on_stmt, on_expr);
            }
            if let Some(c) = &f.cond {
                walk_expr(c, on_list, on_stmt, on_expr);
            }
            if let Some(p) = &f.post {
                walk_stmt(p, on_list, on_stmt, on_expr);
            }
            walk_lists(&f.body.stmts, on_list, on_stmt, on_expr);
        }
        Stmt::Range(r) => {
            walk_expr(&r.expr, on_list, on_stmt, on_expr);
            walk_lists(&r.body.stmts, on_list, on_stmt, on_expr);
        }
        Stmt::Switch(sw) => {
            if let Some(init) = &sw.init {
                walk_stmt(init, on_list, on_stmt, on_expr);
            }
            if let Some(tag) = &sw.tag {
                walk_expr(tag, on_list, on_stmt, on_expr);
            }
            for c in &sw.cases {
                for e in &c.exprs {
                    walk_expr(e, on_list, on_stmt, on_expr);
                }
                walk_lists(&c.body, on_list, on_stmt, on_expr);
            }
        }
        Stmt::Select(sel) => {
            for c in &sel.cases {
                walk_lists(&c.body, on_list, on_stmt, on_expr);
            }
        }
        Stmt::Block(b) => walk_lists(&b.stmts, on_list, on_stmt, on_expr),
        Stmt::Labeled { stmt, .. } => walk_stmt(stmt, on_list, on_stmt, on_expr),
        _ => {}
    }
}

fn walk_expr(
    e: &Expr,
    on_list: &mut dyn FnMut(&[Stmt]),
    on_stmt: &mut dyn FnMut(&Stmt),
    on_expr: &mut dyn FnMut(&Expr),
) {
    on_expr(e);
    let mut expr = |e: &Expr| walk_expr(e, on_list, on_stmt, on_expr);
    match e {
        Expr::FuncLit { body, .. } => walk_lists(&body.stmts, on_list, on_stmt, on_expr),
        Expr::Call { fun, args, .. } => {
            expr(fun);
            args.iter().for_each(&mut expr);
        }
        Expr::CompositeLit { elems, .. } => {
            for el in elems {
                if let Some(k) = &el.key {
                    expr(k);
                }
                expr(&el.value);
            }
        }
        Expr::Make { args, .. } => args.iter().for_each(&mut expr),
        Expr::Selector { expr: inner, .. }
        | Expr::Paren { expr: inner, .. }
        | Expr::TypeAssert { expr: inner, .. }
        | Expr::Unary { expr: inner, .. } => expr(inner),
        Expr::Index {
            expr: inner, index, ..
        } => {
            expr(inner);
            expr(index);
        }
        Expr::SliceExpr {
            expr: inner,
            lo,
            hi,
            ..
        } => {
            expr(inner);
            for b in [lo, hi].into_iter().flatten() {
                expr(b);
            }
        }
        Expr::Binary { lhs, rhs, .. } => {
            expr(lhs);
            expr(rhs);
        }
        _ => {}
    }
}

fn walk_file(
    file: &File,
    on_list: &mut dyn FnMut(&[Stmt]),
    on_stmt: &mut dyn FnMut(&Stmt),
    on_expr: &mut dyn FnMut(&Expr),
) {
    for d in &file.decls {
        match d {
            Decl::Func(f) => {
                if let Some(body) = &f.body {
                    walk_lists(&body.stmts, on_list, on_stmt, on_expr);
                }
            }
            Decl::Var(v) | Decl::Const(v) => {
                for e in &v.values {
                    walk_expr(e, on_list, on_stmt, on_expr);
                }
            }
            Decl::Type(_) => {}
        }
    }
}

// ---- arity-mismatch (error) -------------------------------------------------

fn flat_param_count(sig: &FuncSig) -> usize {
    sig.param_names().count()
}

fn arity_lint(file: &File, diags: &mut Vec<Diagnostic>) {
    walk_file(file, &mut |_| {}, &mut |_| {}, &mut |e| {
        let Expr::Call {
            fun, args, span, ..
        } = e
        else {
            return;
        };
        let Expr::FuncLit { sig, .. } = fun.as_ref() else {
            return;
        };
        if sig.params.iter().any(|p| p.variadic) {
            return;
        }
        let want = flat_param_count(sig);
        if args.len() != want {
            diags.push(Diagnostic::error(
                "arity-mismatch",
                format!(
                    "function literal takes {want} argument{} but is called with {}",
                    if want == 1 { "" } else { "s" },
                    args.len()
                ),
                *span,
            ));
        }
    });
}

// ---- syncmap-range (error) --------------------------------------------------

fn is_sync_map(ty: &Type) -> bool {
    ty.is_named("sync.Map")
}

fn syncmap_lint(file: &File, diags: &mut Vec<Diagnostic>) {
    let mut globals: BTreeSet<String> = BTreeSet::new();
    let mut fields: BTreeSet<String> = BTreeSet::new();
    for d in &file.decls {
        match d {
            Decl::Var(v) if v.ty.as_ref().is_some_and(is_sync_map) => {
                globals.extend(v.names.iter().cloned());
            }
            Decl::Type(t) => {
                if let Type::Struct(fs) = &t.ty {
                    for f in fs {
                        if is_sync_map(&f.ty) {
                            fields.extend(f.names.iter().cloned());
                        }
                    }
                }
            }
            _ => {}
        }
    }
    // Locals declare before use, so one ordered walk sees declarations
    // ahead of the ranges that use them.
    let mut locals: BTreeSet<String> = BTreeSet::new();
    walk_file(
        file,
        &mut |_| {},
        &mut |s| {
            let range = match s {
                Stmt::Decl(VarDecl {
                    names, ty: Some(t), ..
                }) if is_sync_map(t) => {
                    locals.extend(names.iter().cloned());
                    return;
                }
                Stmt::ShortVar { names, values, .. } => {
                    if values.len() == 1 {
                        if let Expr::CompositeLit { ty: Some(t), .. } = &values[0] {
                            if is_sync_map(t) {
                                locals.extend(names.iter().cloned());
                            }
                        }
                    }
                    return;
                }
                Stmt::Range(r) => r,
                _ => return,
            };
            let hit = match &range.expr {
                Expr::Ident { name, .. } => globals.contains(name) || locals.contains(name),
                Expr::Selector { name, .. } => fields.contains(name),
                _ => false,
            };
            if hit {
                let name = path_of(&range.expr).unwrap_or_else(|| "sync.Map".to_owned());
                diags.push(Diagnostic::error(
                    "syncmap-range",
                    format!("cannot range over `{name}` of type sync.Map; use its Range method"),
                    range.expr.span(),
                ));
            }
        },
        &mut |_| {},
    );
}

// ---- waitgroup-double-add (error) -------------------------------------------

/// Matches `p.Add(...)` and returns the receiver path.
fn add_receiver(e: &Expr) -> Option<(String, Span)> {
    let Expr::Call { fun, span, .. } = e else {
        return None;
    };
    let Expr::Selector { expr, name, .. } = fun.as_ref() else {
        return None;
    };
    if name != "Add" {
        return None;
    }
    Some((path_of(expr)?, *span))
}

fn find_add_in(stmts: &[Stmt], path: &str) -> Option<Span> {
    let mut found = None;
    walk_lists(stmts, &mut |_| {}, &mut |_| {}, &mut |e| {
        if found.is_none() {
            if let Some((p, span)) = add_receiver(e) {
                if p == path {
                    found = Some(span);
                }
            }
        }
    });
    found
}

fn waitgroup_lint(file: &File, diags: &mut Vec<Diagnostic>) {
    walk_file(
        file,
        &mut |list| {
            for w in list.windows(2) {
                let Stmt::Expr(e) = &w[0] else { continue };
                let Some((path, _)) = add_receiver(e) else {
                    continue;
                };
                let Stmt::Go { call, .. } = &w[1] else {
                    continue;
                };
                let Expr::Call { fun, .. } = call else {
                    continue;
                };
                let Expr::FuncLit { body, .. } = fun.as_ref() else {
                    continue;
                };
                if let Some(span) = find_add_in(&body.stmts, &path) {
                    diags.push(Diagnostic::error(
                        "waitgroup-double-add",
                        format!(
                            "`{path}.Add` is called both before `go` and inside the goroutine: the counter never drains and Wait deadlocks"
                        ),
                        span,
                    ));
                }
            }
        },
        &mut |_| {},
        &mut |_| {},
    );
}

// ---- mixed-atomic (warning) -------------------------------------------------

/// Matches `atomic.Op(&x, ...)` and returns the path of `x`.
fn atomic_target(e: &Expr) -> Option<String> {
    let Expr::Call { fun, args, .. } = e else {
        return None;
    };
    let Expr::Selector { expr, .. } = fun.as_ref() else {
        return None;
    };
    if expr.as_ident() != Some("atomic") {
        return None;
    }
    let first = args.first()?;
    let Expr::Unary {
        op: UnOp::Addr,
        expr: inner,
        ..
    } = first
    else {
        return None;
    };
    path_of(inner)
}

fn mixed_atomic_lint(file: &File, diags: &mut Vec<Diagnostic>) {
    let mut atomic_paths: BTreeSet<String> = BTreeSet::new();
    walk_file(file, &mut |_| {}, &mut |_| {}, &mut |e| {
        if let Some(p) = atomic_target(e) {
            atomic_paths.insert(p);
        }
    });
    if atomic_paths.is_empty() {
        return;
    }
    // Plain accesses count only inside goroutine bodies: a plain read
    // after `wg.Wait()` in the parent is ordered and idiomatic.
    let mut plain: BTreeMap<String, Span> = BTreeMap::new();
    fn scan_expr(
        e: &Expr,
        in_go: bool,
        atomics: &BTreeSet<String>,
        plain: &mut BTreeMap<String, Span>,
    ) {
        if atomic_target(e).is_some() {
            return; // the atomic call itself is fine
        }
        if in_go {
            if let Some(p) = path_of(e) {
                if atomics.contains(&p) {
                    plain.entry(p).or_insert_with(|| e.span());
                    return;
                }
            }
        }
        match e {
            Expr::FuncLit { body, .. } => scan_stmts(&body.stmts, in_go, atomics, plain),
            Expr::Call { fun, args, .. } => {
                scan_expr(fun, in_go, atomics, plain);
                for a in args {
                    scan_expr(a, in_go, atomics, plain);
                }
            }
            Expr::CompositeLit { elems, .. } => {
                for el in elems {
                    scan_expr(&el.value, in_go, atomics, plain);
                }
            }
            Expr::Make { args, .. } => {
                for a in args {
                    scan_expr(a, in_go, atomics, plain);
                }
            }
            Expr::Selector { expr, .. }
            | Expr::Paren { expr, .. }
            | Expr::TypeAssert { expr, .. }
            | Expr::Unary { expr, .. } => scan_expr(expr, in_go, atomics, plain),
            Expr::Index { expr, index, .. } => {
                scan_expr(expr, in_go, atomics, plain);
                scan_expr(index, in_go, atomics, plain);
            }
            Expr::SliceExpr { expr, lo, hi, .. } => {
                scan_expr(expr, in_go, atomics, plain);
                for b in [lo, hi].into_iter().flatten() {
                    scan_expr(b, in_go, atomics, plain);
                }
            }
            Expr::Binary { lhs, rhs, .. } => {
                scan_expr(lhs, in_go, atomics, plain);
                scan_expr(rhs, in_go, atomics, plain);
            }
            _ => {}
        }
    }
    fn scan_stmts(
        list: &[Stmt],
        in_go: bool,
        atomics: &BTreeSet<String>,
        plain: &mut BTreeMap<String, Span>,
    ) {
        for s in list {
            match s {
                Stmt::Go {
                    call: Expr::Call { fun, args, .. },
                    ..
                } => {
                    if let Expr::FuncLit { body, .. } = fun.as_ref() {
                        scan_stmts(&body.stmts, true, atomics, plain);
                    }
                    for a in args {
                        scan_expr(a, in_go, atomics, plain);
                    }
                }
                Stmt::Decl(d) => {
                    for v in &d.values {
                        scan_expr(v, in_go, atomics, plain);
                    }
                }
                Stmt::ShortVar { values, .. } => {
                    for v in values {
                        scan_expr(v, in_go, atomics, plain);
                    }
                }
                Stmt::Assign { lhs, rhs, .. } => {
                    for e in lhs.iter().chain(rhs) {
                        scan_expr(e, in_go, atomics, plain);
                    }
                }
                Stmt::IncDec { expr, .. } => scan_expr(expr, in_go, atomics, plain),
                Stmt::Expr(e) => scan_expr(e, in_go, atomics, plain),
                Stmt::Send { chan, value, .. } => {
                    scan_expr(chan, in_go, atomics, plain);
                    scan_expr(value, in_go, atomics, plain);
                }
                Stmt::Defer { call, .. } => scan_expr(call, in_go, atomics, plain),
                Stmt::Return { values, .. } => {
                    for v in values {
                        scan_expr(v, in_go, atomics, plain);
                    }
                }
                Stmt::If(ifs) => {
                    if let Some(init) = &ifs.init {
                        scan_stmts(std::slice::from_ref(init), in_go, atomics, plain);
                    }
                    scan_expr(&ifs.cond, in_go, atomics, plain);
                    scan_stmts(&ifs.then.stmts, in_go, atomics, plain);
                    if let Some(e) = &ifs.else_ {
                        scan_stmts(std::slice::from_ref(e), in_go, atomics, plain);
                    }
                }
                Stmt::For(f) => {
                    if let Some(init) = &f.init {
                        scan_stmts(std::slice::from_ref(init), in_go, atomics, plain);
                    }
                    if let Some(c) = &f.cond {
                        scan_expr(c, in_go, atomics, plain);
                    }
                    if let Some(p) = &f.post {
                        scan_stmts(std::slice::from_ref(p), in_go, atomics, plain);
                    }
                    scan_stmts(&f.body.stmts, in_go, atomics, plain);
                }
                Stmt::Range(r) => {
                    scan_expr(&r.expr, in_go, atomics, plain);
                    scan_stmts(&r.body.stmts, in_go, atomics, plain);
                }
                Stmt::Switch(sw) => {
                    if let Some(tag) = &sw.tag {
                        scan_expr(tag, in_go, atomics, plain);
                    }
                    for c in &sw.cases {
                        scan_stmts(&c.body, in_go, atomics, plain);
                    }
                }
                Stmt::Select(sel) => {
                    for c in &sel.cases {
                        scan_stmts(&c.body, in_go, atomics, plain);
                    }
                }
                Stmt::Block(b) => scan_stmts(&b.stmts, in_go, atomics, plain),
                Stmt::Labeled { stmt, .. } => {
                    scan_stmts(std::slice::from_ref(stmt), in_go, atomics, plain)
                }
                _ => {}
            }
        }
    }
    for d in &file.decls {
        if let Decl::Func(f) = d {
            if let Some(body) = &f.body {
                scan_stmts(&body.stmts, false, &atomic_paths, &mut plain);
            }
        }
    }
    for (path, span) in plain {
        diags.push(Diagnostic::warning(
            "mixed-atomic",
            format!(
                "`{path}` is updated atomically elsewhere but accessed with a plain operation here"
            ),
            span,
        ));
    }
}

// ---- copylocks (warning) ----------------------------------------------------

/// Type names whose values embed a lock (directly or transitively).
fn lock_bearing_types(file: &File) -> BTreeSet<String> {
    let mut bearing: BTreeSet<String> = BTreeSet::new();
    loop {
        let mut changed = false;
        for d in &file.decls {
            let Decl::Type(t) = d else { continue };
            if bearing.contains(&t.name) {
                continue;
            }
            let Type::Struct(fields) = &t.ty else {
                continue;
            };
            let has_lock = fields.iter().any(|f| {
                if let Type::Named { .. } = &f.ty {
                    let p = f.ty.as_named_path().unwrap_or_default();
                    p == "sync.Mutex" || p == "sync.RWMutex" || bearing.contains(&p)
                } else {
                    false
                }
            });
            if has_lock {
                bearing.insert(t.name.clone());
                changed = true;
            }
        }
        if !changed {
            return bearing;
        }
    }
}

/// `(type name, is pointer)` of a value-producing expression, given a
/// shallow local type environment.
fn value_type(e: &Expr, env: &BTreeMap<String, (String, bool)>) -> Option<(String, bool)> {
    match e {
        Expr::Ident { name, .. } => env.get(name).cloned(),
        Expr::CompositeLit { ty: Some(t), .. } => Some((t.as_named_path()?, false)),
        Expr::Unary {
            op: UnOp::Addr,
            expr,
            ..
        } => {
            let (t, _) = value_type(expr, env)?;
            Some((t, true))
        }
        Expr::Unary {
            op: UnOp::Deref,
            expr,
            ..
        } => {
            let (t, ptr) = value_type(expr, env)?;
            ptr.then_some((t, false))
        }
        Expr::New { ty, .. } => Some((ty.as_named_path()?, true)),
        Expr::Paren { expr, .. } => value_type(expr, env),
        _ => None,
    }
}

fn named_of(ty: &Type) -> Option<(String, bool)> {
    match ty {
        Type::Pointer(inner) => Some((inner.as_named_path()?, true)),
        other => Some((other.as_named_path()?, false)),
    }
}

fn check_copy(
    env: &mut BTreeMap<String, (String, bool)>,
    bearing: &BTreeSet<String>,
    diags: &mut Vec<Diagnostic>,
    names: &[String],
    values: &[Expr],
    span: Span,
) {
    for (i, name) in names.iter().enumerate() {
        if name == "_" {
            continue; // `_ = x` discards the value; nothing retains the copy
        }
        let Some(v) = values.get(i) else { continue };
        let Some((t, ptr)) = value_type(v, env) else {
            continue;
        };
        let copies = !ptr && bearing.contains(&t) && !matches!(v, Expr::CompositeLit { .. });
        if copies {
            diags.push(Diagnostic::warning(
                "copylocks",
                format!("assignment copies `{t}`, which contains a mutex"),
                span,
            ));
        }
        env.insert(name.clone(), (t, ptr));
    }
}

fn copylocks_lint(file: &File, diags: &mut Vec<Diagnostic>) {
    let bearing = lock_bearing_types(file);
    if bearing.is_empty() {
        return;
    }
    for d in &file.decls {
        let Decl::Func(f) = d else { continue };
        let mut env: BTreeMap<String, (String, bool)> = BTreeMap::new();
        if let Some(r) = &f.receiver {
            if let Some((t, ptr)) = named_of(&r.ty) {
                if !ptr && bearing.contains(&t) {
                    diags.push(Diagnostic::warning(
                        "copylocks",
                        format!(
                            "method receiver `{}` passes `{t}` by value, copying its mutex",
                            r.name
                        ),
                        r.span,
                    ));
                }
                env.insert(r.name.clone(), (t, ptr));
            }
        }
        for p in &f.sig.params {
            if let Some((t, ptr)) = named_of(&p.ty) {
                if !ptr && bearing.contains(&t) {
                    for name in &p.names {
                        diags.push(Diagnostic::warning(
                            "copylocks",
                            format!("parameter `{name}` passes `{t}` by value, copying its mutex"),
                            p.span,
                        ));
                    }
                }
                for name in &p.names {
                    env.insert(name.clone(), (t.clone(), ptr));
                }
            }
        }
        let Some(body) = &f.body else { continue };
        // Ordered walk: declarations precede uses in Go, so a single
        // pass keeps the env accurate enough for this shallow check.
        walk_lists(
            &body.stmts,
            &mut |_| {},
            &mut |s| match s {
                Stmt::ShortVar {
                    names,
                    values,
                    span,
                    ..
                } => check_copy(&mut env, &bearing, diags, names, values, *span),
                Stmt::Decl(d) => {
                    if let Some(t) = &d.ty {
                        if let Some((t, ptr)) = named_of(t) {
                            for name in &d.names {
                                env.insert(name.clone(), (t.clone(), ptr));
                            }
                        }
                    } else {
                        check_copy(&mut env, &bearing, diags, &d.names, &d.values, d.span);
                    }
                }
                Stmt::Assign { lhs, rhs, span, .. } => {
                    let names: Vec<String> = lhs
                        .iter()
                        .map(|e| e.as_ident().unwrap_or("").to_owned())
                        .collect();
                    if names.iter().all(|n| !n.is_empty()) {
                        check_copy(&mut env, &bearing, diags, &names, rhs, *span);
                    }
                }
                _ => {}
            },
            &mut |_| {},
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lint(src: &str) -> Vec<Diagnostic> {
        ast_lints(&golite::parse_file(src).expect("test source parses"))
    }

    fn rules(src: &str) -> Vec<String> {
        lint(src).into_iter().map(|d| d.rule).collect()
    }

    #[test]
    fn arity_mismatch_is_flagged() {
        let r = rules("package p\n\nfunc F() {\n\tgo func(x int) {\n\t\t_ = x\n\t}()\n}\n");
        assert_eq!(r, vec!["arity-mismatch"]);
    }

    #[test]
    fn matching_arity_is_clean() {
        let r = rules("package p\n\nfunc F() {\n\tgo func(x int) {\n\t\t_ = x\n\t}(1)\n}\n");
        assert!(r.is_empty());
    }

    #[test]
    fn range_over_sync_map_is_flagged() {
        let r = rules(
            "package p\n\nimport \"sync\"\n\nvar m sync.Map\n\nfunc F() {\n\tfor range m {\n\t}\n}\n",
        );
        assert_eq!(r, vec!["syncmap-range"]);
    }

    #[test]
    fn range_over_plain_map_is_clean() {
        let r = rules(
            "package p\n\nfunc F(m map[string]int) {\n\tfor k := range m {\n\t\t_ = k\n\t}\n}\n",
        );
        assert!(r.is_empty());
    }

    #[test]
    fn waitgroup_double_add_is_flagged() {
        let r = rules(
            "package p\n\nimport \"sync\"\n\nfunc F() {\n\tvar wg sync.WaitGroup\n\twg.Add(1)\n\tgo func() {\n\t\twg.Add(1)\n\t\tdefer wg.Done()\n\t}()\n\twg.Wait()\n}\n",
        );
        assert_eq!(r, vec!["waitgroup-double-add"]);
    }

    #[test]
    fn single_add_is_clean() {
        let r = rules(
            "package p\n\nimport \"sync\"\n\nfunc F() {\n\tvar wg sync.WaitGroup\n\twg.Add(1)\n\tgo func() {\n\t\tdefer wg.Done()\n\t}()\n\twg.Wait()\n}\n",
        );
        assert!(r.is_empty());
    }

    #[test]
    fn mixed_atomic_in_goroutine_warns() {
        let d = lint(
            "package p\n\nimport (\n\t\"sync\"\n\t\"sync/atomic\"\n)\n\nfunc F() {\n\tvar n int64\n\tvar wg sync.WaitGroup\n\twg.Add(2)\n\tgo func() {\n\t\tdefer wg.Done()\n\t\tatomic.AddInt64(&n, 1)\n\t}()\n\tgo func() {\n\t\tdefer wg.Done()\n\t\tn = n + 1\n\t}()\n\twg.Wait()\n}\n",
        );
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].rule, "mixed-atomic");
        assert_eq!(d[0].severity, golite::Severity::Warning);
    }

    #[test]
    fn plain_read_after_wait_is_clean() {
        let r = rules(
            "package p\n\nimport (\n\t\"sync\"\n\t\"sync/atomic\"\n)\n\nfunc F() int64 {\n\tvar n int64\n\tvar wg sync.WaitGroup\n\twg.Add(1)\n\tgo func() {\n\t\tdefer wg.Done()\n\t\tatomic.AddInt64(&n, 1)\n\t}()\n\twg.Wait()\n\treturn n\n}\n",
        );
        assert!(r.is_empty());
    }

    #[test]
    fn mutex_by_value_param_warns() {
        let r = rules(
            "package p\n\nimport \"sync\"\n\ntype Counter struct {\n\tmu sync.Mutex\n\tn int\n}\n\nfunc use(c Counter) int {\n\treturn c.n\n}\n",
        );
        assert_eq!(r, vec!["copylocks"]);
    }

    #[test]
    fn mutex_by_pointer_is_clean() {
        let r = rules(
            "package p\n\nimport \"sync\"\n\ntype Counter struct {\n\tmu sync.Mutex\n\tn int\n}\n\nfunc use(c *Counter) int {\n\treturn c.n\n}\n",
        );
        assert!(r.is_empty());
    }

    #[test]
    fn value_copy_of_lock_bearing_struct_warns() {
        let r = rules(
            "package p\n\nimport \"sync\"\n\ntype Counter struct {\n\tmu sync.Mutex\n\tn int\n}\n\nfunc F(c *Counter) {\n\tlocal := *c\n\t_ = local\n}\n",
        );
        assert_eq!(r, vec!["copylocks"]);
    }
}
