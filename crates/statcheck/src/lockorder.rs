//! Cross-function lock-order graph and deadlock-cycle detection.
//!
//! Each context contributes direct edges (`a` held while `b` is
//! acquired) and call facts (`f()` called while `a` is held). Calls are
//! resolved through a may-acquire summary: the set of locks a function
//! can take directly or through its callees, computed as a fixpoint so
//! call chains and recursion are handled. A cycle in the resulting
//! graph means two executions can acquire the same locks in opposite
//! orders — reported as a warning (the schedule may never interleave
//! that way, so this stays on the heuristic tier).

use crate::cfg::ContextKind;
use crate::lockset::{display_path, ContextResult};
use golite::{Diagnostic, Span};
use std::collections::{BTreeMap, BTreeSet};

/// A lock-order edge attributed to the file it was observed in.
#[derive(Debug, Clone)]
struct Edge {
    held: String,
    acquired: String,
    file_idx: usize,
    span: Span,
}

/// May-acquire summaries: function name → locks reachable from it.
fn acquire_summaries(
    results: &[(usize, String, ContextKind, &ContextResult)],
) -> BTreeMap<String, BTreeSet<String>> {
    let mut direct: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
    let mut callees: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
    for (_, func, kind, res) in results {
        // Only the Function context runs when the function is *called*;
        // its closures run on their own schedule.
        if *kind != ContextKind::Function {
            continue;
        }
        direct
            .entry(func.clone())
            .or_default()
            .extend(res.acquires.iter().cloned());
        callees
            .entry(func.clone())
            .or_default()
            .extend(res.calls.iter().map(|c| c.callee.clone()));
    }
    let mut summary = direct;
    loop {
        let mut changed = false;
        for (func, calls) in &callees {
            let mut add = BTreeSet::new();
            for callee in calls {
                if let Some(locks) = summary.get(callee) {
                    add.extend(locks.iter().cloned());
                }
            }
            let entry = summary.entry(func.clone()).or_default();
            for l in add {
                changed |= entry.insert(l);
            }
        }
        if !changed {
            return summary;
        }
    }
}

/// Builds the global lock-order graph and reports one warning per
/// inconsistently-ordered lock pair. Returns `(file_idx, diagnostic)`
/// pairs so the caller can attach each to the right file.
pub fn lock_order_diagnostics(
    results: &[(usize, String, ContextKind, &ContextResult)],
) -> Vec<(usize, Diagnostic)> {
    let summaries = acquire_summaries(results);
    let mut edges: Vec<Edge> = Vec::new();
    for (file_idx, _, _, res) in results {
        for e in &res.lock_edges {
            edges.push(Edge {
                held: e.held.clone(),
                acquired: e.acquired.clone(),
                file_idx: *file_idx,
                span: e.span,
            });
        }
        for call in &res.calls {
            let Some(acquired) = summaries.get(&call.callee) else {
                continue;
            };
            for l2 in acquired {
                for l1 in &call.held {
                    if l1 != l2 {
                        edges.push(Edge {
                            held: l1.clone(),
                            acquired: l2.clone(),
                            file_idx: *file_idx,
                            span: call.span,
                        });
                    }
                }
            }
        }
    }
    // Reachability closure over the lock graph.
    let mut succs: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
    for e in &edges {
        succs.entry(&e.held).or_default().insert(&e.acquired);
    }
    let reaches = |from: &str, to: &str| -> bool {
        let mut seen: BTreeSet<&str> = BTreeSet::new();
        let mut stack = vec![from];
        while let Some(n) = stack.pop() {
            if n == to {
                return true;
            }
            if let Some(next) = succs.get(n) {
                for s in next {
                    if seen.insert(s) {
                        stack.push(s);
                    }
                }
            }
        }
        false
    };
    let mut out = Vec::new();
    let mut reported: BTreeSet<(String, String)> = BTreeSet::new();
    for e in &edges {
        if !reaches(&e.acquired, &e.held) {
            continue;
        }
        let key = if e.held <= e.acquired {
            (e.held.clone(), e.acquired.clone())
        } else {
            (e.acquired.clone(), e.held.clone())
        };
        if !reported.insert(key) {
            continue;
        }
        out.push((
            e.file_idx,
            Diagnostic::warning(
                "lock-order-cycle",
                format!(
                    "locks `{}` and `{}` are acquired in inconsistent order (potential deadlock)",
                    display_path(&e.held),
                    display_path(&e.acquired)
                ),
                e.span,
            ),
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cfg::contexts;
    use crate::lockset::solve;

    fn diag_rules(src: &str) -> Vec<String> {
        let file = golite::parse_file(src).expect("test source parses");
        let ctxs = contexts(&file);
        let solved: Vec<_> = ctxs.iter().map(solve).collect();
        let tagged: Vec<(usize, String, ContextKind, &ContextResult)> = ctxs
            .iter()
            .zip(&solved)
            .map(|(c, r)| (0usize, c.func.clone(), c.kind, r))
            .collect();
        lock_order_diagnostics(&tagged)
            .into_iter()
            .map(|(_, d)| d.rule)
            .collect()
    }

    #[test]
    fn inverted_order_across_functions_is_flagged() {
        let rules = diag_rules(
            "package p\n\nimport \"sync\"\n\nvar a sync.Mutex\nvar b sync.Mutex\n\nfunc F() {\n\ta.Lock()\n\tb.Lock()\n\tb.Unlock()\n\ta.Unlock()\n}\n\nfunc G() {\n\tb.Lock()\n\ta.Lock()\n\ta.Unlock()\n\tb.Unlock()\n}\n",
        );
        assert_eq!(rules, vec!["lock-order-cycle"]);
    }

    #[test]
    fn consistent_order_is_clean() {
        let rules = diag_rules(
            "package p\n\nimport \"sync\"\n\nvar a sync.Mutex\nvar b sync.Mutex\n\nfunc F() {\n\ta.Lock()\n\tb.Lock()\n\tb.Unlock()\n\ta.Unlock()\n}\n\nfunc G() {\n\ta.Lock()\n\tb.Lock()\n\tb.Unlock()\n\ta.Unlock()\n}\n",
        );
        assert!(rules.is_empty());
    }

    #[test]
    fn call_mediated_inversion_is_flagged() {
        let rules = diag_rules(
            "package p\n\nimport \"sync\"\n\nvar a sync.Mutex\nvar b sync.Mutex\n\nfunc takeA() {\n\ta.Lock()\n\ta.Unlock()\n}\n\nfunc F() {\n\tb.Lock()\n\ttakeA()\n\tb.Unlock()\n}\n\nfunc G() {\n\ta.Lock()\n\tb.Lock()\n\tb.Unlock()\n\ta.Unlock()\n}\n",
        );
        assert_eq!(rules, vec!["lock-order-cycle"]);
    }
}
