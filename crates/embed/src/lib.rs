//! `embed` — a deterministic sentence-embedding substitute for
//! `all-MiniLM-L6-v2` (the paper's embedding model, Table 2).
//!
//! The reproduction needs the *relative* behaviour of the embedding: code
//! with the same concurrency structure must land close in vector space,
//! and business-identifier noise must push raw (non-skeletonized) sources
//! apart. Feature hashing over token unigrams and bigrams reproduces
//! exactly that mechanism: shared structural tokens contribute shared
//! coordinates, unique identifiers contribute noise coordinates. Vectors
//! are 384-dimensional (matching MiniLM) and L2-normalised, so cosine
//! similarity is a dot product.
//!
//! # Example
//!
//! ```
//! use embed::{embed, cosine};
//!
//! let a = embed("go func() { racyVar1 = 1 }()");
//! let b = embed("go func() { racyVar1 = 2 }()");
//! let c = embed("for i := range orders { total += price(i) }");
//! assert!(cosine(&a, &b) > cosine(&a, &c));
//! ```

#![warn(missing_docs)]

/// Embedding dimensionality (matches all-MiniLM-L6-v2).
pub const DIM: usize = 384;

/// Tokens that carry concurrency structure get boosted weight, mirroring
/// how a code-tuned sentence transformer attends to salient tokens.
const BOOSTED: &[&str] = &[
    "go",
    "chan",
    "select",
    "sync",
    "atomic",
    "Lock",
    "Unlock",
    "RLock",
    "RUnlock",
    "Add",
    "Done",
    "Wait",
    "Range",
    "Load",
    "Store",
    "Delete",
    "racyVar1",
    "racyVar2",
    "racyVar3",
    "Mutex",
    "RWMutex",
    "WaitGroup",
    "Map",
    "Parallel",
    "Run",
    "defer",
    "<-",
];

const BOOST: f32 = 3.0;

/// Splits source text into identifier / punctuation tokens.
pub fn tokenize(text: &str) -> Vec<&str> {
    let mut out = Vec::new();
    let bytes = text.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        let b = bytes[i];
        if b.is_ascii_alphanumeric() || b == b'_' {
            let start = i;
            while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                i += 1;
            }
            out.push(&text[start..i]);
        } else if b == b'<' && i + 1 < bytes.len() && bytes[i + 1] == b'-' {
            out.push("<-");
            i += 2;
        } else if b.is_ascii_whitespace() {
            i += 1;
        } else if b < 0x80 {
            out.push(&text[i..i + 1]);
            i += 1;
        } else {
            // Skip multi-byte characters (rare in code).
            let n = text[i..].chars().next().map(char::len_utf8).unwrap_or(1);
            i += n;
        }
    }
    out
}

fn fnv(bytes: &[u8], seed: u64) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64 ^ seed;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn add_feature(v: &mut [f32; DIM], token: &str, weight: f32) {
    let h = fnv(token.as_bytes(), 0x5eed);
    let idx = (h % DIM as u64) as usize;
    // Signed hashing halves collision bias.
    let sign = if (h >> 63) == 0 { 1.0 } else { -1.0 };
    v[idx] += sign * weight;
    // A second projection improves separability at this dimensionality.
    let h2 = fnv(token.as_bytes(), 0xfeed);
    let idx2 = (h2 % DIM as u64) as usize;
    let sign2 = if (h2 >> 63) == 0 { 1.0 } else { -1.0 };
    v[idx2] += sign2 * weight * 0.5;
}

/// Embeds `text` into a 384-dimensional L2-normalised vector.
pub fn embed(text: &str) -> Vec<f32> {
    let mut v = [0f32; DIM];
    let tokens = tokenize(text);
    for (i, tok) in tokens.iter().enumerate() {
        let w = if BOOSTED.contains(tok) { BOOST } else { 1.0 };
        add_feature(&mut v, tok, w);
        if i + 1 < tokens.len() {
            let bigram = format!("{}\u{1}{}", tok, tokens[i + 1]);
            let wb = if BOOSTED.contains(tok) || BOOSTED.contains(&tokens[i + 1]) {
                BOOST * 0.7
            } else {
                0.7
            };
            add_feature(&mut v, &bigram, wb);
        }
    }
    let norm = v.iter().map(|x| x * x).sum::<f32>().sqrt();
    if norm > 0.0 {
        for x in v.iter_mut() {
            *x /= norm;
        }
    }
    v.to_vec()
}

/// Cosine similarity of two embeddings.
///
/// # Panics
///
/// Panics if the vectors have different lengths.
pub fn cosine(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len(), "embedding dimensionality mismatch");
    let dot: f32 = a.iter().zip(b).map(|(x, y)| x * y).sum();
    let na: f32 = a.iter().map(|x| x * x).sum::<f32>().sqrt();
    let nb: f32 = b.iter().map(|x| x * x).sum::<f32>().sqrt();
    if na == 0.0 || nb == 0.0 {
        0.0
    } else {
        dot / (na * nb)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn embedding_is_deterministic_and_normalised() {
        let a = embed("go func() { x = 1 }()");
        let b = embed("go func() { x = 1 }()");
        assert_eq!(a, b);
        assert_eq!(a.len(), DIM);
        let norm: f32 = a.iter().map(|x| x * x).sum::<f32>().sqrt();
        assert!((norm - 1.0).abs() < 1e-5);
    }

    #[test]
    fn identical_text_has_cosine_one() {
        let a = embed("var wg sync.WaitGroup");
        assert!((cosine(&a, &a) - 1.0).abs() < 1e-5);
    }

    #[test]
    fn structure_dominates_identifier_noise_in_skeletons() {
        let s1 = embed("func func1() {\n\tracyVar1 := 0\n\tgo func() {\n\t\tracyVar1 = func2()\n\t}()\n\tracyVar1 = func3()\n}");
        let s2 = embed("func func1() {\n\tracyVar1 := 0\n\tgo func() {\n\t\tracyVar1 = func2()\n\t}()\n\tracyVar1 = func3()\n}");
        let other = embed("func makeReport(rows []Row) int {\n\tsum := 0\n\tfor _, r := range rows {\n\t\tsum += r.Total\n\t}\n\treturn sum\n}");
        assert!(cosine(&s1, &s2) > 0.99);
        assert!(cosine(&s1, &other) < 0.9);
    }

    #[test]
    fn raw_sources_with_heavy_noise_diverge() {
        // Same concurrency pattern buried under different business text:
        // raw embeddings drift apart, which is precisely why Dr.Fix
        // skeletonizes before retrieval (Fig. 3).
        let raw1 = embed(
            "func SyncCustomerLedger() { ledgerTotal := fetchLedgerSnapshot(); go func() { ledgerTotal = recomputeOutstandingInvoices(ledgerTotal) }(); ledgerTotal = reconcileBankFeed() }",
        );
        let raw2 = embed(
            "func RefreshFleetTelemetry() { fleetHealth := pollVehicleGateway(); go func() { fleetHealth = aggregateSensorWindows(fleetHealth) }(); fleetHealth = applyDriverOverrides() }",
        );
        let raw_sim = cosine(&raw1, &raw2);
        assert!(
            raw_sim < 0.9,
            "raw noise should keep sources apart, got {raw_sim}"
        );
    }

    #[test]
    fn tokenizer_handles_arrows_and_punct() {
        let toks = tokenize("ch <- v; x := <-done");
        assert!(toks.contains(&"<-"));
        assert!(toks.contains(&"ch"));
        assert!(toks.contains(&";"));
    }

    #[test]
    fn empty_text_embeds_to_zero_vector() {
        let v = embed("");
        assert!(v.iter().all(|&x| x == 0.0));
        assert_eq!(cosine(&v, &v), 0.0);
    }

    #[test]
    fn boosted_tokens_move_vectors_more() {
        let base = embed("x y z w");
        let with_plain = embed("x y z w q");
        let with_boost = embed("x y z w go");
        // Adding a boosted token changes the direction more than a plain
        // token does.
        assert!(cosine(&base, &with_boost) < cosine(&base, &with_plain));
    }
}
