//! Property tests: the embedder is total, deterministic, and normalised.

use embed::{cosine, embed, tokenize, DIM};
use proptest::prelude::*;

proptest! {
    #[test]
    fn embed_is_total_and_deterministic(s in ".{0,300}") {
        let a = embed(&s);
        let b = embed(&s);
        prop_assert_eq!(a.clone(), b);
        prop_assert_eq!(a.len(), DIM);
    }

    #[test]
    fn embed_is_unit_norm_or_zero(s in ".{0,300}") {
        let v = embed(&s);
        let norm: f32 = v.iter().map(|x| x * x).sum::<f32>().sqrt();
        prop_assert!(norm < 1e-6 || (norm - 1.0).abs() < 1e-4, "norm {norm}");
    }

    #[test]
    fn cosine_is_bounded_and_symmetric(a in ".{1,200}", b in ".{1,200}") {
        let va = embed(&a);
        let vb = embed(&b);
        let ab = cosine(&va, &vb);
        let ba = cosine(&vb, &va);
        prop_assert!((-1.001..=1.001).contains(&(ab as f64)));
        prop_assert!((ab - ba).abs() < 1e-6);
    }

    #[test]
    fn self_similarity_is_one(s in "[a-z ]{1,200}") {
        let v = embed(&s);
        if v.iter().any(|&x| x != 0.0) {
            prop_assert!((cosine(&v, &v) - 1.0).abs() < 1e-4);
        }
    }

    #[test]
    fn tokenizer_never_panics(s in ".{0,300}") {
        let toks = tokenize(&s);
        for t in toks {
            prop_assert!(!t.is_empty());
        }
    }
}
