//! Skeleton explorer: watch the §4.3 abstraction at work — feed it
//! programs, compare raw-vs-skeleton embeddings, and query a small
//! example database both ways.
//!
//! ```bash
//! cargo run --example skeleton_explorer
//! ```

use corpus::{generate_example_db, CorpusConfig};
use drfix::{ExampleDb, RagMode};
use skeleton::{skeletonize, SkeletonOptions};

const LISTING3: &str = r#"package store

func ProcessStoreData(req int) error {
	err := validate(req)
	if err != nil {
		return err
	}
	var bazaarStores int
	var uuidDefectRateMap int
	group.Go(func() error {
		docs := necessaryDocs()
		if extraDocsEnabled() {
			docs = docs + additionalDocs()
		}
		bazaarStores, err = loadStores(req, docs)
		return err
	})
	group.Go(func() error {
		uuidDefectRateMap, err = loadOAData(req)
		return err
	})
	err = group.Wait()
	use(bazaarStores, uuidDefectRateMap)
	return err
}
"#;

fn main() {
    // 1. Skeletonize the paper's Listing 3 (race on `err`, lines 16/21).
    let sk = skeletonize(LISTING3, &[16, 21], &SkeletonOptions::default()).expect("skeletonizes");
    println!("--- Listing 3 → concurrency skeleton (paper's Listing 4) ---");
    println!("{}", sk.text);
    println!("racy vars discovered: {:?}", sk.racy_vars);

    // 2. Same structure, different business noise → identical skeleton.
    let disguised = LISTING3
        .replace("bazaarStores", "fleetTelemetry")
        .replace("uuidDefectRateMap", "driverScoreIndex")
        .replace("loadStores", "pollVehicles")
        .replace("loadOAData", "sampleRoutes")
        .replace("necessaryDocs", "primaryFeed")
        .replace("additionalDocs", "backupFeed");
    let sk2 = skeletonize(&disguised, &[16, 21], &SkeletonOptions::default()).unwrap();
    println!(
        "same-structure different-identifiers skeleton identical: {}",
        sk.text == sk2.text
    );
    let raw_sim = embed::cosine(&embed::embed(LISTING3), &embed::embed(&disguised));
    let skel_sim = embed::cosine(&embed::embed(&sk.text), &embed::embed(&sk2.text));
    println!("raw-source cosine:  {raw_sim:.3}");
    println!("skeleton cosine:    {skel_sim:.3}  (retrieval sees through the noise)");

    // 3. Query a curated database both ways and compare what comes back.
    let pairs = generate_example_db(&CorpusConfig {
        eval_cases: 0,
        db_pairs: 120,
        seed: 99,
    });
    let db = ExampleDb::build(&pairs);
    println!(
        "\n--- retrieval comparison over a {}-pair database ---",
        db.len()
    );
    for mode in [RagMode::Raw, RagMode::Skeleton] {
        if let Some((ex, cat, score)) = db.retrieve(mode, LISTING3, "err", &[16, 21]) {
            let first_line = ex
                .buggy
                .lines()
                .find(|l| l.contains("func ") && !l.contains("racy"))
                .unwrap_or("");
            println!(
                "{mode:?} retrieval → category {:?} (score {score:.3}): {first_line}",
                cat
            );
        }
    }
}
