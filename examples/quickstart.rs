//! Quickstart: detect a data race, let Dr.Fix repair it, and diff the
//! patch — the end-to-end flow of Fig. 1 in one file.
//!
//! ```bash
//! cargo run --example quickstart
//! ```

use drfix::{DrFix, PipelineConfig};
use govm::{compile_sources, CompileOptions, TestConfig};

const RACY: &str = r#"package app

import (
	"sync"
	"testing"
)

func RefreshQuota() error {
	err := loadQuota()
	if err != nil {
		return err
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if err = syncRemote(); err != nil {
			note()
		}
	}()
	if err = flushLocal(); err != nil {
		note()
	}
	wg.Wait()
	return err
}

func loadQuota() error  { return nil }
func syncRemote() error { return nil }
func flushLocal() error { return nil }
func note()             {}

func TestRefreshQuota(t *testing.T) {
	if err := RefreshQuota(); err != nil {
		t.Errorf("unexpected error: %v", err)
	}
}
"#;

fn main() {
    let files = vec![("quota.go".to_string(), RACY.to_string())];

    // 1. Detect: run the test under seeded schedules with the FastTrack
    //    detector (the `go test -race -count=N` substitute).
    let prog = compile_sources(&files, &CompileOptions::default()).expect("compiles");
    let detection = govm::run_test_many(
        &prog,
        "TestRefreshQuota",
        &TestConfig {
            runs: 32,
            stop_on_race: true,
            ..TestConfig::default()
        },
    );
    let report = detection.races.first().expect("the race reproduces");
    println!("--- race report -------------------------------------------");
    print!("{}", report.render());
    println!("stable bug hash: {}", report.bug_hash());

    // 2. Fix: the full pipeline — race info extraction, skeleton RAG,
    //    synthetic LLM, validation loop.
    let drfix = DrFix::new(PipelineConfig::default(), None);
    let outcome = drfix.fix_case(&files, "TestRefreshQuota");
    assert!(outcome.fixed, "Dr.Fix should fix the Listing-1 pattern");
    println!("\n--- fix ----------------------------------------------------");
    println!(
        "strategy: {:?}   location: {:?}   scope: {:?}   ~{:.0} min",
        outcome.strategy.expect("strategy recorded"),
        outcome.location.expect("location recorded"),
        outcome.scope.expect("scope recorded"),
        outcome.duration_minutes,
    );

    // 3. Show the patched file.
    let patch = outcome.patch.expect("patched codebase");
    println!("\n--- patched quota.go --------------------------------------");
    println!("{}", patch[0].1);

    // 4. Confirm the patch is clean under fresh schedules.
    let verdict = drfix::validate_patch(&patch, "TestRefreshQuota", &report.bug_hash(), 32, 99);
    println!("re-validation: {verdict:?}");
    assert!(verdict.is_ok());
}
