//! Fleet triage: the industrial workflow of §2.4 in miniature — a batch
//! of incoming race reports triaged through the pipeline, with category
//! breakdowns, developer-review outcomes, and time-saved accounting.
//!
//! The batch is sharded across the fleet executor (`DRFIX_THREADS`
//! workers; outcomes are bit-identical to a serial run), the way the
//! production service consumed its race-ticket queue.
//!
//! ```bash
//! cargo run --example fleet_triage            # 30 races
//! DRFIX_CASES=100 DRFIX_THREADS=4 cargo run --example fleet_triage
//! ```

use corpus::{generate_eval_corpus, generate_example_db, CorpusConfig};
use drfix::fleet::{self, FleetConfig};
use drfix::{review_fix, ExampleDb, PipelineConfig, RagMode};
use std::collections::BTreeMap;

fn main() {
    let n: usize = std::env::var("DRFIX_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(30);
    let cfg = CorpusConfig {
        eval_cases: n,
        db_pairs: 96,
        seed: 0xF1EE7,
    };
    let fleet_cfg = FleetConfig::from_env();
    let cases = generate_eval_corpus(&cfg);
    let db = ExampleDb::build_with(&generate_example_db(&cfg), &fleet_cfg);

    let pipeline_cfg = PipelineConfig {
        rag: RagMode::Skeleton,
        validation_runs: 10,
        ..PipelineConfig::default()
    };

    let mut by_category: BTreeMap<&str, (usize, usize)> = BTreeMap::new();
    let mut accepted = 0usize;
    let mut fixed = 0usize;
    let mut drfix_days = 0.0;
    let mut manual_days = 0.0;

    println!(
        "triaging {n} incoming race tickets across {} worker thread{}…\n",
        fleet_cfg.threads,
        if fleet_cfg.threads == 1 { "" } else { "s" }
    );
    let run = fleet::run_cases(&pipeline_cfg, &fleet_cfg, &cases, Some(&db));
    for (case, outcome) in cases.iter().zip(run.results) {
        let slot = by_category.entry(case.category.display()).or_default();
        slot.1 += 1;
        if outcome.fixed {
            slot.0 += 1;
            fixed += 1;
            let review = review_fix(11, &case.id, &outcome);
            if review.accepted() {
                accepted += 1;
                drfix_days += drfix::review::resolution_days(11, &case.id, true);
            } else {
                manual_days += drfix::review::resolution_days(11, &case.id, false);
            }
            println!(
                "  {}  FIXED via {:?} at {:?} ({:?}) — review: {review:?}",
                case.id,
                outcome.strategy.expect("strategy"),
                outcome.location.expect("location"),
                case.category,
            );
        } else {
            manual_days += drfix::review::resolution_days(11, &case.id, false);
            println!(
                "  {}  escalated to the concurrency experts ({})",
                case.id,
                case.hard
                    .map(|h| h.display())
                    .unwrap_or("no validated patch")
            );
        }
    }

    println!("\n=== triage summary =========================================");
    println!("fleet: {}", run.stats.summary());
    println!(
        "fixed {fixed}/{} ({:.0}%), accepted in review {accepted}/{fixed}",
        cases.len(),
        100.0 * fixed as f64 / cases.len() as f64
    );
    println!("\nper category (fixed/total):");
    for (cat, (f, t)) in &by_category {
        println!("  {cat:45} {f:>3}/{t}");
    }
    let auto = if accepted > 0 {
        drfix_days / accepted as f64
    } else {
        0.0
    };
    let manual_n = cases.len() - accepted;
    let man = if manual_n > 0 {
        manual_days / manual_n as f64
    } else {
        0.0
    };
    println!(
        "\navg resolution: {auto:.1} days via Dr.Fix vs {man:.1} days manual (paper: 3 vs 11)"
    );
}
