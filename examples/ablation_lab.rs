//! Ablation lab: run any single pipeline configuration over a corpus
//! slice and inspect per-case outcomes — a command-line version of the
//! paper's RQ2 experiments.
//!
//! Cases are sharded across the fleet executor (`DRFIX_THREADS`
//! workers; outcomes are bit-identical to a serial run).
//!
//! ```bash
//! cargo run --release --example ablation_lab -- no-rag
//! cargo run --release --example ablation_lab -- skeleton
//! cargo run --release --example ablation_lab -- raw
//! DRFIX_CASES=80 DRFIX_THREADS=4 cargo run --release --example ablation_lab -- skeleton
//! ```

use corpus::{generate_eval_corpus, generate_example_db, CorpusConfig};
use drfix::fleet::{self, FleetConfig};
use drfix::{ExampleDb, PipelineConfig, RagMode};
use std::collections::BTreeMap;

fn main() {
    let mode = std::env::args().nth(1).unwrap_or_else(|| "skeleton".into());
    let rag = match mode.as_str() {
        "no-rag" => RagMode::None,
        "raw" => RagMode::Raw,
        "skeleton" => RagMode::Skeleton,
        other => {
            eprintln!("unknown mode `{other}` (use no-rag | raw | skeleton)");
            std::process::exit(2);
        }
    };
    let n: usize = std::env::var("DRFIX_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(40);

    let cfg = CorpusConfig {
        eval_cases: n,
        db_pairs: 150,
        seed: 0xD0F1,
    };
    let fleet_cfg = FleetConfig::from_env();
    let cases = generate_eval_corpus(&cfg);
    let db = ExampleDb::build_with(&generate_example_db(&cfg), &fleet_cfg);
    let pipeline_cfg = PipelineConfig {
        rag,
        validation_runs: 10,
        ..PipelineConfig::default()
    };

    let run = fleet::run_cases(&pipeline_cfg, &fleet_cfg, &cases, Some(&db));
    let mut fixed = 0usize;
    let mut by_strategy: BTreeMap<String, usize> = BTreeMap::new();
    let mut calls = 0u32;
    for o in &run.results {
        calls += o.llm_calls;
        if o.fixed {
            fixed += 1;
            *by_strategy
                .entry(format!("{:?}", o.strategy.expect("strategy")))
                .or_default() += 1;
        }
    }
    println!(
        "mode={mode}  fixed {fixed}/{n} ({:.1}%)",
        100.0 * fixed as f64 / n as f64
    );
    println!(
        "total LLM calls: {calls} (avg {:.1}/case)",
        calls as f64 / n as f64
    );
    println!("fleet: {}", run.stats.summary());
    println!("\nwinning strategies:");
    for (s, k) in by_strategy {
        println!("  {s:28} {k}");
    }
}
