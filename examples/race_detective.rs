//! Race detective: use the substrate directly — compile a Go-subset
//! program, explore schedules, and inspect ThreadSanitizer-style reports,
//! happens-before behaviour, and skeleton extraction.
//!
//! ```bash
//! cargo run --example race_detective
//! ```

use govm::{compile_sources, CompileOptions, SchedulePolicy, Vm, VmOptions};
use skeleton::{skeletonize, SkeletonOptions};

const PROGRAM: &str = r#"package demo

import "sync"

func Tally(orders []int) int {
	total := 0
	var wg sync.WaitGroup
	for _, order := range orders {
		wg.Add(1)
		go func() {
			defer wg.Done()
			total = total + order
		}()
	}
	wg.Wait()
	return total
}

func Main() {
	Tally([]int{5, 10, 15})
}
"#;

fn main() {
    let files = vec![("tally.go".to_string(), PROGRAM.to_string())];
    let prog = compile_sources(&files, &CompileOptions::default()).expect("compiles");

    // Sweep schedules: each seed is one interleaving. Two distinct races
    // hide here (the shared `total` and the captured loop variable).
    println!("schedule sweep:");
    let mut seen = std::collections::BTreeMap::new();
    for seed in 0..24 {
        let mut vm = Vm::new(
            &prog,
            VmOptions {
                seed,
                ..VmOptions::default()
            },
        );
        let result = vm.run("Main", vec![]);
        for race in &result.races {
            let entry = seen
                .entry(race.var_name.clone())
                .or_insert_with(|| (0usize, race.clone()));
            entry.0 += 1;
        }
    }
    for (var, (count, _)) in &seen {
        println!("  race on `{var}` observed under {count}/24 seeds");
    }
    assert!(
        seen.contains_key("total"),
        "the shared-total race must appear"
    );

    // A full report, TSan style.
    let (_, report) = &seen["total"];
    println!("\nfull report for `total`:");
    print!("{}", report.render());
    println!("bug hash: {}", report.bug_hash());

    // The concurrency skeleton Dr.Fix would embed for retrieval.
    let racy_lines: Vec<u32> = report
        .accesses
        .iter()
        .filter_map(|a| a.stack.first().map(|f| f.line))
        .collect();
    let sk = skeletonize(
        PROGRAM,
        &racy_lines,
        &SkeletonOptions {
            extra_racy_vars: vec!["total".into()],
            no_slicing: false,
        },
    )
    .expect("skeletonizes");
    println!("\nconcurrency skeleton (what the vector DB indexes):");
    println!("{}", sk.text);

    // Embedding locality: the skeleton of a same-shape race lands close.
    let sibling = sk.text.replace("func1", "func9");
    let sim = embed::cosine(&embed::embed(&sk.text), &embed::embed(&sibling));
    println!("cosine to a same-shape sibling skeleton: {sim:.3}");

    // Schedule policies: the same sweep under each exploration strategy.
    // Every run also carries a schedule signature — a hash of its
    // context-switch sequence — so campaigns can spot replayed
    // interleavings (see `govm::sched`).
    println!("\npolicy comparison (24 seeds each):");
    for policy in [
        SchedulePolicy::Random,
        SchedulePolicy::pct(),
        SchedulePolicy::Sweep,
    ] {
        let mut races = 0usize;
        let mut sigs = std::collections::HashSet::new();
        for seed in 0..24 {
            let mut vm = Vm::new(
                &prog,
                VmOptions {
                    seed,
                    policy: policy.clone(),
                    ..VmOptions::default()
                },
            );
            let result = vm.run("Main", vec![]);
            races += result.races.len();
            sigs.insert(result.schedule_sig);
        }
        println!(
            "  {:<16} {races:>2} race observations, {} distinct interleavings",
            policy.label(),
            sigs.len()
        );
    }
}
