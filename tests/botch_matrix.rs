//! Botch matrix: every `synthllm` repair strategy × botch variant,
//! applied to racy corpus cases and cross-checked against `statcheck`.
//!
//! Two properties are pinned:
//!
//! 1. **Soundness of the error tier** — whenever `statcheck` reports an
//!    error-tier diagnostic on a patched candidate, dynamic validation
//!    (static gate off) must also reject it, with one *documented* blind
//!    spot: a `BlanketMutex` patch that nests a `Lock` inside a
//!    goroutine already holding the same lock self-deadlocks that
//!    goroutine on every execution, yet the test can still pass when the
//!    parent escapes through a `select`/timeout arm. Dynamic validation
//!    cannot see the leaked deadlocked goroutine — this is exactly the
//!    §4.4 patch-introduced-deadlock failure mode the static gate
//!    exists to catch, so the matrix records it instead of failing.
//! 2. **Coverage** — each botch class that produces *statically
//!    guaranteed broken* synchronization (an over-added `WaitGroup`
//!    counter, a `range` over `sync.Map`, a closure called with the
//!    wrong arity) is flagged at error tier on at least one case.
//!    Botch classes whose breakage is a data race — not unbalanced or
//!    deadlocking synchronization — are documented as dynamic-only
//!    below and must stay *silent* at error tier.

use corpus::{generate_eval_corpus, generate_tournament_corpus, CorpusConfig};
use drfix::fleet::{derive_case_seed, derive_validation_seed, FleetConfig};
use drfix::{
    validate_patch_report, CandidateOutcome, CandidateSelection, PipelineConfig, RagMode,
    TournamentConfig, ValidationOptions,
};
use govm::{compile_sources, run_test_many, CompileOptions, TestConfig};
use std::collections::{BTreeMap, BTreeSet};
use synthllm::diagnose::diagnose;
use synthllm::strategy::apply;
use synthllm::{ModelTier, StrategyKind};

/// Botch classes `statcheck` must catch at error tier, with the rule
/// that catches them.
const STATIC_CAUGHT: &[(StrategyKind, u8, &str)] = &[
    // Botch 1 duplicates `wg.Add` into the goroutine instead of moving
    // it: the counter over-increments and `Wait` hangs forever.
    (StrategyKind::MoveWgAddBeforeGo, 1, "waitgroup-double-add"),
    // Botch 1 forgets the `range` rewrite: ranging over a `sync.Map`
    // value fails on every execution.
    (StrategyKind::MapToSyncMap, 1, "syncmap-range"),
    // Botch 1 passes the parameter but forgets the call argument: the
    // closure is invoked with the wrong arity.
    (StrategyKind::PassParamToGoroutine, 1, "arity-mismatch"),
];

/// Botch classes whose failure mode is a *data race* (or, for
/// `PerCaseInstance`, a compile error) rather than statically broken
/// synchronization. The analyzer must not error-flag these — dynamic
/// validation owns them. `MutexGuard`/`RwMutexGuard`/`AtomicCounter`
/// botches produce *balanced but insufficient* locking, which surfaces
/// as warning-tier findings only.
const DYNAMIC_ONLY: &[(StrategyKind, u8)] = &[
    (StrategyKind::RedeclareInGoroutine, 1),
    (StrategyKind::PrivatizeLoopVar, 1),
    (StrategyKind::LocalCopyInGoroutine, 1),
    (StrategyKind::StructCopy, 1),
    (StrategyKind::ChannelResult, 1),
    (StrategyKind::FreshSourcePerUse, 1),
    // b1 skips the parent-side guard entirely: goroutine bodies get one
    // balanced Lock/defer Unlock and the race simply survives.
    (StrategyKind::BlanketMutex, 1),
    (StrategyKind::MutexGuard, 1),
    (StrategyKind::RwMutexGuard, 2),
    (StrategyKind::AtomicCounter, 1),
];

#[test]
fn botch_matrix_static_flags_are_sound_and_cover_broken_sync() {
    let pool: Vec<_> = generate_eval_corpus(&CorpusConfig {
        eval_cases: 150,
        db_pairs: 0,
        seed: 0xB07C,
    })
    .into_iter()
    .filter(|c| c.fixable && c.hard.is_none())
    .collect();
    assert!(
        pool.len() >= 8,
        "corpus too small for the matrix: {} cases",
        pool.len()
    );
    let cases = pool;

    // applied[(kind, botch)] -> candidates produced; flagged collects
    // the error-tier rules seen per combo.
    let mut applied: BTreeMap<(String, u8), usize> = BTreeMap::new();
    let mut flagged: BTreeMap<(String, u8), BTreeSet<String>> = BTreeMap::new();
    let mut dynamic_checked = 0usize;
    let mut blind_spot_hits = 0usize;

    for case in &cases {
        let prog = compile_sources(&case.files, &CompileOptions::default())
            .unwrap_or_else(|d| panic!("case {} does not compile: {d}", case.id));
        let detect = run_test_many(
            &prog,
            &case.test,
            &TestConfig {
                runs: 8,
                seed: 7,
                stop_on_race: true,
                ..TestConfig::default()
            },
        );
        let Some(race) = detect.races.first() else {
            continue; // schedule never exposed it; the matrix has slack
        };
        let racy_var = race.var_name.clone();
        let bug_hash = race.bug_hash();

        for (idx, (_, src)) in case.files.iter().enumerate() {
            let Ok(file) = golite::parse_file(src) else {
                continue;
            };
            let mut targets: Vec<_> = diagnose(&file, &racy_var)
                .into_iter()
                .map(|d| d.target)
                .collect();
            targets.dedup();
            targets.truncate(3);
            // Global-target fallbacks: some strategies (e.g. fresh source
            // per use) want a package-level variable, which the structural
            // diagnoses don't always surface — race reports on PRNG
            // internals name the `state` cell, not the global holding it.
            let mut globals = vec![racy_var.clone()];
            for d in &file.decls {
                if let golite::ast::Decl::Var(v) = d {
                    if !v.values.is_empty() {
                        globals.extend(v.names.iter().cloned());
                    }
                }
            }
            for var in globals {
                let global = synthllm::diagnose::Target::Global { var };
                if !targets.contains(&global) {
                    targets.push(global);
                }
            }

            for &kind in StrategyKind::all() {
                for target in &targets {
                    for botch in 0u8..=2 {
                        let Ok(patched_file) = apply(kind, &file, target, botch) else {
                            continue;
                        };
                        let mut patched = case.files.clone();
                        patched[idx].1 = golite::print_file(&patched_file);
                        let key = (format!("{kind:?}"), botch);
                        *applied.entry(key.clone()).or_default() += 1;

                        let reports = match statcheck::check_sources(&patched) {
                            Ok(r) => r,
                            Err((f, d)) => panic!(
                                "printed patch for {:?} b{botch} no longer parses: {f}: {d}",
                                kind
                            ),
                        };
                        let Some((_, diag)) = statcheck::first_error(&reports) else {
                            continue;
                        };
                        flagged.entry(key).or_default().insert(diag.rule.clone());

                        // Soundness: an error-flagged candidate must
                        // also fail dynamically with the gate off.
                        let report = validate_patch_report(
                            &patched,
                            &case.test,
                            &bug_hash,
                            &TestConfig {
                                runs: 6,
                                seed: 11,
                                stop_on_race: false,
                                ..TestConfig::default()
                            },
                            &ValidationOptions { static_gate: false },
                        );
                        dynamic_checked += 1;
                        if report.verdict.is_ok() {
                            // The one tolerated shape: a blanket-mutex
                            // self-deadlock the test outlives via a
                            // timeout arm (see module docs).
                            let blind_spot =
                                kind == StrategyKind::BlanketMutex && diag.rule == "double-lock";
                            assert!(
                                blind_spot,
                                "UNSOUND: statcheck error-flagged ({}) a candidate that \
                                 validates dynamically: case {} {kind:?} b{botch}\n{}",
                                diag.rule, case.id, patched[idx].1
                            );
                            blind_spot_hits += 1;
                        }
                    }
                }
            }
        }
    }

    // Coverage: every statically-caught botch class fired its rule.
    for (kind, botch, rule) in STATIC_CAUGHT {
        let key = (format!("{kind:?}"), *botch);
        let n = applied.get(&key).copied().unwrap_or(0);
        assert!(n > 0, "{kind:?} b{botch} never applied in the matrix");
        let rules = flagged.get(&key).cloned().unwrap_or_default();
        assert!(
            rules.contains(*rule),
            "{kind:?} b{botch} applied {n} times but `{rule}` never fired (saw {rules:?})"
        );
    }

    // Dynamic-only classes stay silent at error tier.
    for (kind, botch) in DYNAMIC_ONLY {
        let key = (format!("{kind:?}"), *botch);
        let n = applied.get(&key).copied().unwrap_or(0);
        assert!(n > 0, "{kind:?} b{botch} never applied in the matrix");
        let rules = flagged.get(&key).cloned().unwrap_or_default();
        assert!(
            rules.is_empty(),
            "{kind:?} b{botch} is documented dynamic-only but was error-flagged: {rules:?}"
        );
    }

    // The soundness arm actually exercised dynamic validation, and the
    // tolerated blind spot stayed a strict subset of it.
    assert!(
        dynamic_checked > 0,
        "no error-flagged candidate reached the dynamic cross-check"
    );
    assert!(
        blind_spot_hits < dynamic_checked,
        "every error-flagged candidate passed dynamic validation — the \
         cross-check lost its teeth ({blind_spot_hits}/{dynamic_checked})"
    );
}

/// Tournament-loser extension of the matrix: every candidate the
/// tournament rejects must be rejected **for the same reason** by the
/// single-path validator. With `keep_candidates` on, each candidate's
/// patched sources are retained, so the reference validator can be
/// replayed on them under the exact per-candidate campaign seed the
/// tournament used:
///
/// - `RejectedStatic { rule }` losers must come back `rejected_static`
///   with the same rule in the failure message (and the gate's zero-VM
///   claim holds — the replay burns steps only because we ask it to);
/// - `FailedValidation { reason }` losers must fail with the identical
///   message;
/// - the winner must validate clean.
#[test]
fn tournament_losers_fail_the_reference_validator_for_the_same_reason() {
    let base_seed = 0xFEED;
    let cases = generate_tournament_corpus(&CorpusConfig {
        eval_cases: 12,
        db_pairs: 0,
        seed: 0xD0F1,
    });
    let cfg = PipelineConfig {
        tier: ModelTier::Gpt4Turbo,
        rag: RagMode::None,
        validation_runs: 8,
        detect_runs: 24,
        seed: base_seed,
        tournament: Some(TournamentConfig {
            selection: CandidateSelection::All,
            keep_candidates: true,
            ..TournamentConfig::default()
        }),
        ..PipelineConfig::default()
    };
    let run = drfix::fleet::run_cases(&cfg, &FleetConfig::from_env(), &cases, None);

    let mut static_losers = 0usize;
    let mut dynamic_losers = 0usize;
    for (i, (case, out)) in cases.iter().zip(&run.results).enumerate() {
        let Some(rep) = &out.tournament else {
            continue; // not reproduced: no roster to audit
        };
        let bug_hash = out.bug_hash.as_ref().expect("reproduced case has a hash");
        let case_seed = derive_case_seed(base_seed, i as u64);
        for cand in &rep.candidates {
            let patch = cand
                .patch
                .as_ref()
                .unwrap_or_else(|| panic!("{}: keep_candidates dropped a patch", case.id));
            let vcfg = TestConfig {
                runs: cfg.validation_runs,
                seed: derive_validation_seed(case_seed, bug_hash, cand.id as u32 + 1),
                stop_on_race: false,
                ..TestConfig::default()
            };
            let replay = validate_patch_report(
                patch,
                &case.test,
                bug_hash,
                &vcfg,
                &ValidationOptions { static_gate: true },
            );
            match &cand.outcome {
                CandidateOutcome::RejectedStatic { rule } => {
                    static_losers += 1;
                    assert!(
                        replay.rejected_static,
                        "{} cand {}: tournament rejected statically (`{rule}`) but the \
                         reference validator let it through to dynamic validation",
                        case.id, cand.id
                    );
                    let msg = match &replay.verdict {
                        drfix::Verdict::Fail(m) => m.clone(),
                        v => panic!(
                            "{} cand {}: static rejection with verdict {v:?}",
                            case.id, cand.id
                        ),
                    };
                    assert!(
                        msg.contains(rule.as_str()),
                        "{} cand {}: rejection reasons diverge: tournament `{rule}`, \
                         reference `{msg}`",
                        case.id,
                        cand.id
                    );
                }
                CandidateOutcome::FailedValidation { reason } => {
                    dynamic_losers += 1;
                    match &replay.verdict {
                        drfix::Verdict::Fail(msg) => assert_eq!(
                            msg, reason,
                            "{} cand {}: failure reasons diverge",
                            case.id, cand.id
                        ),
                        drfix::Verdict::Ok => panic!(
                            "{} cand {}: tournament loser (`{reason}`) validates clean \
                             under the reference validator",
                            case.id, cand.id
                        ),
                    }
                }
                CandidateOutcome::Won | CandidateOutcome::Outranked => {
                    assert!(
                        replay.verdict.is_ok(),
                        "{} cand {}: clean candidate fails the reference validator",
                        case.id,
                        cand.id
                    );
                }
                CandidateOutcome::NotValidated => {}
            }
        }
    }
    assert!(
        static_losers > 0 && dynamic_losers > 0,
        "the roster audit needs both loser kinds to have teeth \
         ({static_losers} static, {dynamic_losers} dynamic)"
    );
}
