//! Streaming soak: a long-lived churn workload must run in bounded
//! shadow memory and bounded vector-clock width when shadow-state GC
//! is on, while the identical schedule with GC off grows without
//! bound — and the two runs must agree on every logical observable.
//!
//! The workload is [`corpus::churn_soak_case`]: generations of
//! short-lived worker goroutines over fresh per-generation buffers,
//! synchronised by one hoisted mutex + wait group so exited workers'
//! clock slots become reusable before the next generation spawns.
//!
//! Scale with `DRFIX_SOAK_GENS` (default 900 ≈ 1M VM steps; CI smoke
//! uses a smaller value). All bounds below are scale-aware except the
//! absolute byte ceiling, which only applies at full scale.

use govm::{compile_sources, run_test_many, CompileOptions, TestConfig, TestOutcome, VmOptions};

/// Workers per generation — each gets its own goroutine and clock slot.
const WORKERS: usize = 3;
/// Disjoint buffer cells doubled by each worker per generation.
const SEGMENT: usize = 8;
/// Default generation count; ≈1.06M steps at 3 workers × 8 cells.
const DEFAULT_GENS: usize = 900;
/// GC-on clock width must stay O(live goroutines), not O(spawned).
const WIDTH_BOUND: u64 = 8;
/// GC-on peak shadow footprint at full scale. The GC-off run blows
/// through this (≈19.6 MB at 900 generations).
const FULL_SCALE_BYTE_BOUND: u64 = 8 * 1024 * 1024;
/// Step count above which the full-scale byte bounds are enforced.
const FULL_SCALE_STEPS: u64 = 1_000_000;

fn soak_gens() -> usize {
    std::env::var("DRFIX_SOAK_GENS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(DEFAULT_GENS)
}

fn run_soak(shadow_gc: bool, gens: usize) -> TestOutcome {
    let case = corpus::churn_soak_case(gens, WORKERS, SEGMENT);
    let prog = compile_sources(&case.files, &CompileOptions::default())
        .unwrap_or_else(|e| panic!("soak case failed to compile: {e}"));
    let cfg = TestConfig {
        runs: 1,
        seed: 1,
        vm: VmOptions {
            shadow_gc,
            ..Default::default()
        },
        ..Default::default()
    };
    run_test_many(&prog, &case.test, &cfg)
}

#[test]
fn churn_soak_is_bounded_with_gc_and_unbounded_without() {
    let gens = soak_gens();
    assert!(gens >= 16, "need at least one collection cycle (16 exits)");
    let on = run_soak(true, gens);
    let off = run_soak(false, gens);

    // The workload itself is race-free and self-checking.
    for o in [&on, &off] {
        assert!(o.races.is_empty(), "soak workload raced: {:?}", o.races);
        assert!(
            o.test_failures.is_empty(),
            "soak failed: {:?}",
            o.test_failures
        );
        assert!(o.error.is_none(), "soak errored: {:?}", o.error);
    }

    // Transparency: GC is physical, so every logical observable of the
    // two runs is bit-identical.
    assert_eq!(on.steps, off.steps, "GC changed the executed schedule");
    assert_eq!(
        on.distinct_schedules, off.distinct_schedules,
        "GC changed schedule signatures"
    );

    // GC-on: width tracks *live* goroutines (main + workers + slack),
    // and the sweep actually ran.
    let c_on = &on.counters;
    assert!(
        c_on.peak_clock_width <= WIDTH_BOUND,
        "GC-on clock width {} exceeds bound {WIDTH_BOUND}",
        c_on.peak_clock_width
    );
    assert!(c_on.states_collected > 0, "no shadow states were collected");
    let min_reclaimed = (gens.saturating_sub(2) * WORKERS) as u64;
    assert!(
        c_on.clock_slots_reclaimed >= min_reclaimed,
        "only {} clock slots reclaimed, expected >= {min_reclaimed}",
        c_on.clock_slots_reclaimed
    );

    // GC-off: width is O(goroutines ever spawned) and shadow memory
    // strictly exceeds the collected run's peak.
    let c_off = &off.counters;
    assert!(
        c_off.peak_clock_width >= (gens * WORKERS) as u64,
        "GC-off width {} unexpectedly small",
        c_off.peak_clock_width
    );
    assert_eq!(c_off.clock_slots_reclaimed, 0);
    assert_eq!(c_off.states_collected, 0);
    assert!(
        c_off.peak_shadow_bytes > c_on.peak_shadow_bytes,
        "GC-off peak {} not above GC-on peak {}",
        c_off.peak_shadow_bytes,
        c_on.peak_shadow_bytes
    );

    // Full-scale absolute bounds (the ISSUE's ≥1M-step soak).
    if on.steps >= FULL_SCALE_STEPS {
        assert!(
            c_on.peak_shadow_bytes <= FULL_SCALE_BYTE_BOUND,
            "GC-on peak {} exceeds {FULL_SCALE_BYTE_BOUND}",
            c_on.peak_shadow_bytes
        );
        assert!(
            c_off.peak_shadow_bytes > FULL_SCALE_BYTE_BOUND,
            "GC-off peak {} did not exceed the bound — workload too small?",
            c_off.peak_shadow_bytes
        );
    }
}
