//! Golden pinning of the *lock-regime* workload across the lock-aware
//! sync-epoch cache.
//!
//! `tests/hotpath_golden.rs` pins the exposure corpus — programs whose
//! races carry no happens-before edge. This suite pins the other half:
//! the sync-heavy and large-heap programs whose every access sits under
//! mutex/RWMutex/WaitGroup traffic, which is exactly where the
//! lock-aware cache (detector owner cache + per-sync release epochs +
//! host stack interning) absorbs the slow path. Two contracts:
//!
//! 1. **Goldens** — bug hashes (none: these programs are properly
//!    synchronised), schedule signatures, step counts, campaign
//!    bookkeeping and the *logical* detector counters are pinned in
//!    `tests/goldens/lockregime_goldens.json` and must never drift.
//! 2. **Cache transparency** — running the identical campaigns with
//!    `VmOptions::sync_epoch_cache` off reproduces every observable
//!    and every logical counter bit-for-bit; only the dedicated cache
//!    counters move.
//!
//! Regenerate (only for *intentional* semantic changes) with:
//!
//! ```text
//! DRFIX_UPDATE_GOLDENS=1 cargo test --test lockregime_golden
//! ```

use bench::hotpath::sync_heavy_cases;
use govm::{
    compile_sources, run_test_many, CompileOptions, Program, SchedulePolicy, TestConfig, VmOptions,
};
use serde::{Deserialize, Serialize};

/// Campaign base seed (arbitrary, fixed forever).
const CAMPAIGN_SEED: u64 = 0x10C4;
/// Schedules per pinned campaign.
const CAMPAIGN_RUNS: u32 = 8;
/// Large-heap programs in the workload (seed shared with the perf scan).
const HEAP_CASES: usize = 3;

#[derive(Debug, PartialEq, Serialize, Deserialize)]
struct LockRegimeGolden {
    case: String,
    policy: String,
    /// Sorted stable bug hashes (empty: the programs are race-free).
    bug_hashes: Vec<String>,
    distinct_schedules: u32,
    duplicate_schedules: u32,
    steps: u64,
    stop: String,
    /// Logical detector counters — identical with the cache on or off.
    det_events: u64,
    fast_hits: u64,
    clock_joins: u64,
    clock_allocs: u64,
    clock_allocs_avoided: u64,
    stack_snapshots: u64,
}

fn golden_path() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/goldens/lockregime_goldens.json")
}

fn policies() -> Vec<SchedulePolicy> {
    vec![
        SchedulePolicy::Random,
        SchedulePolicy::pct(),
        SchedulePolicy::Sweep,
    ]
}

fn workload() -> Vec<(String, Program, String)> {
    let mut programs = Vec::new();
    for (name, src, test) in sync_heavy_cases() {
        let prog = compile_sources(
            &[(format!("{name}.go"), src.to_owned())],
            &CompileOptions::default(),
        )
        .unwrap_or_else(|e| panic!("{name}: {e}"));
        programs.push((name.to_owned(), prog, test.to_owned()));
    }
    for case in corpus::generate_large_heap_corpus(HEAP_CASES, 0xD0F1) {
        let prog = compile_sources(&case.files, &CompileOptions::default())
            .unwrap_or_else(|e| panic!("{}: {e}", case.id));
        programs.push((case.id.clone(), prog, case.test.clone()));
    }
    programs
}

fn campaign_config(policy: &SchedulePolicy, cache: bool) -> TestConfig {
    TestConfig {
        runs: CAMPAIGN_RUNS,
        seed: CAMPAIGN_SEED,
        stop_on_race: false,
        policy: policy.clone(),
        vm: VmOptions {
            sync_epoch_cache: cache,
            ..VmOptions::default()
        },
        ..TestConfig::default()
    }
}

fn compute(cache: bool) -> Vec<LockRegimeGolden> {
    let mut out = Vec::new();
    for (id, prog, test) in workload() {
        for policy in policies() {
            let o = run_test_many(&prog, &test, &campaign_config(&policy, cache));
            let mut bug_hashes: Vec<String> = o.races.iter().map(|r| r.bug_hash()).collect();
            bug_hashes.sort();
            out.push(LockRegimeGolden {
                case: id.clone(),
                policy: policy.label(),
                bug_hashes,
                distinct_schedules: o.distinct_schedules,
                duplicate_schedules: o.duplicate_schedules,
                steps: o.steps,
                stop: format!("{:?}", o.stop),
                det_events: o.counters.det.events,
                fast_hits: o.counters.det.fast_hits(),
                clock_joins: o.counters.det.clock_joins,
                clock_allocs: o.counters.det.clock_allocs,
                clock_allocs_avoided: o.counters.det.clock_allocs_avoided,
                stack_snapshots: o.counters.stack_snapshots,
            });
        }
    }
    out
}

#[test]
fn lock_regime_behaviour_matches_goldens() {
    let actual = compute(true);
    let path = golden_path();
    if std::env::var("DRFIX_UPDATE_GOLDENS").is_ok() {
        let json = serde_json::to_string(&actual).expect("serialize goldens");
        std::fs::write(&path, json).expect("write goldens");
        eprintln!("goldens rewritten at {}", path.display());
        return;
    }
    let raw = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing goldens at {}: {e}", path.display()));
    let expected: Vec<LockRegimeGolden> = serde_json::from_str(&raw).expect("parse goldens");
    assert_eq!(expected.len(), actual.len(), "campaign count drifted");
    for (e, a) in expected.iter().zip(&actual) {
        assert_eq!(
            e, a,
            "lock-regime golden drifted for {} / {}",
            e.case, e.policy
        );
        assert!(
            a.bug_hashes.is_empty(),
            "{}: synchronised programs must stay race-free",
            a.case
        );
        assert_eq!(a.stop, "Completed", "{}: no early exit configured", a.case);
    }
}

/// The cache must be *transparent*: identical campaigns with it off
/// reproduce every golden field bit-for-bit, and the dedicated cache
/// counters are the only thing that moves.
#[test]
fn sync_epoch_cache_is_semantically_transparent() {
    let on = compute(true);
    let off = compute(false);
    assert_eq!(on, off, "cache on/off must be observationally identical");

    // The cache actually worked: at least the sync-heavy arms absorbed
    // slow-path transfers and short-circuited acquire joins.
    let mut cached_hits = 0u64;
    let mut uncached_hits = 0u64;
    for (id, prog, test) in workload() {
        for policy in policies() {
            let o_on = run_test_many(&prog, &test, &campaign_config(&policy, true));
            let o_off = run_test_many(&prog, &test, &campaign_config(&policy, false));
            cached_hits += o_on.counters.det.sync_hits() + o_on.counters.det.sync_epoch_hits;
            uncached_hits += o_off.counters.det.sync_hits() + o_off.counters.det.sync_epoch_hits;
            assert_eq!(
                o_on.counters.vm_steps, o_off.counters.vm_steps,
                "{id}: instruction streams must match"
            );
        }
    }
    assert!(cached_hits > 0, "the cache never engaged on the workload");
    assert_eq!(uncached_hits, 0, "disabled cache must not count hits");
}
