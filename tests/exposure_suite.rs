//! Corpus-wide exposure suite (§4.4.1).
//!
//! Sweeps every fixable Table 3 `RaceCategory` in both corpus flavours
//! — the standard templates (races with no happens-before edge) and the
//! ordering-sensitive exposure templates (races that only manifest when
//! the worker goroutine is starved past a window) — and asserts:
//!
//! 1. the PCT policy exposes each planted race within a bounded number
//!    of schedules, and
//! 2. each ground-truth human fix stays clean under the same budget,
//!    for every built-in policy.
//!
//! Together these are the contract of the validate step: a policy that
//! misses planted races produces false "fixed" verdicts, and a policy
//! that flags fixed code produces false "unfixed" ones.

use corpus::{CorpusConfig, RaceCase, RaceCategory};
use govm::{compile_sources, run_test_many, CompileOptions, SchedulePolicy, TestConfig};

/// Schedule budget for both exposure and cleanliness checks. The
/// `schedules_to_expose` bench measures PCT's median at 1 schedule on
/// the exposure corpus (uniform-random needs 5–43); 48 gives a wide
/// safety margin without slowing the suite.
const BUDGET: u32 = 48;

fn policies() -> Vec<SchedulePolicy> {
    vec![
        SchedulePolicy::Random,
        SchedulePolicy::pct(),
        SchedulePolicy::Sweep,
    ]
}

fn exposure_corpus() -> Vec<RaceCase> {
    corpus::generate_exposure_corpus(&CorpusConfig {
        eval_cases: 14, // two per fixable category
        db_pairs: 0,
        seed: 0xD0F1,
    })
}

fn standard_fixable() -> Vec<RaceCase> {
    corpus::generate_eval_corpus(&CorpusConfig {
        eval_cases: 60,
        db_pairs: 0,
        seed: 0xD0F1,
    })
    .into_iter()
    .filter(|c| c.fixable)
    .collect()
}

fn assert_pct_exposes(case: &RaceCase) {
    let prog = compile_sources(&case.files, &CompileOptions::default())
        .unwrap_or_else(|e| panic!("{}: build: {e}", case.id));
    let cfg = TestConfig {
        runs: BUDGET,
        seed: 0x5EED,
        stop_on_race: true,
        policy: SchedulePolicy::pct(),
        ..TestConfig::default()
    };
    let out = run_test_many(&prog, &case.test, &cfg);
    assert!(
        !out.races.is_empty(),
        "{} ({:?}): PCT found no race within {BUDGET} schedules",
        case.id,
        case.category
    );
}

fn assert_fix_clean(case: &RaceCase) {
    let fix = case
        .human_fix
        .as_ref()
        .unwrap_or_else(|| panic!("{} lacks a human fix", case.id));
    let prog = compile_sources(fix, &CompileOptions::default())
        .unwrap_or_else(|e| panic!("{} fix: build: {e}", case.id));
    for policy in policies() {
        let cfg = TestConfig {
            runs: BUDGET,
            seed: 0x5EED,
            stop_on_race: false,
            policy: policy.clone(),
            ..TestConfig::default()
        };
        let out = run_test_many(&prog, &case.test, &cfg);
        assert!(
            out.is_clean(),
            "{} ({:?}): human fix dirty under {} — races {:?}, err {:?}, fails {:?}",
            case.id,
            case.category,
            policy.label(),
            out.races
                .iter()
                .map(|r| r.var_name.clone())
                .collect::<Vec<_>>(),
            out.error,
            out.test_failures
        );
    }
}

#[test]
fn exposure_corpus_covers_every_fixable_category() {
    let cases = exposure_corpus();
    for cat in RaceCategory::all() {
        assert!(
            cases.iter().any(|c| c.category == *cat),
            "exposure corpus missing {cat:?}"
        );
    }
}

/// The ordering-sensitive hard tail: PCT must expose every case within
/// the budget (uniform-random typically cannot — that asymmetry is the
/// point of the policy, measured by the `schedules_to_expose` bench).
#[test]
fn pct_exposes_every_ordering_sensitive_race_within_budget() {
    for case in &exposure_corpus() {
        assert_pct_exposes(case);
    }
}

/// Every ordering-sensitive human fix stays clean under the full budget
/// for all three policies.
#[test]
fn ordering_sensitive_fixes_stay_clean_under_budget() {
    for case in &exposure_corpus() {
        assert_fix_clean(case);
    }
}

/// The standard Table 3 corpus: PCT exposes every fixable planted race
/// (these have no happens-before edge, so the budget is generous), and
/// the ground-truth fixes stay clean under every policy.
#[test]
fn pct_exposes_standard_corpus_and_fixes_stay_clean() {
    let cases = standard_fixable();
    // Keep runtime bounded: sweep at most 3 cases per category.
    let mut per_cat: std::collections::HashMap<RaceCategory, u32> =
        std::collections::HashMap::new();
    for case in &cases {
        let n = per_cat.entry(case.category).or_insert(0);
        if *n >= 3 {
            continue;
        }
        *n += 1;
        assert_pct_exposes(case);
        assert_fix_clean(case);
    }
    assert_eq!(
        per_cat.len(),
        RaceCategory::all().len(),
        "all categories swept"
    );
}
