//! Property test over random kill points (ISSUE 9 satellite): a
//! campaign halted at *any* checkpoint and resumed — possibly through a
//! chain of further halts — must reproduce the uninterrupted run
//! exactly: same per-shard digests, same [`StopReason`] tallies, same
//! completed snapshot, at any worker count on either side of the kill.
//!
//! Snapshots cross the kill in memory here (the on-disk round trip has
//! its own deterministic test in `campaign_ab.rs` and the CI
//! `campaign-smoke` drill); the property space is the *kill point*:
//! case count, shard plan, checkpoint cadence, halt position, and the
//! worker counts before and after the kill are all drawn at random.
//!
//! [`StopReason`]: govm::StopReason

use corpus::stream::{StreamConfig, StreamFamily};
use drfix::campaign::{run_campaign, CampaignConfig, Snapshot};
use drfix::PipelineConfig;
use proptest::prelude::*;

fn cfg(cases: usize, shards: usize, checkpoint_every: usize, seed: u64) -> CampaignConfig {
    let mut cfg = CampaignConfig::new(
        cases,
        shards,
        StreamConfig {
            family: StreamFamily::Exposure,
            seed,
        },
    );
    cfg.pipeline = PipelineConfig {
        seed: seed.rotate_left(17) ^ 0xFEED,
        detect_runs: 4,
        ..PipelineConfig::default()
    };
    cfg.checkpoint_every = checkpoint_every;
    cfg
}

/// Drive `base` to completion through kills: halt after `halt_after`
/// checkpoints, then keep resuming (alternating worker counts) until
/// the snapshot completes. Returns the completed snapshot and the
/// number of kills actually taken.
fn run_with_kills(base: &CampaignConfig, halt_after: u64, workers: &[usize]) -> (Snapshot, usize) {
    let mut kills = 0usize;
    let mut snap: Option<Snapshot> = None;
    for (leg, &w) in workers.iter().enumerate() {
        let mut c = base.clone();
        c.workers = w;
        // Keep killing on every leg but the last, which runs to the end.
        c.halt_after_checkpoints = (leg + 1 < workers.len()).then_some(halt_after);
        let run = run_campaign(&c, snap.as_ref(), None).unwrap();
        if run.interrupted {
            kills += 1;
        }
        let done = run.snapshot.completed;
        snap = Some(run.snapshot);
        if done {
            break;
        }
    }
    (snap.unwrap(), kills)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    // The core resume property: for any (cases, shards, cadence, kill
    // point, worker plan), kill-then-resume ≡ uninterrupted.
    #[test]
    fn any_kill_point_resumes_to_the_uninterrupted_digest(
        cases in 20usize..60,
        shards in 1usize..5,
        checkpoint_every in 3usize..10,
        halt_after in 1u64..6,
        kill_workers in 1usize..5,
        resume_workers in 1usize..5,
        seed in 0u64..1u64 << 32,
    ) {
        let base = cfg(cases, shards, checkpoint_every, seed);

        // Uninterrupted serial reference.
        let reference = run_campaign(&base, None, None).unwrap();
        prop_assert!(reference.snapshot.completed);
        prop_assert_eq!(reference.snapshot.done(), cases);

        // Kill at the drawn checkpoint (twice, at different worker
        // counts), then run the final leg uninterrupted.
        let plan = [kill_workers, resume_workers, kill_workers.max(2)];
        let (resumed, kills) = run_with_kills(&base, halt_after, &plan);
        prop_assert!(resumed.completed);

        // A halt that lands after the campaign already finished is a
        // no-op; when the kill point falls inside the run, at least one
        // kill must actually have been taken.
        let per_shard = cases.div_ceil(shards);
        if halt_after as usize * checkpoint_every < per_shard {
            prop_assert!(kills >= 1, "kill point inside the run never fired");
        }

        // Bit-identical: per-shard digests, cursors, and tallies.
        prop_assert_eq!(&resumed, &reference.snapshot);
        prop_assert_eq!(resumed.digest(), reference.snapshot.digest());

        // StopReason tallies agree exactly — and account for every case.
        let t = resumed.tallies();
        let r = reference.snapshot.tallies();
        prop_assert_eq!(t.stop_completed, r.stop_completed);
        prop_assert_eq!(t.stop_race_exposed, r.stop_race_exposed);
        prop_assert_eq!(t.stop_dedup_saturated, r.stop_dedup_saturated);
        prop_assert_eq!(t.stop_budget_exhausted, r.stop_budget_exhausted);
        prop_assert_eq!(
            t.stop_completed
                + t.stop_race_exposed
                + t.stop_dedup_saturated
                + t.stop_budget_exhausted,
            cases as u64,
        );
    }
}
