//! Cross-crate integration tests: the whole Dr.Fix loop over generated
//! corpora, plus invariants that tie the subsystems together.

use corpus::{generate_eval_corpus, generate_example_db, CorpusConfig};
use drfix::{DrFix, ExampleDb, PipelineConfig, RagMode};
use synthllm::ModelTier;

fn small_world(n: usize, seed: u64) -> (Vec<corpus::RaceCase>, ExampleDb) {
    let cfg = CorpusConfig {
        eval_cases: n,
        db_pairs: 80,
        seed,
    };
    (
        generate_eval_corpus(&cfg),
        ExampleDb::build(&generate_example_db(&cfg)),
    )
}

fn config(tier: ModelTier, rag: RagMode) -> PipelineConfig {
    PipelineConfig {
        tier,
        rag,
        validation_runs: 8,
        detect_runs: 32,
        seed: 0xE2E,
        ..PipelineConfig::default()
    }
}

#[test]
fn pipeline_fixes_most_fixable_cases_with_skeleton_rag() {
    let (cases, db) = small_world(24, 0x1111);
    let pipeline = DrFix::new(config(ModelTier::O1Preview, RagMode::Skeleton), Some(&db));
    let mut fixed = 0;
    let mut fixable = 0;
    for case in cases.iter().filter(|c| c.fixable && c.hard.is_none()) {
        fixable += 1;
        let o = pipeline.fix_case(&case.files, &case.test);
        if o.fixed {
            fixed += 1;
        }
    }
    assert!(fixable >= 10);
    assert!(
        fixed * 10 >= fixable * 8,
        "o1 + skeleton RAG should fix most plain fixable cases: {fixed}/{fixable}"
    );
}

#[test]
fn produced_patches_really_eliminate_the_race() {
    let (cases, db) = small_world(16, 0x2222);
    let pipeline = DrFix::new(config(ModelTier::O1Preview, RagMode::Skeleton), Some(&db));
    let mut checked = 0;
    for case in cases.iter().filter(|c| c.fixable) {
        let o = pipeline.fix_case(&case.files, &case.test);
        if !o.fixed {
            continue;
        }
        // Re-validate with fresh seeds and more schedules than the
        // pipeline used — the fix must hold, not just have gotten lucky.
        let patch = o.patch.expect("patch present on success");
        let verdict = drfix::validate_patch(
            &patch,
            &case.test,
            o.bug_hash.as_deref().unwrap_or(""),
            32,
            0xF0E5,
        );
        assert!(
            verdict.is_ok(),
            "{}: patch failed independent re-validation: {:?}",
            case.id,
            verdict.message()
        );
        checked += 1;
    }
    assert!(checked >= 5, "needed several successful fixes to check");
}

#[test]
fn hard_unfixable_cases_stay_unfixed() {
    let (cases, db) = small_world(40, 0x3333);
    let pipeline = DrFix::new(config(ModelTier::O1Preview, RagMode::Skeleton), Some(&db));
    for case in cases.iter().filter(|c| c.hard.is_some() && !c.fixable) {
        let o = pipeline.fix_case(&case.files, &case.test);
        assert!(
            !o.fixed,
            "{} ({:?}) was designed to be unfixable but got fixed via {:?}",
            case.id, case.hard, o.strategy
        );
    }
}

#[test]
fn rag_never_hurts_and_skeleton_is_best_on_average() {
    let (cases, db) = small_world(30, 0x4444);
    let mut rates = Vec::new();
    for rag in [RagMode::None, RagMode::Raw, RagMode::Skeleton] {
        let pipeline = DrFix::new(config(ModelTier::Gpt4o, rag), Some(&db));
        let fixed = cases
            .iter()
            .filter(|c| pipeline.fix_case(&c.files, &c.test).fixed)
            .count();
        rates.push(fixed);
    }
    let (none, _raw, skel) = (rates[0], rates[1], rates[2]);
    assert!(
        skel > none,
        "skeleton RAG ({skel}) must beat no RAG ({none})"
    );
}

#[test]
fn vendor_files_are_never_patched() {
    let (cases, db) = small_world(40, 0x5555);
    let pipeline = DrFix::new(config(ModelTier::O1Preview, RagMode::Skeleton), Some(&db));
    for case in cases
        .iter()
        .filter(|c| c.files.iter().any(|(n, _)| n.starts_with("vendor_")))
    {
        let o = pipeline.fix_case(&case.files, &case.test);
        if let Some(patch) = &o.patch {
            for (name, content) in patch {
                if name.starts_with("vendor_") {
                    let orig = case
                        .files
                        .iter()
                        .find(|(n, _)| n == name)
                        .map(|(_, s)| s.as_str())
                        .unwrap();
                    assert_eq!(content, orig, "vendor file {name} was modified");
                }
            }
        }
    }
}

#[test]
fn bug_hash_is_stable_across_detection_seeds() {
    let (cases, _) = small_world(6, 0x6666);
    let case = cases.iter().find(|c| c.fixable).expect("a fixable case");
    let prog = govm::compile_sources(&case.files, &govm::CompileOptions::default()).unwrap();
    let mut hashes = std::collections::HashSet::new();
    for seed in 0..6 {
        let out = govm::run_test_many(
            &prog,
            &case.test,
            &govm::TestConfig {
                runs: 30,
                seed: seed * 100,
                stop_on_race: true,
                ..govm::TestConfig::default()
            },
        );
        if let Some(r) = out.races.first() {
            hashes.insert(r.bug_hash());
        }
    }
    assert_eq!(hashes.len(), 1, "the bug hash must be schedule-stable");
}

#[test]
fn fix_durations_fall_in_the_papers_envelope() {
    let (cases, db) = small_world(24, 0x7777);
    let pipeline = DrFix::new(config(ModelTier::Gpt4o, RagMode::Skeleton), Some(&db));
    let mut durations = Vec::new();
    for case in &cases {
        let o = pipeline.fix_case(&case.files, &case.test);
        if o.fixed {
            durations.push(o.duration_minutes);
        }
    }
    assert!(durations.len() >= 8);
    let min = durations.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = durations.iter().cloned().fold(0.0, f64::max);
    // Paper §5.2: min 6, max 29 minutes.
    assert!((4.0..=12.0).contains(&min), "min {min}");
    assert!(max <= 45.0, "max {max}");
}
