//! Campaign-orchestrator acceptance (ISSUE 9): the sharded, pipelined
//! campaign must be **bit-identical** to the serial reference at any
//! shard/worker plan, agree with the monolithic `fix_case` path on
//! every case, survive a kill/resume through an on-disk snapshot, and
//! hold the streaming bounded-memory invariant at scale.

use corpus::stream::{CorpusStream, StreamConfig, StreamFamily};
use drfix::campaign::{run_campaign, CampaignConfig, CampaignMode, Snapshot};
use drfix::fleet::derive_case_seed;
use drfix::{DrFix, PipelineConfig, TournamentConfig};

fn env_cases(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn detect_cfg(cases: usize, shards: usize) -> CampaignConfig {
    let mut cfg = CampaignConfig::new(
        cases,
        shards,
        StreamConfig {
            family: StreamFamily::Exposure,
            seed: 0xD0F1,
        },
    );
    cfg.pipeline = PipelineConfig {
        seed: 0xFEED,
        detect_runs: 8,
        ..PipelineConfig::default()
    };
    cfg.checkpoint_every = 8;
    cfg
}

#[test]
fn campaign_is_bit_identical_across_shard_and_worker_plans() {
    let cases = env_cases("DRFIX_CAMPAIGN_AB_CASES", 36);
    let reference = run_campaign(&detect_cfg(cases, 1), None, None).unwrap();
    assert!(reference.snapshot.completed);
    assert_eq!(reference.metrics.cases_done, cases as u64);
    let ref_digest = reference.snapshot.digest();
    let ref_tallies = reference.snapshot.tallies();
    assert!(ref_tallies.raced > 0, "exposure stream exposed nothing");

    for shards in [2usize, 3] {
        for workers in [1usize, 2, 4] {
            let mut cfg = detect_cfg(cases, shards);
            cfg.workers = workers;
            let run = run_campaign(&cfg, None, None).unwrap();
            // Shard boundaries change the per-shard digests (different
            // partitions of the same outcomes), but the tallies and the
            // per-case outcome stream are plan-invariant.
            assert_eq!(
                run.snapshot.tallies(),
                ref_tallies,
                "tallies diverged at {shards} shards / {workers} workers"
            );
            assert_eq!(run.metrics.folds, cases as u64);
            // Same sharding, any worker count: the digest itself is
            // bit-identical to the serial run of that plan.
            let mut serial_plan = detect_cfg(cases, shards);
            serial_plan.workers = 1;
            let serial = run_campaign(&serial_plan, None, None).unwrap();
            assert_eq!(
                run.snapshot, serial.snapshot,
                "snapshot diverged at {shards} shards / {workers} workers"
            );
            assert_ne!(run.snapshot.digest(), 0);
        }
    }
    // And the single-shard pipelined plan reproduces the reference
    // digest itself, bit for bit.
    let mut one = detect_cfg(cases, 1);
    one.workers = 4;
    let run = run_campaign(&one, None, None).unwrap();
    assert_eq!(run.snapshot.digest(), ref_digest);
}

/// The stage-split proof: detect → diagnose → fix → validate run as
/// four pipelined stages must produce exactly what the monolithic
/// `DrFix::fix_case` produces on every streamed case — same fixes, same
/// LLM-call ledger, same validation instruction counts.
#[test]
fn fix_mode_campaign_agrees_with_direct_fix_case() {
    let cases = 10usize;
    let mut cfg = detect_cfg(cases, 2);
    cfg.mode = CampaignMode::Fix;
    cfg.workers = 4;
    cfg.stream.family = StreamFamily::Mixed;
    cfg.pipeline.tournament = Some(TournamentConfig::default());
    let run = run_campaign(&cfg, None, None).unwrap();
    let t = run.snapshot.tallies();

    let stream = CorpusStream::new(cfg.stream);
    let mut fixed = 0u64;
    let mut llm_calls = 0u64;
    let mut validations = 0u64;
    let mut rejected_static = 0u64;
    let mut validation_vm_steps = 0u64;
    for i in 0..cases {
        let case = stream.case(i);
        let mut pcfg = cfg.pipeline.clone();
        pcfg.seed = derive_case_seed(cfg.pipeline.seed, i as u64);
        let out = DrFix::new(pcfg, None).fix_case(&case.files, &case.test);
        fixed += u64::from(out.fixed);
        llm_calls += u64::from(out.llm_calls);
        validations += u64::from(out.validations);
        rejected_static += u64::from(out.rejected_static);
        validation_vm_steps += out.validation_vm_steps;
    }
    assert!(fixed > 0, "fix arm never landed a patch");
    assert_eq!(t.fixed, fixed, "campaign fixes diverged from fix_case");
    assert_eq!(t.llm_calls, llm_calls, "LLM-call ledger diverged");
    assert_eq!(t.validations, validations, "validation count diverged");
    assert_eq!(t.rejected_static, rejected_static, "gate ledger diverged");
    assert_eq!(
        t.validation_vm_steps, validation_vm_steps,
        "validation instruction ledger diverged"
    );
}

#[test]
fn kill_and_resume_through_the_on_disk_snapshot() {
    let cases = 24usize;
    let cfg = detect_cfg(cases, 2);
    let uninterrupted = run_campaign(&cfg, None, None).unwrap();

    let dir = std::env::temp_dir().join(format!("drfix-campaign-ab-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("snap.json");

    let mut kcfg = cfg.clone();
    kcfg.workers = 4;
    // Keep the in-flight window smaller than what remains after the
    // first checkpoint, so the post-halt drain cannot finish the
    // campaign on its own.
    kcfg.max_in_flight = 4;
    kcfg.halt_after_checkpoints = Some(1);
    let killed = run_campaign(&kcfg, None, Some(&path)).unwrap();
    assert!(killed.interrupted);
    assert!(!killed.snapshot.completed);
    assert!(killed.snapshot.done() < cases);

    // Resume from what actually landed on disk, at a different worker
    // count than the killed run — the snapshot is plan-portable.
    let on_disk = Snapshot::load(&path).unwrap();
    assert_eq!(on_disk, killed.snapshot);
    let mut rcfg = cfg.clone();
    rcfg.workers = 2;
    let resumed = run_campaign(&rcfg, Some(&on_disk), Some(&path)).unwrap();
    assert!(resumed.snapshot.completed);
    assert_eq!(resumed.snapshot, uninterrupted.snapshot);
    assert_eq!(
        resumed.snapshot.digest(),
        uninterrupted.snapshot.digest(),
        "resumed digest must be bit-identical to the uninterrupted run"
    );
    // The final snapshot on disk is the completed one.
    let final_disk = Snapshot::load(&path).unwrap();
    assert!(final_disk.completed);
    assert_eq!(final_disk, resumed.snapshot);
    std::fs::remove_dir_all(&dir).ok();
}

/// The streaming invariant at scale: memory is set by the in-flight
/// window, not the campaign length. Debug-scale default is 1500 cases;
/// `make campaign-scale` drives the same assertion over 10k cases in
/// release through `campaignctl --assert-resident-under`.
#[test]
fn resident_memory_is_bounded_by_the_window_not_the_campaign() {
    let cases = env_cases("DRFIX_CAMPAIGN_AB_SCALE_CASES", 1500);
    let mut cfg = detect_cfg(cases, 8);
    cfg.pipeline.detect_runs = 4;
    cfg.workers = 4;
    cfg.checkpoint_every = 64;
    cfg.max_in_flight = 24;
    let run = run_campaign(&cfg, None, None).unwrap();
    assert!(run.snapshot.completed);
    assert_eq!(run.metrics.folds, cases as u64);
    assert!(
        run.metrics.peak_in_flight <= 24,
        "in-flight window violated: {}",
        run.metrics.peak_in_flight
    );
    assert!(
        run.metrics.peak_pending <= 24,
        "collector reorder buffer exceeded the window: {}",
        run.metrics.peak_pending
    );
    // O(window) resident case bytes (8 KiB is a generous per-case
    // ceiling for the stream templates) — independent of `cases`.
    let bound = 24 * 8192;
    assert!(
        run.metrics.peak_resident_case_bytes <= bound,
        "resident case bytes scale with the campaign, not the window: {} > {bound}",
        run.metrics.peak_resident_case_bytes
    );
    assert!(run.metrics.steals > 0, "work-stealing never engaged");
}
