//! Golden pinning of detection behaviour across the shadow-state
//! lifecycle (GC + clock-slot reclamation).
//!
//! `tests/hotpath_golden.rs` pins the exposure corpus and
//! `tests/lockregime_golden.rs` pins the lock-heavy regime; this suite
//! pins the axis the streaming lifecycle moves on. The workload mixes
//! the racy exposure programs (the detector must keep finding every
//! planted race after sweeps) with the churn programs (generational
//! goroutine turnover — where collection and slot reuse actually
//! fire). Two contracts:
//!
//! 1. **Goldens** — bug hashes, schedule signatures, step counts,
//!    campaign bookkeeping and the *logical* detector counters with
//!    the lifecycle ON (the default) are pinned in
//!    `tests/goldens/shadowgc_goldens.json` and must never drift.
//! 2. **Lifecycle transparency** — running the identical campaigns
//!    with `VmOptions::shadow_gc` off reproduces every observable and
//!    every logical counter bit-for-bit; only the physical lifecycle
//!    gauges (`states_collected`, `clock_slots_reclaimed`, the peaks)
//!    move.
//!
//! Regenerate (only for *intentional* semantic changes) with:
//!
//! ```text
//! DRFIX_UPDATE_GOLDENS=1 cargo test --test shadowgc_golden
//! ```

use govm::{
    compile_sources, run_test_many, CompileOptions, Program, SchedulePolicy, TestConfig, VmOptions,
};
use serde::{Deserialize, Serialize};

/// Campaign base seed (arbitrary, fixed forever).
const CAMPAIGN_SEED: u64 = 0x6C0C;
/// Schedules per pinned campaign.
const CAMPAIGN_RUNS: u32 = 8;
/// Racy exposure programs in the workload (seed shared with the suite).
const EXPOSURE_CASES: usize = 10;
/// Churn programs in the workload.
const CHURN_CASES: usize = 3;

#[derive(Debug, PartialEq, Serialize, Deserialize)]
struct ShadowGcGolden {
    case: String,
    policy: String,
    /// Sorted stable bug hashes — the exposure arms must keep finding
    /// their planted race after any number of collection sweeps.
    bug_hashes: Vec<String>,
    distinct_schedules: u32,
    duplicate_schedules: u32,
    steps: u64,
    stop: String,
    /// Logical detector counters — identical with the lifecycle on or
    /// off (the lifecycle gauges live outside the golden on purpose).
    det_events: u64,
    fast_hits: u64,
    clock_joins: u64,
    clock_allocs: u64,
    stack_snapshots: u64,
}

fn golden_path() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/goldens/shadowgc_goldens.json")
}

fn policies() -> Vec<SchedulePolicy> {
    vec![
        SchedulePolicy::Random,
        SchedulePolicy::pct(),
        SchedulePolicy::Sweep,
    ]
}

fn workload() -> Vec<(String, Program, String)> {
    let mut programs = Vec::new();
    let corpus = corpus::generate_exposure_corpus(&corpus::CorpusConfig {
        eval_cases: EXPOSURE_CASES,
        db_pairs: 0,
        seed: 0xD0F1,
    });
    for case in &corpus {
        let prog = compile_sources(&case.files, &CompileOptions::default())
            .unwrap_or_else(|e| panic!("{}: {e}", case.id));
        programs.push((case.id.clone(), prog, case.test.clone()));
    }
    for case in corpus::generate_churn_corpus(CHURN_CASES, 0xD0F1) {
        let prog = compile_sources(&case.files, &CompileOptions::default())
            .unwrap_or_else(|e| panic!("{}: {e}", case.id));
        programs.push((case.id.clone(), prog, case.test.clone()));
    }
    programs
}

fn campaign_config(policy: &SchedulePolicy, shadow_gc: bool) -> TestConfig {
    TestConfig {
        runs: CAMPAIGN_RUNS,
        seed: CAMPAIGN_SEED,
        stop_on_race: false,
        policy: policy.clone(),
        vm: VmOptions {
            shadow_gc,
            ..VmOptions::default()
        },
        ..TestConfig::default()
    }
}

fn compute(shadow_gc: bool) -> Vec<ShadowGcGolden> {
    let mut out = Vec::new();
    for (id, prog, test) in workload() {
        for policy in policies() {
            let o = run_test_many(&prog, &test, &campaign_config(&policy, shadow_gc));
            let mut bug_hashes: Vec<String> = o.races.iter().map(|r| r.bug_hash()).collect();
            bug_hashes.sort();
            out.push(ShadowGcGolden {
                case: id.clone(),
                policy: policy.label(),
                bug_hashes,
                distinct_schedules: o.distinct_schedules,
                duplicate_schedules: o.duplicate_schedules,
                steps: o.steps,
                stop: format!("{:?}", o.stop),
                det_events: o.counters.det.events,
                fast_hits: o.counters.det.fast_hits(),
                clock_joins: o.counters.det.clock_joins,
                clock_allocs: o.counters.det.clock_allocs,
                stack_snapshots: o.counters.stack_snapshots,
            });
        }
    }
    out
}

#[test]
fn shadow_gc_behaviour_matches_goldens() {
    let actual = compute(true);
    let path = golden_path();
    if std::env::var("DRFIX_UPDATE_GOLDENS").is_ok() {
        let json = serde_json::to_string(&actual).expect("serialize goldens");
        std::fs::write(&path, json).expect("write goldens");
        eprintln!("goldens rewritten at {}", path.display());
        return;
    }
    let raw = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing goldens at {}: {e}", path.display()));
    let expected: Vec<ShadowGcGolden> = serde_json::from_str(&raw).expect("parse goldens");
    assert_eq!(expected.len(), actual.len(), "campaign count drifted");
    let mut exposure_races = 0usize;
    for (e, a) in expected.iter().zip(&actual) {
        assert_eq!(
            e, a,
            "shadow-GC golden drifted for {} / {}",
            e.case, e.policy
        );
        assert_eq!(a.stop, "Completed", "{}: no early exit configured", a.case);
        if a.case.starts_with("churn-") {
            assert!(
                a.bug_hashes.is_empty(),
                "{}: churn programs are synchronised and must stay race-free",
                a.case
            );
        } else {
            exposure_races += a.bug_hashes.len();
        }
    }
    assert!(
        exposure_races > 0,
        "the exposure arms exposed nothing — the workload has gone inert"
    );
}

/// The lifecycle must be *transparent*: identical campaigns with GC
/// off reproduce every golden field bit-for-bit, and the dedicated
/// lifecycle gauges are the only thing that moves.
#[test]
fn shadow_gc_is_semantically_transparent() {
    let on = compute(true);
    let off = compute(false);
    assert_eq!(
        on, off,
        "shadow GC on/off must be observationally identical"
    );

    // The lifecycle actually worked on the churn arms: states were
    // swept and exited goroutines' clock slots were reused.
    let mut collected_on = 0u64;
    let mut reclaimed_on = 0u64;
    let mut collected_off = 0u64;
    let mut reclaimed_off = 0u64;
    for (id, prog, test) in workload() {
        for policy in policies() {
            let o_on = run_test_many(&prog, &test, &campaign_config(&policy, true));
            let o_off = run_test_many(&prog, &test, &campaign_config(&policy, false));
            collected_on += o_on.counters.states_collected;
            reclaimed_on += o_on.counters.clock_slots_reclaimed;
            collected_off += o_off.counters.states_collected;
            reclaimed_off += o_off.counters.clock_slots_reclaimed;
            assert_eq!(
                o_on.counters.vm_steps, o_off.counters.vm_steps,
                "{id}: instruction streams must match"
            );
            assert!(
                o_on.counters.peak_clock_width <= o_off.counters.peak_clock_width,
                "{id}: reclamation can only narrow the clocks"
            );
        }
    }
    assert!(
        collected_on > 0,
        "no collection sweep fired on the workload"
    );
    assert!(reclaimed_on > 0, "no clock slot was ever reclaimed");
    assert_eq!(collected_off, 0, "disabled lifecycle must not collect");
    assert_eq!(reclaimed_off, 0, "disabled lifecycle must not reclaim");
}
