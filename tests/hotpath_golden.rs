//! Golden pinning of the VM + FastTrack observable behaviour across the
//! hot-path optimization pass.
//!
//! The optimization contract is *bit-identical semantics*: race reports
//! (stable bug hashes), schedule signatures, campaign schedule counts,
//! executed instruction counts and end-to-end fix outcomes on the
//! exposure corpus must not change when the interpreter or detector hot
//! paths are rewritten. The goldens in
//! `tests/goldens/hotpath_goldens.json` were captured on the
//! pre-optimization tree and are compared verbatim here.
//!
//! Regenerate (only for *intentional* semantic changes) with:
//!
//! ```text
//! DRFIX_UPDATE_GOLDENS=1 cargo test --test hotpath_golden
//! ```

use corpus::CorpusConfig;
use drfix::{DrFix, PipelineConfig, RagMode};
use govm::{
    compile_sources, run_test_many, run_test_with, CompileOptions, SchedulePolicy, SeedStream,
    TestConfig, VmOptions,
};
use serde::{Deserialize, Serialize};

/// Exposure-corpus size: three cases per Table 3 category.
const CASES: usize = 21;
/// Schedules per pinned campaign.
const CAMPAIGN_RUNS: u32 = 12;
/// Individually pinned per-run schedule signatures per campaign.
const SIG_RUNS: u64 = 4;
/// Campaign base seed (arbitrary, fixed forever).
const CAMPAIGN_SEED: u64 = 0xA11CE;
/// Exposure cases driven through the full fix pipeline.
const FIX_CASES: usize = 6;

#[derive(Debug, PartialEq, Serialize, Deserialize)]
struct CampaignGolden {
    case: String,
    policy: String,
    /// Sorted stable bug hashes of every distinct race the campaign saw.
    bug_hashes: Vec<String>,
    distinct_schedules: u32,
    duplicate_schedules: u32,
    steps: u64,
    /// Schedule signatures of the first [`SIG_RUNS`] runs, in order.
    schedule_sigs: Vec<u64>,
}

#[derive(Debug, PartialEq, Serialize, Deserialize)]
struct FixGolden {
    case: String,
    fixed: bool,
    location: Option<String>,
    scope: Option<String>,
    strategy: Option<String>,
    patch_loc: Option<usize>,
    bug_hash: Option<String>,
    llm_calls: u32,
    validations: u32,
}

#[derive(Debug, PartialEq, Serialize, Deserialize)]
struct Goldens {
    campaigns: Vec<CampaignGolden>,
    fixes: Vec<FixGolden>,
}

fn golden_path() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/goldens/hotpath_goldens.json")
}

fn policies() -> Vec<SchedulePolicy> {
    vec![
        SchedulePolicy::Random,
        SchedulePolicy::pct(),
        SchedulePolicy::Sweep,
    ]
}

fn compute() -> Goldens {
    let corpus = corpus::generate_exposure_corpus(&CorpusConfig {
        eval_cases: CASES,
        db_pairs: 0,
        seed: 0xD0F1,
    });

    let mut campaigns = Vec::new();
    for case in &corpus {
        let prog = compile_sources(&case.files, &CompileOptions::default())
            .unwrap_or_else(|e| panic!("{}: {e}", case.id));
        for policy in policies() {
            let cfg = TestConfig {
                runs: CAMPAIGN_RUNS,
                seed: CAMPAIGN_SEED,
                stop_on_race: false,
                policy: policy.clone(),
                ..TestConfig::default()
            };
            let out = run_test_many(&prog, &case.test, &cfg);
            let mut bug_hashes: Vec<String> = out.races.iter().map(|r| r.bug_hash()).collect();
            bug_hashes.sort();
            let schedule_sigs: Vec<u64> = (0..SIG_RUNS)
                .map(|i| {
                    let seed = SeedStream::Split.derive(CAMPAIGN_SEED, i);
                    run_test_with(
                        &prog,
                        &case.test,
                        VmOptions {
                            seed,
                            policy: policy.clone(),
                            ..VmOptions::default()
                        },
                    )
                    .schedule_sig
                })
                .collect();
            campaigns.push(CampaignGolden {
                case: case.id.clone(),
                policy: policy.label(),
                bug_hashes,
                distinct_schedules: out.distinct_schedules,
                duplicate_schedules: out.duplicate_schedules,
                steps: out.steps,
                schedule_sigs,
            });
        }
    }

    // End-to-end fix outcomes: the full GetAFix loop, pinned without
    // retrieval so the goldens do not depend on the example database.
    let cfg = PipelineConfig {
        rag: RagMode::None,
        validation_runs: 8,
        detect_runs: 24,
        seed: 0xFEED,
        detect_policy: SchedulePolicy::pct(),
        ..PipelineConfig::default()
    };
    let pipeline = DrFix::new(cfg, None);
    let mut fixes = Vec::new();
    for case in corpus.iter().take(FIX_CASES) {
        let out = pipeline.fix_case(&case.files, &case.test);
        fixes.push(FixGolden {
            case: case.id.clone(),
            fixed: out.fixed,
            location: out.location.map(|l| format!("{l:?}")),
            scope: out.scope.map(|s| format!("{s:?}")),
            strategy: out.strategy.map(|s| format!("{s:?}")),
            patch_loc: out.patch_loc,
            bug_hash: out.bug_hash,
            llm_calls: out.llm_calls,
            validations: out.validations,
        });
    }

    Goldens { campaigns, fixes }
}

#[test]
fn exposure_corpus_behaviour_matches_pre_optimization_goldens() {
    let actual = compute();
    let path = golden_path();
    if std::env::var("DRFIX_UPDATE_GOLDENS").is_ok() {
        let json = serde_json::to_string(&actual).expect("serialize goldens");
        std::fs::write(&path, json).expect("write goldens");
        eprintln!("goldens rewritten at {}", path.display());
        return;
    }
    let raw = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing goldens at {}: {e}", path.display()));
    let expected: Goldens = serde_json::from_str(&raw).expect("parse goldens");
    assert_eq!(
        expected.campaigns.len(),
        actual.campaigns.len(),
        "campaign count drifted"
    );
    for (e, a) in expected.campaigns.iter().zip(&actual.campaigns) {
        assert_eq!(
            e, a,
            "campaign golden drifted for {} / {}",
            e.case, e.policy
        );
    }
    assert_eq!(
        expected.fixes.len(),
        actual.fixes.len(),
        "fix count drifted"
    );
    for (e, a) in expected.fixes.iter().zip(&actual.fixes) {
        assert_eq!(e, a, "fix golden drifted for {}", e.case);
    }
}
