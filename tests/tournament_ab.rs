//! Tournament-arm acceptance (ISSUE 8): on the statically-interesting
//! corpus families the tournament must fix a **strict superset** of the
//! single-path loop's cases, stay **bit-identical** across thread
//! counts and re-runs, and spend **zero** dynamic VM steps on its
//! lint-repair loop.

use bench::run_arm_with;
use corpus::{generate_tournament_corpus, CorpusConfig};
use drfix::fleet::FleetConfig;
use drfix::{CandidateOutcome, PipelineConfig, RagMode, TournamentConfig};
use synthllm::ModelTier;

fn base_cfg() -> PipelineConfig {
    // A mid-skill tier botches candidates often enough for the repair
    // loop and the gate to matter; RAG off keeps the arms light.
    PipelineConfig {
        tier: ModelTier::Gpt4Turbo,
        rag: RagMode::None,
        validation_runs: 8,
        detect_runs: 24,
        seed: 0xFEED,
        ..PipelineConfig::default()
    }
}

fn corpus() -> Vec<corpus::RaceCase> {
    generate_tournament_corpus(&CorpusConfig {
        eval_cases: 16,
        db_pairs: 0,
        seed: 0xD0F1,
    })
}

#[test]
fn tournament_fixes_a_strict_superset_with_zero_lint_vm_steps() {
    let cases = corpus();
    let fleet = FleetConfig::from_env();
    let single = run_arm_with("single-path", base_cfg(), &fleet, &cases, None);
    let tourn = run_arm_with(
        "tournament",
        PipelineConfig {
            tournament: Some(TournamentConfig::default()),
            ..base_cfg()
        },
        &fleet,
        &cases,
        None,
    );

    let mut single_fixed = 0usize;
    let mut tourn_fixed = 0usize;
    let mut total_repairs = 0u32;
    let mut total_rejected = 0u32;
    for ((case, s), t) in cases.iter().zip(&single.outcomes).zip(&tourn.outcomes) {
        let rep = t
            .tournament
            .as_ref()
            .unwrap_or_else(|| panic!("{}: tournament arm lost its report", case.id));
        eprintln!(
            "{}: single fixed={} ({:?}) | tourn fixed={} ({:?}) cands={} repairs={} probes={} rej={} vm={}",
            case.id,
            s.fixed,
            s.strategy,
            t.fixed,
            t.strategy,
            rep.candidates.len(),
            rep.repair_iters,
            rep.lint_probes,
            t.rejected_static,
            t.validation_vm_steps,
        );
        single_fixed += s.fixed as usize;
        tourn_fixed += t.fixed as usize;
        total_repairs += rep.repair_iters;
        total_rejected += t.rejected_static;
        // Superset: every single-path win is a tournament win.
        assert!(
            !s.fixed || t.fixed,
            "{}: single-path fixed this case but the tournament lost it",
            case.id
        );
        // The repair loop is purely static: a case whose every candidate
        // died at the gate must not have spent one VM instruction.
        if rep
            .candidates
            .iter()
            .all(|c| matches!(c.outcome, CandidateOutcome::RejectedStatic { .. }))
            && !rep.candidates.is_empty()
        {
            assert_eq!(
                t.validation_vm_steps, 0,
                "{}: lint-rejected roster still burned VM steps",
                case.id
            );
        }
        // The winner's report entry agrees with the outcome.
        if let Some(w) = rep.winner {
            assert!(t.fixed, "{}: winner without a fix", case.id);
            assert_eq!(
                rep.candidates[w].outcome,
                CandidateOutcome::Won,
                "{}",
                case.id
            );
            assert_eq!(Some(rep.candidates[w].strategy), t.strategy, "{}", case.id);
        } else {
            assert!(!t.fixed, "{}: fix without a winner", case.id);
        }
    }
    eprintln!(
        "single fixed {single_fixed}/{} | tournament fixed {tourn_fixed}/{} | repairs {total_repairs} | static rejections {total_rejected}",
        cases.len(),
        cases.len()
    );
    // Strictness: the tournament must win cases single-path loses.
    assert!(
        tourn_fixed > single_fixed,
        "tournament ({tourn_fixed}) must fix strictly more than single-path ({single_fixed})"
    );
    // The families must actually exercise the new machinery.
    assert!(
        total_repairs > 0,
        "no repair iteration ran — the corpus no longer exercises the loop"
    );
    assert!(
        total_rejected > 0,
        "no candidate was statically rejected — gate accounting untested"
    );
}

#[test]
fn tournament_outcomes_are_bit_identical_across_thread_counts_and_reruns() {
    let cases = corpus();
    let cfg = PipelineConfig {
        tournament: Some(TournamentConfig::default()),
        ..base_cfg()
    };
    let serial = run_arm_with("serial", cfg.clone(), &FleetConfig::serial(), &cases, None);
    for threads in [1usize, 2, 8] {
        let fleet = FleetConfig { threads };
        let run = run_arm_with("threaded", cfg.clone(), &fleet, &cases, None);
        assert_eq!(
            serial.outcomes, run.outcomes,
            "outcomes diverged at {threads} threads"
        );
    }
    let rerun = run_arm_with("rerun", cfg, &FleetConfig::serial(), &cases, None);
    assert_eq!(serial.outcomes, rerun.outcomes, "re-run diverged");
}
