//! Pipeline A/B for the `statcheck` static gate (ISSUE 7 acceptance):
//! the same corpus and seeds with the gate on vs off must produce
//! **identical fix outcomes** while the gated arm spends **strictly
//! fewer VM instructions** on dynamic validation.
//!
//! Why identity is guaranteed by construction (and pinned here against
//! regressions):
//!
//! - the gate's error tier is *sound* — it rejects only candidates
//!   whose synchronization is broken on every execution, which dynamic
//!   validation also rejects (the one documented blind spot, a
//!   goroutine self-deadlock dynamic validation cannot observe, makes
//!   the gate strictly *more* correct, and `tests/botch_matrix.rs`
//!   tracks it);
//! - the §4.4.2 feedback loop keys on the failed *strategy* and the
//!   attempt ordinal, never on the failure message text, so a static
//!   rejection steers the model exactly like the dynamic failure it
//!   preempts.
//!
//! The per-case outcomes are compared wholesale with only the two cost
//! counters (`rejected_static`, `validation_vm_steps`) scrubbed — any
//! other field diverging (fixed, patch bytes, strategy, llm_calls,
//! durations, failure kind) fails the test.

use bench::run_arm_with;
use corpus::{generate_eval_corpus, CorpusConfig};
use drfix::fleet::FleetConfig;
use drfix::{FixOutcome, PipelineConfig, RagMode};
use synthllm::ModelTier;

/// Clears the fields the gate is *supposed* to change.
fn scrub(o: &FixOutcome) -> FixOutcome {
    let mut o = o.clone();
    o.rejected_static = 0;
    o.validation_vm_steps = 0;
    o
}

#[test]
fn static_gate_changes_cost_not_outcomes() {
    let cases = generate_eval_corpus(&CorpusConfig {
        eval_cases: 28,
        db_pairs: 0,
        seed: 0xD0F1,
    });
    // A mid-skill tier botches candidates often enough for the gate to
    // fire; RAG off keeps the arms free of database construction.
    let cfg = PipelineConfig {
        tier: ModelTier::Gpt4Turbo,
        rag: RagMode::None,
        validation_runs: 8,
        detect_runs: 24,
        seed: 0xFEED,
        ..PipelineConfig::default()
    };
    let fleet = FleetConfig::from_env();
    let gated = run_arm_with(
        "gate-on",
        PipelineConfig {
            static_gate: true,
            ..cfg.clone()
        },
        &fleet,
        &cases,
        None,
    );
    let ungated = run_arm_with(
        "gate-off",
        PipelineConfig {
            static_gate: false,
            ..cfg
        },
        &fleet,
        &cases,
        None,
    );

    assert_eq!(gated.outcomes.len(), ungated.outcomes.len());
    for ((case, g), u) in cases.iter().zip(&gated.outcomes).zip(&ungated.outcomes) {
        assert_eq!(
            scrub(g),
            scrub(u),
            "{}: the static gate changed the pipeline's outcome",
            case.id
        );
        assert_eq!(
            u.rejected_static, 0,
            "{}: the ungated arm must never report static rejections",
            case.id
        );
    }

    let rejected: u32 = gated.outcomes.iter().map(|o| o.rejected_static).sum();
    let gated_steps: u64 = gated.outcomes.iter().map(|o| o.validation_vm_steps).sum();
    let ungated_steps: u64 = ungated.outcomes.iter().map(|o| o.validation_vm_steps).sum();
    assert!(
        rejected > 0,
        "no candidate was rejected statically — the A/B has no teeth at this scale"
    );
    assert!(
        gated_steps < ungated_steps,
        "static rejections must save dynamic validation work: \
         {gated_steps} gated vs {ungated_steps} ungated VM steps ({rejected} rejected)"
    );
}
