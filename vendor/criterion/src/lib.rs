//! Offline stand-in for the `criterion` crate.
//!
//! Implements the surface the workspace's micro-benchmarks use —
//! [`Criterion::bench_function`], [`Bencher::iter`], [`black_box`], and
//! the [`criterion_group!`]/[`criterion_main!`] macros — as a simple
//! wall-clock harness: warm up briefly, then time batches until a fixed
//! measurement budget elapses and report mean ns/iteration. No
//! statistics beyond min/mean/max, no HTML reports, no comparison to
//! previous runs.
//!
//! Honors `--bench` on the command line (cargo passes it) and treats any
//! other free argument as a substring filter on benchmark names, like
//! real criterion.

#![deny(unsafe_code)]

use std::hint;
use std::time::{Duration, Instant};

/// Prevents the optimiser from deleting a benchmarked computation.
pub fn black_box<T>(value: T) -> T {
    hint::black_box(value)
}

/// Times one benchmark's closure.
pub struct Bencher {
    samples: Vec<f64>,
}

impl Bencher {
    /// Calls `routine` repeatedly and records per-iteration wall time.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: run for ~50ms to stabilise caches and branch state.
        let warmup_end = Instant::now() + Duration::from_millis(50);
        let mut iters_per_batch = 1u64;
        while Instant::now() < warmup_end {
            black_box(routine());
            iters_per_batch += 1;
        }
        // Measure: ~500ms budget, batched to amortise timer overhead.
        let batch = iters_per_batch.clamp(1, 10_000);
        let deadline = Instant::now() + Duration::from_millis(500);
        while Instant::now() < deadline {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            let elapsed = start.elapsed().as_nanos() as f64;
            self.samples.push(elapsed / batch as f64);
        }
    }
}

/// The benchmark driver (subset of criterion's `Criterion`).
pub struct Criterion {
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        let filter = std::env::args()
            .skip(1)
            .find(|a| !a.starts_with("--") && !a.is_empty());
        Criterion { filter }
    }
}

impl Criterion {
    /// Runs (or skips, if filtered out) one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        if let Some(filter) = &self.filter {
            if !id.contains(filter.as_str()) {
                return self;
            }
        }
        let mut b = Bencher {
            samples: Vec::new(),
        };
        f(&mut b);
        if b.samples.is_empty() {
            println!("{id:32} (no samples)");
            return self;
        }
        let n = b.samples.len() as f64;
        let mean = b.samples.iter().sum::<f64>() / n;
        let min = b.samples.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = b.samples.iter().cloned().fold(0.0f64, f64::max);
        println!(
            "{id:32} time: [{} {} {}]",
            format_ns(min),
            format_ns(mean),
            format_ns(max)
        );
        self
    }
}

fn format_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.2} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.2} s", ns / 1_000_000_000.0)
    }
}

/// Declares a group of benchmark functions, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
