//! Offline stand-in for the `serde` crate.
//!
//! The container image this workspace builds in has no access to
//! crates.io, so the workspace vendors the *small* slice of serde the
//! seed code actually uses: `#[derive(Serialize, Deserialize)]` on plain
//! structs and enums, plus JSON round-tripping through [`serde_json`].
//!
//! Instead of serde's visitor-based zero-copy architecture, this crate
//! uses a self-describing [`Content`] tree: [`Serialize`] lowers a value
//! into `Content`, [`Deserialize`] lifts it back, and `serde_json` maps
//! `Content` to and from JSON text. The derive macros (re-exported from
//! `serde_derive` under the `derive` feature, mirroring real serde's
//! feature gate) generate externally-tagged representations compatible
//! with what `serde_json` would produce for the same types.
//!
//! [`serde_json`]: ../serde_json/index.html

#![deny(unsafe_code)]

use std::collections::{BTreeMap, HashMap};
use std::fmt;

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// A self-describing value tree — the crate's entire data model.
#[derive(Debug, Clone, PartialEq)]
pub enum Content {
    /// JSON `null`.
    Null,
    /// A boolean.
    Bool(bool),
    /// A signed integer.
    I64(i64),
    /// An unsigned integer that does not fit in `i64`.
    U64(u64),
    /// A floating-point number.
    F64(f64),
    /// A string.
    Str(String),
    /// An ordered sequence.
    Seq(Vec<Content>),
    /// An ordered string-keyed map (field order is preserved).
    Map(Vec<(String, Content)>),
}

impl Content {
    /// Borrows the map entries if this is a [`Content::Map`].
    pub fn as_map(&self) -> Option<&[(String, Content)]> {
        match self {
            Content::Map(m) => Some(m),
            _ => None,
        }
    }

    /// Borrows the elements if this is a [`Content::Seq`].
    pub fn as_seq(&self) -> Option<&[Content]> {
        match self {
            Content::Seq(s) => Some(s),
            _ => None,
        }
    }

    /// Borrows the string if this is a [`Content::Str`].
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Content::Str(s) => Some(s),
            _ => None,
        }
    }

    /// A short label for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Content::Null => "null",
            Content::Bool(_) => "bool",
            Content::I64(_) | Content::U64(_) => "integer",
            Content::F64(_) => "float",
            Content::Str(_) => "string",
            Content::Seq(_) => "sequence",
            Content::Map(_) => "map",
        }
    }
}

/// Looks up a field by name in a [`Content::Map`]'s entries.
pub fn map_get<'a>(map: &'a [(String, Content)], key: &str) -> Option<&'a Content> {
    map.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

/// Error produced when [`Deserialize`] rejects a [`Content`] tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError(String);

impl DeError {
    /// Creates an error with a custom message.
    pub fn custom(msg: impl Into<String>) -> Self {
        DeError(msg.into())
    }

    /// Creates a type-mismatch error.
    pub fn expected(what: &str, got: &Content) -> Self {
        DeError(format!("expected {what}, found {}", got.kind()))
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for DeError {}

/// A value that can lower itself into a [`Content`] tree.
pub trait Serialize {
    /// Lowers `self` into the data model.
    fn to_content(&self) -> Content;
}

/// A value that can be reconstructed from a [`Content`] tree.
pub trait Deserialize: Sized {
    /// Lifts a value out of the data model.
    fn from_content(content: &Content) -> Result<Self, DeError>;

    /// Called by derived impls when a struct field is absent. `Option`
    /// overrides this to produce `None`, mirroring serde's behaviour.
    fn missing_field(field: &str) -> Result<Self, DeError> {
        Err(DeError(format!("missing field `{field}`")))
    }
}

/// Mirrors `serde::ser` far enough for `use serde::ser::Serialize`.
pub mod ser {
    pub use crate::Serialize;
}

/// Mirrors `serde::de` far enough for `use serde::de::DeserializeOwned`.
pub mod de {
    pub use crate::{DeError, Deserialize};

    /// Owned deserialization — with a `Content` tree every impl is
    /// already owned, so this is a blanket alias.
    pub trait DeserializeOwned: Deserialize {}

    impl<T: Deserialize> DeserializeOwned for T {}
}

// ---------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content {
                Content::I64(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn from_content(c: &Content) -> Result<Self, DeError> {
                let v: i64 = match *c {
                    Content::I64(v) => v,
                    Content::U64(v) => i64::try_from(v)
                        .map_err(|_| DeError::custom("integer out of range"))?,
                    // The bounds check must precede the cast: `as` would
                    // saturate out-of-range floats to i64::MAX silently.
                    Content::F64(v)
                        if v.fract() == 0.0
                            && (-9_223_372_036_854_775_808.0..9_223_372_036_854_775_808.0)
                                .contains(&v) =>
                    {
                        v as i64
                    }
                    ref other => return Err(DeError::expected("integer", other)),
                };
                <$t>::try_from(v).map_err(|_| DeError::custom("integer out of range"))
            }
        }
    )*};
}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content {
                match i64::try_from(*self) {
                    Ok(v) => Content::I64(v),
                    Err(_) => Content::U64(*self as u64),
                }
            }
        }
        impl Deserialize for $t {
            fn from_content(c: &Content) -> Result<Self, DeError> {
                let v: u64 = match *c {
                    Content::I64(v) => u64::try_from(v)
                        .map_err(|_| DeError::custom("negative integer"))?,
                    Content::U64(v) => v,
                    // Bounds check before the cast, as in the signed macro.
                    Content::F64(v)
                        if v.fract() == 0.0
                            && (0.0..18_446_744_073_709_551_616.0).contains(&v) =>
                    {
                        v as u64
                    }
                    ref other => return Err(DeError::expected("integer", other)),
                };
                <$t>::try_from(v).map_err(|_| DeError::custom("integer out of range"))
            }
        }
    )*};
}

impl_signed!(i8, i16, i32, i64, isize);
impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content {
                Content::F64(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_content(c: &Content) -> Result<Self, DeError> {
                match *c {
                    Content::F64(v) => Ok(v as $t),
                    Content::I64(v) => Ok(v as $t),
                    Content::U64(v) => Ok(v as $t),
                    Content::Null => Ok(<$t>::NAN),
                    ref other => Err(DeError::expected("number", other)),
                }
            }
        }
    )*};
}

impl_float!(f32, f64);

impl Serialize for bool {
    fn to_content(&self) -> Content {
        Content::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::Bool(b) => Ok(*b),
            other => Err(DeError::expected("bool", other)),
        }
    }
}

impl Serialize for char {
    fn to_content(&self) -> Content {
        Content::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        let s = c.as_str().ok_or_else(|| DeError::expected("char", c))?;
        let mut it = s.chars();
        match (it.next(), it.next()) {
            (Some(ch), None) => Ok(ch),
            _ => Err(DeError::custom("expected single-char string")),
        }
    }
}

impl Serialize for String {
    fn to_content(&self) -> Content {
        Content::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        c.as_str()
            .map(str::to_owned)
            .ok_or_else(|| DeError::expected("string", c))
    }
}

impl Serialize for str {
    fn to_content(&self) -> Content {
        Content::Str(self.to_owned())
    }
}

impl Serialize for () {
    fn to_content(&self) -> Content {
        Content::Null
    }
}

impl Deserialize for () {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::Null => Ok(()),
            other => Err(DeError::expected("null", other)),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        T::from_content(c).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_content(&self) -> Content {
        match self {
            Some(v) => v.to_content(),
            None => Content::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::Null => Ok(None),
            other => T::from_content(other).map(Some),
        }
    }

    fn missing_field(_field: &str) -> Result<Self, DeError> {
        Ok(None)
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        c.as_seq()
            .ok_or_else(|| DeError::expected("sequence", c))?
            .iter()
            .map(T::from_content)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Deserialize + fmt::Debug, const N: usize> Deserialize for [T; N] {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        let v: Vec<T> = Deserialize::from_content(c)?;
        <[T; N]>::try_from(v).map_err(|_| DeError::custom("wrong array length"))
    }
}

macro_rules! impl_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_content(&self) -> Content {
                Content::Seq(vec![$(self.$n.to_content()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_content(c: &Content) -> Result<Self, DeError> {
                let seq = c.as_seq().ok_or_else(|| DeError::expected("tuple", c))?;
                let mut it = seq.iter();
                let out = ($(
                    $t::from_content(
                        it.next().ok_or_else(|| DeError::custom("tuple too short"))?,
                    )?,
                )+);
                Ok(out)
            }
        }
    )*};
}

impl_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
}

/// A type usable as a JSON map key (strings and integers).
pub trait MapKey: Sized {
    /// Renders the key as a JSON object key.
    fn to_key(&self) -> String;
    /// Parses the key back from a JSON object key.
    fn from_key(key: &str) -> Result<Self, DeError>;
}

impl MapKey for String {
    fn to_key(&self) -> String {
        self.clone()
    }
    fn from_key(key: &str) -> Result<Self, DeError> {
        Ok(key.to_owned())
    }
}

macro_rules! impl_int_key {
    ($($t:ty),*) => {$(
        impl MapKey for $t {
            fn to_key(&self) -> String {
                self.to_string()
            }
            fn from_key(key: &str) -> Result<Self, DeError> {
                key.parse().map_err(|_| DeError::custom("invalid integer key"))
            }
        }
    )*};
}

impl_int_key!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

impl<K: MapKey + Ord, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_content(&self) -> Content {
        Content::Map(
            self.iter()
                .map(|(k, v)| (k.to_key(), v.to_content()))
                .collect(),
        )
    }
}

impl<K: MapKey + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        c.as_map()
            .ok_or_else(|| DeError::expected("map", c))?
            .iter()
            .map(|(k, v)| Ok((K::from_key(k)?, V::from_content(v)?)))
            .collect()
    }
}

impl<K: MapKey + Ord + std::hash::Hash, V: Serialize> Serialize for HashMap<K, V> {
    fn to_content(&self) -> Content {
        // Sort for deterministic output; HashMap iteration order is not.
        let mut entries: Vec<_> = self.iter().collect();
        entries.sort_by(|a, b| a.0.cmp(b.0));
        Content::Map(
            entries
                .into_iter()
                .map(|(k, v)| (k.to_key(), v.to_content()))
                .collect(),
        )
    }
}

impl<K: MapKey + Eq + std::hash::Hash, V: Deserialize> Deserialize for HashMap<K, V> {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        c.as_map()
            .ok_or_else(|| DeError::expected("map", c))?
            .iter()
            .map(|(k, v)| Ok((K::from_key(k)?, V::from_content(v)?)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn option_roundtrip() {
        assert_eq!(Some(3i32).to_content(), Content::I64(3));
        assert_eq!(Option::<i32>::from_content(&Content::Null).unwrap(), None);
        assert_eq!(Option::<i32>::missing_field("x").unwrap(), None);
    }

    #[test]
    fn unsigned_overflow_uses_u64() {
        let big = u64::MAX;
        assert_eq!(big.to_content(), Content::U64(big));
        assert_eq!(u64::from_content(&Content::U64(big)).unwrap(), big);
    }

    #[test]
    fn vec_of_tuples() {
        let v = vec![(1u32, "a".to_owned()), (2, "b".to_owned())];
        let c = v.to_content();
        let back: Vec<(u32, String)> = Deserialize::from_content(&c).unwrap();
        assert_eq!(back, v);
    }
}
