//! Offline stand-in for the `rand` crate (0.8 API surface).
//!
//! Implements exactly what the workspace uses: [`rngs::StdRng`] seeded
//! via [`SeedableRng::seed_from_u64`], and [`Rng::gen_range`] /
//! [`Rng::gen_bool`]. The generator is xoshiro256++ with a SplitMix64
//! seed expander — deterministic across platforms and plenty for
//! synthetic-workload generation and schedule fuzzing (nothing here is
//! cryptographic, matching how the seed code uses it).

#![deny(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Core random-number source (subset of `rand::RngCore`).
pub trait RngCore {
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// User-facing sampling methods (subset of `rand::Rng`).
pub trait Rng: RngCore {
    /// Samples uniformly from `range` (`a..b` or `a..=b`).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty, like `rand`.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of range: {p}");
        // 53 high bits give a uniform double in [0, 1).
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }
}

impl<T: RngCore> Rng for T {}

/// A seedable generator (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// The raw seed type.
    type Seed: Default + AsMut<[u8]>;

    /// Builds the generator from a raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a `u64`, expanding it with SplitMix64.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            for (dst, src) in chunk.iter_mut().zip(z.to_le_bytes()) {
                *dst = src;
            }
        }
        Self::from_seed(seed)
    }
}

/// Ranges samplable by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one uniform sample.
    fn sample_single<R: RngCore>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (rng.next_u64() as u128) % span;
                (self.start as i128 + offset as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                let offset = (rng.next_u64() as u128) % span;
                (lo as i128 + offset as i128) as $t
            }
        }
    )*};
}

impl_int_range!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                // Rounding (e.g. a 53-bit unit narrowing to f32, or the
                // final addition) can land exactly on `end`; resample to
                // keep the upper bound exclusive, as real rand does.
                for _ in 0..64 {
                    let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
                    let v = self.start + (self.end - self.start) * unit as $t;
                    if v < self.end {
                        return v;
                    }
                }
                self.start
            }
        }
    )*};
}

impl_float_range!(f32, f64);

/// Concrete generators.
pub mod rngs {
    use super::SeedableRng;

    /// The standard generator: xoshiro256++ (same role as `rand`'s
    /// `StdRng`, deterministic given a seed — the algorithm differs, and
    /// nothing in this workspace depends on `rand`'s exact streams).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl super::RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut bytes = [0u8; 8];
                bytes.copy_from_slice(&seed[i * 8..(i + 1) * 8]);
                *word = u64::from_le_bytes(bytes);
            }
            // All-zero state would be a fixed point; nudge it.
            if s == [0, 0, 0, 0] {
                s = [0xDEAD_BEEF, 0xCAFE_F00D, 0x1234_5678, 0x9ABC_DEF0];
            }
            StdRng { s }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_given_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0..1000), b.gen_range(0..1000));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            let v = rng.gen_range(3..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&w));
            let f = rng.gen_range(0.25f32..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn gen_bool_matches_probability_roughly() {
        let mut rng = StdRng::seed_from_u64(1);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2500..3500).contains(&hits), "hits = {hits}");
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }
}
