//! Offline stand-in for the `proptest` crate.
//!
//! Supports the subset the workspace's property tests use: the
//! [`proptest!`] macro (with an optional `#![proptest_config(...)]`
//! header), [`Strategy`] with `prop_map`/`prop_filter`, integer/float
//! range strategies, a regex-lite string strategy, tuples,
//! [`collection::vec()`], [`any`], [`prop_oneof!`], and the
//! `prop_assert*` macros.
//!
//! Differences from real proptest, deliberately accepted:
//! - **no shrinking** — a failing case panics with its inputs via the
//!   normal assert message instead of a minimised counterexample;
//! - **regex strategies** cover the `.`/`[class]`/`{m,n}`/`+`/`*`/`?`
//!   subset that appears in this repo, not full regex syntax;
//! - `prop_assert*` panic immediately rather than returning `Err`.
//!
//! Generation is deterministic per test: the RNG is seeded from the
//! test's name, so failures reproduce across runs.

#![deny(unsafe_code)]

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};
use std::ops::{Range, RangeInclusive};

/// Per-test configuration (subset of proptest's).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` iterations.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Deterministic per-test random source.
#[derive(Debug, Clone)]
pub struct TestRng(StdRng);

impl TestRng {
    /// Seeds the RNG from a test name, so each test has a stable stream.
    pub fn for_test(name: &str) -> Self {
        // FNV-1a: stable across runs and platforms (DefaultHasher is not
        // guaranteed stable across Rust releases).
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng(StdRng::seed_from_u64(h))
    }
}

impl RngCore for TestRng {
    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
}

/// A generator of test values (subset of proptest's `Strategy`).
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Rejects values failing `pred` (regenerating, up to a retry cap).
    fn prop_filter<F>(self, reason: impl Into<String>, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            reason: reason.into(),
            pred,
        }
    }

    /// Type-erases the strategy (used by [`prop_oneof!`]).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy returned by [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    reason: String,
    pred: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.generate(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!("prop_filter gave up after 1000 rejections: {}", self.reason);
    }
}

/// Uniform choice among boxed alternatives ([`prop_oneof!`]).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Builds a union; panics if `options` is empty.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.gen_range(0..self.options.len());
        self.options[i].generate(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

macro_rules! impl_float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_float_range_strategy!(f32, f64);

macro_rules! impl_tuple_strategy {
    ($(($($t:ident),+))*) => {$(
        #[allow(non_snake_case)]
        impl<$($t: Strategy),+> Strategy for ($($t,)+) {
            type Value = ($($t::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($t,)+) = self;
                ($($t.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
}

// ---------------------------------------------------------------------
// Regex-lite string strategy
// ---------------------------------------------------------------------

struct PatternAtom {
    choices: Vec<char>,
    min: usize,
    max: usize,
}

fn parse_pattern(pattern: &str) -> Vec<PatternAtom> {
    const PRINTABLE: RangeInclusive<u8> = 0x20..=0x7E;
    let mut chars = pattern.chars().peekable();
    let mut atoms = Vec::new();
    while let Some(c) = chars.next() {
        let choices: Vec<char> = match c {
            '.' => PRINTABLE.map(char::from).collect(),
            '[' => {
                let mut set = Vec::new();
                let mut prev: Option<char> = None;
                loop {
                    match chars.next() {
                        Some(']') | None => break,
                        Some('-') if prev.is_some() && chars.peek().is_some_and(|&n| n != ']') => {
                            let lo = prev.take().unwrap();
                            let hi = chars.next().unwrap();
                            set.pop();
                            for code in lo as u32..=hi as u32 {
                                if let Some(ch) = char::from_u32(code) {
                                    set.push(ch);
                                }
                            }
                        }
                        Some(ch) => {
                            set.push(ch);
                            prev = Some(ch);
                        }
                    }
                }
                set
            }
            '\\' => vec![chars.next().unwrap_or('\\')],
            lit => vec![lit],
        };
        let (min, max) = match chars.peek() {
            Some('{') => {
                chars.next();
                let mut spec = String::new();
                for ch in chars.by_ref() {
                    if ch == '}' {
                        break;
                    }
                    spec.push(ch);
                }
                match spec.split_once(',') {
                    Some((lo, hi)) => (
                        lo.trim().parse().unwrap_or(0),
                        hi.trim().parse().unwrap_or(8),
                    ),
                    None => {
                        let n = spec.trim().parse().unwrap_or(1);
                        (n, n)
                    }
                }
            }
            Some('+') => {
                chars.next();
                (1, 8)
            }
            Some('*') => {
                chars.next();
                (0, 8)
            }
            Some('?') => {
                chars.next();
                (0, 1)
            }
            _ => (1, 1),
        };
        atoms.push(PatternAtom { choices, min, max });
    }
    atoms
}

impl Strategy for &str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        let mut out = String::new();
        for atom in parse_pattern(self) {
            let n = rng.gen_range(atom.min..=atom.max);
            for _ in 0..n {
                if atom.choices.is_empty() {
                    continue;
                }
                out.push(atom.choices[rng.gen_range(0..atom.choices.len())]);
            }
        }
        out
    }
}

// ---------------------------------------------------------------------
// any / Arbitrary
// ---------------------------------------------------------------------

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Draws an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.gen_bool(0.5)
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

/// Strategy returned by [`any`].
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The "any value of `T`" strategy.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

// ---------------------------------------------------------------------
// Collections
// ---------------------------------------------------------------------

/// Collection strategies (subset of `proptest::collection`).
pub mod collection {
    use super::{Rng, Strategy, TestRng};
    use std::ops::{Range, RangeInclusive};

    /// Inclusive bounds on a generated collection's length.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                min: r.start,
                max: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange {
                min: *r.start(),
                max: *r.end(),
            }
        }
    }

    /// Strategy produced by [`vec()`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = rng.gen_range(self.size.min..=self.size.max);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Generates `Vec`s of `element` values with length in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

// ---------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------

/// Defines property tests: each `fn name(x in strategy, ...) { ... }`
/// becomes a `#[test]` running `cases` random iterations.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ @cfg($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ @cfg($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (@cfg($cfg:expr) $( #[test] fn $name:ident ( $($arg:pat in $strat:expr),+ $(,)? ) $body:block )* ) => {
        $(
            #[test]
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut __proptest_rng = $crate::TestRng::for_test(stringify!($name));
                for __proptest_case in 0..config.cases {
                    let _ = __proptest_case;
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut __proptest_rng);)+
                    $body
                }
            }
        )*
    };
}

/// Asserts a condition inside a property test (panics on failure).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { ::std::assert!($($t)*) };
}

/// Asserts equality inside a property test (panics on failure).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { ::std::assert_eq!($($t)*) };
}

/// Asserts inequality inside a property test (panics on failure).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { ::std::assert_ne!($($t)*) };
}

/// Uniformly picks one of several strategies with the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {
        $crate::Union::new(::std::vec![$($crate::Strategy::boxed($s)),+])
    };
}

/// One-stop imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Any, Arbitrary,
        BoxedStrategy, Just, ProptestConfig, Strategy, TestRng,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn string_pattern_shapes() {
        let mut rng = TestRng::for_test("string_pattern_shapes");
        for _ in 0..200 {
            let s = Strategy::generate(&"[a-z][a-zA-Z0-9]{0,6}", &mut rng);
            assert!((1..=7).contains(&s.chars().count()), "{s:?}");
            assert!(s.chars().next().unwrap().is_ascii_lowercase());
            let t = Strategy::generate(&".{0,300}", &mut rng);
            assert!(t.chars().count() <= 300);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn macro_binds_multiple_strategies(x in 0u32..10, ys in collection::vec(0i64..5, 2..6)) {
            prop_assert!(x < 10);
            prop_assert!((2..6).contains(&ys.len()));
            prop_assert!(ys.iter().all(|&y| (0..5).contains(&y)));
        }

        #[test]
        fn oneof_and_filter_compose(v in prop_oneof![
            (0u8..10).prop_map(|n| n as u32),
            (100u32..110).prop_filter("not 105", |&n| n != 105),
        ]) {
            prop_assert!(v < 10 || (100..110).contains(&v));
            prop_assert_ne!(v, 105);
        }
    }
}
