//! Derive macros for the vendored `serde` stand-in.
//!
//! Generates [`Serialize`]/[`Deserialize`] impls over the `Content` data
//! model for plain structs and enums — named fields, tuple/newtype
//! structs, unit/tuple/struct enum variants, and simple generics. The
//! representation is externally tagged, matching what real serde's
//! derive + `serde_json` produce for the same shapes.
//!
//! Written against `proc_macro` directly (no `syn`/`quote`: the build
//! environment has no crates.io access), so it hand-parses the item's
//! token stream. Field *types* are never parsed — generated code leans
//! on inference from struct/variant literals instead.
//!
//! [`Serialize`]: ../serde/trait.Serialize.html
//! [`Deserialize`]: ../serde/trait.Deserialize.html

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives `serde::Serialize` for a struct or enum.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, Trait::Serialize)
}

/// Derives `serde::Deserialize` for a struct or enum.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, Trait::Deserialize)
}

#[derive(Clone, Copy, PartialEq)]
enum Trait {
    Serialize,
    Deserialize,
}

fn expand(input: TokenStream, which: Trait) -> TokenStream {
    let item = match parse_item(input) {
        Ok(item) => item,
        Err(msg) => {
            return format!("::std::compile_error!({msg:?});").parse().unwrap();
        }
    };
    let code = match which {
        Trait::Serialize => gen_serialize(&item),
        Trait::Deserialize => gen_deserialize(&item),
    };
    code.parse().unwrap_or_else(|e| {
        format!("::std::compile_error!(\"serde_derive generated invalid code: {e:?}\");")
            .parse()
            .unwrap()
    })
}

// ---------------------------------------------------------------------
// Item model
// ---------------------------------------------------------------------

struct Item {
    name: String,
    /// Type-parameter names, in declaration order (lifetimes/consts are
    /// rejected — no seed type needs them).
    type_params: Vec<TypeParam>,
    body: Body,
}

struct TypeParam {
    name: String,
    /// Declared bounds, rendered back to source (empty if none).
    bounds: String,
}

enum Body {
    Struct(Fields),
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    fields: Fields,
}

enum Fields {
    Unit,
    Named(Vec<String>),
    Tuple(usize),
}

// ---------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------

struct Cursor {
    toks: Vec<TokenTree>,
    pos: usize,
}

impl Cursor {
    fn new(stream: TokenStream) -> Self {
        Cursor {
            toks: stream.into_iter().collect(),
            pos: 0,
        }
    }

    fn peek(&self) -> Option<&TokenTree> {
        self.toks.get(self.pos)
    }

    fn next(&mut self) -> Option<TokenTree> {
        let t = self.toks.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn is_punct(&self, ch: char) -> bool {
        matches!(self.peek(), Some(TokenTree::Punct(p)) if p.as_char() == ch)
    }

    fn is_ident(&self, word: &str) -> bool {
        matches!(self.peek(), Some(TokenTree::Ident(i)) if i.to_string() == word)
    }

    /// Skips any number of `#[...]` attributes (incl. doc comments).
    fn skip_attrs(&mut self) {
        while self.is_punct('#') {
            self.next();
            self.next(); // the [...] group
        }
    }

    /// Skips `pub`, `pub(crate)`, `pub(in ...)`, etc.
    fn skip_visibility(&mut self) {
        if self.is_ident("pub") {
            self.next();
            if matches!(self.peek(), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
            {
                self.next();
            }
        }
    }

    fn expect_ident(&mut self) -> Result<String, String> {
        match self.next() {
            Some(TokenTree::Ident(i)) => Ok(i.to_string()),
            other => Err(format!("expected identifier, found {other:?}")),
        }
    }
}

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let mut c = Cursor::new(input);
    c.skip_attrs();
    c.skip_visibility();

    let kind = c.expect_ident()?;
    if kind != "struct" && kind != "enum" {
        return Err(format!("serde derive supports struct/enum, found `{kind}`"));
    }
    let name = c.expect_ident()?;
    let type_params = if c.is_punct('<') {
        parse_generics(&mut c)?
    } else {
        Vec::new()
    };

    if c.is_ident("where") {
        return Err("serde derive stub does not support where-clauses".to_owned());
    }

    let body = if kind == "struct" {
        match c.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Body::Struct(Fields::Named(parse_named_fields(g.stream())?))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Body::Struct(Fields::Tuple(count_tuple_fields(g.stream())))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Body::Struct(Fields::Unit),
            other => return Err(format!("unexpected struct body: {other:?}")),
        }
    } else {
        match c.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Body::Enum(parse_variants(g.stream())?)
            }
            other => return Err(format!("unexpected enum body: {other:?}")),
        }
    };

    Ok(Item {
        name,
        type_params,
        body,
    })
}

/// Parses `<...>` after the type name. Cursor is on the opening `<`.
fn parse_generics(c: &mut Cursor) -> Result<Vec<TypeParam>, String> {
    c.next(); // consume '<'
    let mut depth = 1usize;
    let mut entries: Vec<Vec<TokenTree>> = vec![Vec::new()];
    loop {
        let tok = c.next().ok_or("unterminated generics")?;
        if let TokenTree::Punct(p) = &tok {
            match p.as_char() {
                '<' => depth += 1,
                '>' => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                ',' if depth == 1 => {
                    entries.push(Vec::new());
                    continue;
                }
                _ => {}
            }
        }
        entries.last_mut().unwrap().push(tok);
    }

    let mut params = Vec::new();
    for entry in entries.into_iter().filter(|e| !e.is_empty()) {
        match &entry[0] {
            TokenTree::Punct(p) if p.as_char() == '\'' => {
                return Err("serde derive stub does not support lifetime params".to_owned());
            }
            TokenTree::Ident(i) if i.to_string() == "const" => {
                return Err("serde derive stub does not support const params".to_owned());
            }
            TokenTree::Ident(i) => {
                let name = i.to_string();
                let bounds = if entry.len() > 2 {
                    // entry[1] is ':'; the rest are the declared bounds.
                    tokens_to_string(&entry[2..])
                } else {
                    String::new()
                };
                params.push(TypeParam { name, bounds });
            }
            other => return Err(format!("unexpected generic param: {other:?}")),
        }
    }
    Ok(params)
}

/// Parses `{ name: Ty, ... }` field lists; types are skipped, not parsed.
fn parse_named_fields(stream: TokenStream) -> Result<Vec<String>, String> {
    let mut c = Cursor::new(stream);
    let mut fields = Vec::new();
    loop {
        c.skip_attrs();
        c.skip_visibility();
        if c.peek().is_none() {
            break;
        }
        fields.push(c.expect_ident()?);
        if !c.is_punct(':') {
            return Err("expected `:` after field name".to_owned());
        }
        c.next();
        skip_type(&mut c);
        if c.is_punct(',') {
            c.next();
        }
    }
    Ok(fields)
}

/// Advances past one type, stopping at a top-level `,` or end of stream.
/// Tracks `<`/`>` nesting; `->` (in fn-pointer types) never closes.
fn skip_type(c: &mut Cursor) {
    let mut angle = 0usize;
    let mut prev_dash = false;
    while let Some(tok) = c.peek() {
        if let TokenTree::Punct(p) = tok {
            match p.as_char() {
                ',' if angle == 0 => return,
                '<' => angle += 1,
                '>' if !prev_dash => angle = angle.saturating_sub(1),
                _ => {}
            }
            prev_dash = p.as_char() == '-';
        } else {
            prev_dash = false;
        }
        c.next();
    }
}

/// Counts top-level fields in a tuple-struct/tuple-variant paren group.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let mut c = Cursor::new(stream);
    if c.peek().is_none() {
        return 0;
    }
    let mut n = 1;
    loop {
        skip_type(&mut c);
        if c.is_punct(',') {
            c.next();
            if c.peek().is_none() {
                break; // trailing comma
            }
            n += 1;
        } else {
            break;
        }
    }
    n
}

fn parse_variants(stream: TokenStream) -> Result<Vec<Variant>, String> {
    let mut c = Cursor::new(stream);
    let mut variants = Vec::new();
    loop {
        c.skip_attrs();
        if c.peek().is_none() {
            break;
        }
        let name = c.expect_ident()?;
        let fields = match c.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let n = count_tuple_fields(g.stream());
                c.next();
                Fields::Tuple(n)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let names = parse_named_fields(g.stream())?;
                c.next();
                Fields::Named(names)
            }
            _ => Fields::Unit,
        };
        // Skip an optional `= discriminant` expression.
        if c.is_punct('=') {
            c.next();
            skip_type(&mut c);
        }
        if c.is_punct(',') {
            c.next();
        }
        variants.push(Variant { name, fields });
    }
    Ok(variants)
}

fn tokens_to_string(toks: &[TokenTree]) -> String {
    let mut s = String::new();
    for t in toks {
        if !s.is_empty() {
            s.push(' ');
        }
        s.push_str(&t.to_string());
    }
    s
}

// ---------------------------------------------------------------------
// Codegen
// ---------------------------------------------------------------------

/// `impl<T: Bounds + extra> ... for Name<T>` header pieces.
fn impl_header(item: &Item, trait_path: &str, extra_bound: &str) -> (String, String) {
    if item.type_params.is_empty() {
        return (String::new(), String::new());
    }
    let params: Vec<String> = item
        .type_params
        .iter()
        .map(|p| {
            if p.bounds.is_empty() {
                format!("{}: {extra_bound}", p.name)
            } else {
                format!("{}: {} + {extra_bound}", p.name, p.bounds)
            }
        })
        .collect();
    let args: Vec<&str> = item.type_params.iter().map(|p| p.name.as_str()).collect();
    let _ = trait_path;
    (
        format!("<{}>", params.join(", ")),
        format!("<{}>", args.join(", ")),
    )
}

fn string_lit(s: &str) -> String {
    format!("::std::string::String::from({s:?})")
}

fn gen_serialize(item: &Item) -> String {
    let (gens, args) = impl_header(item, "::serde::Serialize", "::serde::Serialize");
    let name = &item.name;
    let body = match &item.body {
        Body::Struct(Fields::Unit) => "::serde::Content::Null".to_owned(),
        Body::Struct(Fields::Named(fields)) => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "({}, ::serde::Serialize::to_content(&self.{f}))",
                        string_lit(f)
                    )
                })
                .collect();
            format!("::serde::Content::Map(::std::vec![{}])", entries.join(", "))
        }
        Body::Struct(Fields::Tuple(1)) => "::serde::Serialize::to_content(&self.0)".to_owned(),
        Body::Struct(Fields::Tuple(n)) => {
            let elems: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_content(&self.{i})"))
                .collect();
            format!("::serde::Content::Seq(::std::vec![{}])", elems.join(", "))
        }
        Body::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vname = &v.name;
                    match &v.fields {
                        Fields::Unit => format!(
                            "{name}::{vname} => ::serde::Content::Str({}),",
                            string_lit(vname)
                        ),
                        Fields::Tuple(1) => format!(
                            "{name}::{vname}(f0) => ::serde::Content::Map(::std::vec![({}, \
                             ::serde::Serialize::to_content(f0))]),",
                            string_lit(vname)
                        ),
                        Fields::Tuple(n) => {
                            let binders: Vec<String> = (0..*n).map(|i| format!("f{i}")).collect();
                            let elems: Vec<String> = (0..*n)
                                .map(|i| format!("::serde::Serialize::to_content(f{i})"))
                                .collect();
                            format!(
                                "{name}::{vname}({}) => ::serde::Content::Map(::std::vec![({}, \
                                 ::serde::Content::Seq(::std::vec![{}]))]),",
                                binders.join(", "),
                                string_lit(vname),
                                elems.join(", ")
                            )
                        }
                        Fields::Named(fields) => {
                            let binders = fields.join(", ");
                            let entries: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "({}, ::serde::Serialize::to_content({f}))",
                                        string_lit(f)
                                    )
                                })
                                .collect();
                            format!(
                                "{name}::{vname} {{ {binders} }} => \
                                 ::serde::Content::Map(::std::vec![({}, \
                                 ::serde::Content::Map(::std::vec![{}]))]),",
                                string_lit(vname),
                                entries.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!("match self {{ {} }}", arms.join(" "))
        }
    };
    format!(
        "#[automatically_derived] impl{gens} ::serde::Serialize for {name}{args} {{ \
         fn to_content(&self) -> ::serde::Content {{ {body} }} }}"
    )
}

/// `field: match map_get(...) {...}` initializer for one named field.
fn named_field_init(field: &str, map_expr: &str) -> String {
    format!(
        "{field}: match ::serde::map_get({map_expr}, {field:?}) {{ \
         ::std::option::Option::Some(v) => ::serde::Deserialize::from_content(v)?, \
         ::std::option::Option::None => ::serde::Deserialize::missing_field({field:?})?, }}"
    )
}

fn seq_elem_init(i: usize, seq_expr: &str) -> String {
    format!(
        "::serde::Deserialize::from_content({seq_expr}.get({i}).ok_or_else(|| \
         ::serde::DeError::custom(\"sequence too short\"))?)?"
    )
}

fn gen_deserialize(item: &Item) -> String {
    let (gens, args) = impl_header(item, "::serde::Deserialize", "::serde::Deserialize");
    let name = &item.name;
    let body = match &item.body {
        Body::Struct(Fields::Unit) => format!("::std::result::Result::Ok({name})"),
        Body::Struct(Fields::Named(fields)) => {
            let inits: Vec<String> = fields.iter().map(|f| named_field_init(f, "m")).collect();
            format!(
                "let m = c.as_map().ok_or_else(|| ::serde::DeError::expected(\"struct {name}\", c))?; \
                 ::std::result::Result::Ok({name} {{ {} }})",
                inits.join(", ")
            )
        }
        Body::Struct(Fields::Tuple(1)) => {
            format!("::std::result::Result::Ok({name}(::serde::Deserialize::from_content(c)?))")
        }
        Body::Struct(Fields::Tuple(n)) => {
            let inits: Vec<String> = (0..*n).map(|i| seq_elem_init(i, "s")).collect();
            format!(
                "let s = c.as_seq().ok_or_else(|| ::serde::DeError::expected(\"tuple struct {name}\", c))?; \
                 ::std::result::Result::Ok({name}({}))",
                inits.join(", ")
            )
        }
        Body::Enum(variants) => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|v| matches!(v.fields, Fields::Unit))
                .map(|v| {
                    format!(
                        "{:?} => ::std::result::Result::Ok({name}::{}),",
                        v.name, v.name
                    )
                })
                .collect();
            let data_arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vname = &v.name;
                    match &v.fields {
                        Fields::Unit => format!(
                            "{vname:?} => ::std::result::Result::Ok({name}::{vname}),"
                        ),
                        Fields::Tuple(1) => format!(
                            "{vname:?} => ::std::result::Result::Ok({name}::{vname}(\
                             ::serde::Deserialize::from_content(payload)?)),"
                        ),
                        Fields::Tuple(n) => {
                            let inits: Vec<String> =
                                (0..*n).map(|i| seq_elem_init(i, "s")).collect();
                            format!(
                                "{vname:?} => {{ let s = payload.as_seq().ok_or_else(|| \
                                 ::serde::DeError::expected(\"variant {vname} payload\", payload))?; \
                                 ::std::result::Result::Ok({name}::{vname}({})) }}",
                                inits.join(", ")
                            )
                        }
                        Fields::Named(fields) => {
                            let inits: Vec<String> =
                                fields.iter().map(|f| named_field_init(f, "pm")).collect();
                            format!(
                                "{vname:?} => {{ let pm = payload.as_map().ok_or_else(|| \
                                 ::serde::DeError::expected(\"variant {vname} payload\", payload))?; \
                                 ::std::result::Result::Ok({name}::{vname} {{ {} }}) }}",
                                inits.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!(
                "match c {{ \
                   ::serde::Content::Str(s) => match s.as_str() {{ \
                     {} \
                     other => ::std::result::Result::Err(::serde::DeError::custom(\
                       ::std::format!(\"unknown variant `{{other}}` of {name}\"))), \
                   }}, \
                   ::serde::Content::Map(m) if m.len() == 1 => {{ \
                     let (tag, payload) = &m[0]; \
                     match tag.as_str() {{ \
                       {} \
                       other => ::std::result::Result::Err(::serde::DeError::custom(\
                         ::std::format!(\"unknown variant `{{other}}` of {name}\"))), \
                     }} \
                   }}, \
                   other => ::std::result::Result::Err(::serde::DeError::expected(\"enum {name}\", other)), \
                 }}",
                unit_arms.join(" "),
                data_arms.join(" ")
            )
        }
    };
    format!(
        "#[automatically_derived] impl{gens} ::serde::Deserialize for {name}{args} {{ \
         fn from_content(c: &::serde::Content) -> ::std::result::Result<Self, ::serde::DeError> \
         {{ {body} }} }}"
    )
}
