//! JSON text layer over the vendored `serde` stand-in.
//!
//! Provides the two entry points the workspace uses — [`to_string`] and
//! [`from_str`] — by rendering the [`serde::Content`] tree to JSON and
//! parsing it back with a small recursive-descent parser. Semantics
//! follow real `serde_json` where it matters for round-trips: strings
//! are fully escaped (including `\uXXXX` and surrogate pairs), numbers
//! parse to `i64`/`u64` when integral and `f64` otherwise, and
//! non-finite floats serialise as `null`.

#![deny(unsafe_code)]

use serde::de::DeserializeOwned;
use serde::{Content, Serialize};
use std::fmt;

/// Error for JSON encoding/decoding failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error(msg.into())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::DeError> for Error {
    fn from(e: serde::DeError) -> Self {
        Error(e.to_string())
    }
}

/// Result alias matching `serde_json::Result`.
pub type Result<T> = std::result::Result<T, Error>;

/// Serialises a value to compact JSON text.
///
/// # Errors
///
/// Infallible for the supported data model; the `Result` mirrors the
/// real `serde_json` signature.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_content(&value.to_content(), &mut out);
    Ok(out)
}

/// Deserialises a value from JSON text.
///
/// # Errors
///
/// Returns an error on malformed JSON or a shape mismatch.
pub fn from_str<T: DeserializeOwned>(s: &str) -> Result<T> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let content = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new("trailing characters after JSON value"));
    }
    Ok(T::from_content(&content)?)
}

// ---------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------

fn write_content(c: &Content, out: &mut String) {
    match c {
        Content::Null => out.push_str("null"),
        Content::Bool(true) => out.push_str("true"),
        Content::Bool(false) => out.push_str("false"),
        Content::I64(v) => out.push_str(&v.to_string()),
        Content::U64(v) => out.push_str(&v.to_string()),
        Content::F64(v) => {
            if v.is_finite() {
                // `{}` on f64 prints the shortest representation that
                // round-trips, like serde_json's ryu output.
                if v.fract() == 0.0 && v.abs() < 1e15 {
                    out.push_str(&format!("{v:.1}"));
                } else {
                    out.push_str(&v.to_string());
                }
            } else {
                out.push_str("null");
            }
        }
        Content::Str(s) => write_escaped(s, out),
        Content::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_content(item, out);
            }
            out.push(']');
        }
        Content::Map(entries) => {
            out.push('{');
            for (i, (k, v)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_escaped(k, out);
                out.push(':');
                write_content(v, out);
            }
            out.push('}');
        }
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn parse_value(&mut self) -> Result<Content> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => self.parse_keyword("null", Content::Null),
            Some(b't') => self.parse_keyword("true", Content::Bool(true)),
            Some(b'f') => self.parse_keyword("false", Content::Bool(false)),
            Some(b'"') => Ok(Content::Str(self.parse_string()?)),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            other => Err(Error::new(format!(
                "unexpected character {other:?} at byte {}",
                self.pos
            ))),
        }
    }

    fn parse_keyword(&mut self, word: &str, value: Content) -> Result<Content> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(Error::new(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn parse_array(&mut self) -> Result<Content> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Content::Seq(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Content::Seq(items));
                }
                _ => return Err(Error::new("expected `,` or `]` in array")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Content> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Content::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Content::Map(entries));
                }
                _ => return Err(Error::new("expected `,` or `}` in object")),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let b = self
                .peek()
                .ok_or_else(|| Error::new("unterminated string"))?;
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let esc = self
                        .peek()
                        .ok_or_else(|| Error::new("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{08}'),
                        b'f' => out.push('\u{0C}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.parse_hex4()?;
                            let ch = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: expect \uXXXX low half.
                                if self.bytes.get(self.pos) == Some(&b'\\')
                                    && self.bytes.get(self.pos + 1) == Some(&b'u')
                                {
                                    self.pos += 2;
                                    let lo = self.parse_hex4()?;
                                    if !(0xDC00..0xE000).contains(&lo) {
                                        return Err(Error::new(
                                            "expected low surrogate after high surrogate",
                                        ));
                                    }
                                    let c = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                                    char::from_u32(c)
                                        .ok_or_else(|| Error::new("invalid surrogate pair"))?
                                } else {
                                    return Err(Error::new("lone surrogate in string"));
                                }
                            } else {
                                char::from_u32(hi)
                                    .ok_or_else(|| Error::new("invalid \\u escape"))?
                            };
                            out.push(ch);
                        }
                        _ => return Err(Error::new("invalid escape character")),
                    }
                }
                _ => {
                    // Multi-byte UTF-8: copy the full scalar.
                    let start = self.pos - 1;
                    let len = utf8_len(b);
                    let end = start + len;
                    let slice = self
                        .bytes
                        .get(start..end)
                        .ok_or_else(|| Error::new("truncated UTF-8"))?;
                    let s = std::str::from_utf8(slice)
                        .map_err(|_| Error::new("invalid UTF-8 in string"))?;
                    out.push_str(s);
                    self.pos = end;
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32> {
        let slice = self
            .bytes
            .get(self.pos..self.pos + 4)
            .ok_or_else(|| Error::new("truncated \\u escape"))?;
        let s = std::str::from_utf8(slice).map_err(|_| Error::new("invalid \\u escape"))?;
        let v = u32::from_str_radix(s, 16).map_err(|_| Error::new("invalid \\u escape"))?;
        self.pos += 4;
        Ok(v)
    }

    fn parse_number(&mut self) -> Result<Content> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if !is_float {
            if let Ok(v) = text.parse::<i64>() {
                return Ok(Content::I64(v));
            }
            if let Ok(v) = text.parse::<u64>() {
                return Ok(Content::U64(v));
            }
        }
        text.parse::<f64>()
            .map(Content::F64)
            .map_err(|_| Error::new(format!("invalid number `{text}`")))
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_roundtrips() {
        assert_eq!(to_string(&42i32).unwrap(), "42");
        assert_eq!(from_str::<i32>("42").unwrap(), 42);
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(from_str::<String>("\"hi\\n\"").unwrap(), "hi\n");
    }

    #[test]
    fn collection_roundtrips() {
        let v = vec![1.5f64, -2.0, 3.25];
        let s = to_string(&v).unwrap();
        assert_eq!(from_str::<Vec<f64>>(&s).unwrap(), v);
        let m: std::collections::BTreeMap<String, u32> = from_str("{\"a\": 1, \"b\": 2}").unwrap();
        assert_eq!(m["b"], 2);
    }

    #[test]
    fn unicode_escapes() {
        assert_eq!(from_str::<String>("\"\\u00e9\"").unwrap(), "é");
        assert_eq!(from_str::<String>("\"\\ud83d\\ude00\"").unwrap(), "😀");
        let s = to_string(&"tab\tquote\"").unwrap();
        assert_eq!(from_str::<String>(&s).unwrap(), "tab\tquote\"");
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<i32>("4 2").is_err());
        assert!(from_str::<String>("\"unterminated").is_err());
        assert!(from_str::<Vec<i32>>("[1, 2,]").is_err());
    }

    #[test]
    fn rejects_invalid_surrogate_pairs() {
        assert!(from_str::<String>("\"\\ud800\\u0041\"").is_err());
        assert!(from_str::<String>("\"\\ud800\\ud801\"").is_err());
        assert!(from_str::<String>("\"\\ud800\"").is_err());
    }

    #[test]
    fn rejects_out_of_range_floats_for_integers() {
        assert!(from_str::<i64>("1e300").is_err());
        assert!(from_str::<u64>("1e300").is_err());
        assert!(from_str::<i64>("9223372036854775807").is_ok());
    }
}
