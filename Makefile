# Tier-1 verification for the Dr.Fix reproduction workspace.
# Single source of truth for the gates: .github/workflows/ci.yml invokes
# these targets, and the justfile mirrors them for `just` users.

CARGO ?= cargo

.PHONY: verify build test bench-compile doc clippy fmt fmt-check bench-smoke calibrate-smoke exposure-smoke tournament-smoke tier-smoke lint-corpus perf-smoke perf-baseline soak-smoke campaign-smoke campaign-scale clean

# Reduced scale for the CI campaign-smoke kill/resume drill.
DRFIX_CAMPAIGN_CASES ?= 200

## Full tier-1 gate: release build, tests, bench compilation, lints, docs.
verify: build test bench-compile clippy fmt-check doc
	@echo "verify: all gates green"

build:
	$(CARGO) build --release --workspace --all-targets

test:
	$(CARGO) test --workspace -q

bench-compile:
	$(CARGO) bench --no-run --workspace

doc:
	RUSTDOCFLAGS="-D warnings" $(CARGO) doc --no-deps --workspace

clippy:
	$(CARGO) clippy --workspace --all-targets -- -D warnings

## Formats the whole workspace in place.
fmt:
	$(CARGO) fmt --all

## The CI `fmt` job: fails on any unformatted file.
fmt-check:
	$(CARGO) fmt --all -- --check

## Fast experiment smoke: headline ablation at reduced scale.
bench-smoke:
	DRFIX_CASES=24 DRFIX_VALIDATION_RUNS=4 $(CARGO) bench -q -p bench --bench fig3_rag_ablation

## Parallel-path smoke: calibrate across a 4-worker fleet at small scale.
calibrate-smoke:
	DRFIX_CASES=12 DRFIX_THREADS=4 DRFIX_VALIDATION_RUNS=4 $(CARGO) run --release -q -p bench --bin calibrate

## Exposure smoke: schedules_to_expose at small scale — the bench
## asserts its exposure contract (PCT exposes every case within budget,
## never behind random; early exits stay clean), so regressions exit
## non-zero here.
exposure-smoke:
	DRFIX_STE_CASES=14 DRFIX_STE_MAX_SCHED=64 DRFIX_STE_VALIDATION_RUNS=64 $(CARGO) bench -q -p bench --bench schedules_to_expose

## Tournament smoke: the multi-candidate tournament arm's acceptance
## suite on a 2-worker fleet — strict fix superset over the single-path
## loop, zero VM steps on lint-rejected rosters, and bit-identical
## outcomes across thread counts and re-runs. Exits non-zero on any
## regression.
tournament-smoke:
	DRFIX_THREADS=2 $(CARGO) test --release -q --test tournament_ab

## The CI `tier-smoke` job: the exposure suite and the hotpath /
## lock-regime / shadow-GC goldens replayed with DRFIX_TIER=reg — every
## logical observable (counters, bug hashes, schedule signatures) must
## hold unchanged on the register interpreter tier — plus the dedicated
## stack-vs-register differential suites, which pin both tiers
## explicitly. Exits non-zero on any divergence.
tier-smoke:
	DRFIX_TIER=reg $(CARGO) test --release -q --test exposure_suite \
	  --test hotpath_golden --test lockregime_golden --test shadowgc_golden
	$(CARGO) test --release -q -p govm --test tier_differential --test underflow
	$(CARGO) test --release -q -p bench --test tier_invariance

## Static-analyzer false-positive sweep: statcheck over every program
## family the pipeline treats as correct (human fixes, clean control,
## perf families) must stay silent, the racy originals must stay free
## of error-tier findings, and the misuse fixtures must keep firing.
## Exits non-zero on any violation — the gate must never veto a fix.
lint-corpus:
	$(CARGO) run --release -q -p bench --bin lintcorpus

## The CI `perf-gate` job: replay the deterministic hot-path counter
## scan and fail if any counter regresses >10% against the checked-in
## BENCH_hotpath.json baseline (wall-clock is reported, never gated).
## The fresh report lands in target/perfscan/ for artifact upload.
perf-smoke:
	$(CARGO) run --release -q -p bench --bin perfscan -- --check --out target/perfscan/BENCH_hotpath.json

## Regenerates the checked-in perf baseline (run + commit only when a
## counter drift is intentional). The DRFIX_PERF_* scale knobs are
## explicitly cleared so a stray environment override can never produce
## a baseline the gate then refuses to compare — the baseline is always
## the default workload, deterministically. Timing keeps the fastest of
## 10 repetitions (vs the gate's 5): the recorded wall-clock should
## reflect the machine, not a noisy-neighbour window.
perf-baseline:
	env -u DRFIX_PERF_CASES -u DRFIX_PERF_RUNS -u DRFIX_PERF_HEAP_CASES \
	-u DRFIX_PERF_CHURN_CASES -u DRFIX_PERF_GATE_CASES -u DRFIX_PERF_TOURNAMENT_CASES \
	-u DRFIX_PERF_NOCACHE -u DRFIX_PERF_NOGC \
	DRFIX_PERF_REPEAT=10 \
	$(CARGO) run --release -q -p bench --bin perfscan

## The CI `campaign-smoke` job: the snapshot/resume drill at reduced
## scale (DRFIX_CAMPAIGN_CASES, default 200; 2 shards). A serial
## reference campaign runs uninterrupted; the same campaign runs
## pipelined, is killed at its first checkpoint (exit 3), resumes from
## the snapshot, and the resumed digest must equal the uninterrupted
## reference bit-for-bit. Exits non-zero on any divergence.
campaign-smoke:
	rm -rf target/campaign-smoke && mkdir -p target/campaign-smoke
	$(CARGO) build --release -q -p bench --bin campaignctl
	target/release/campaignctl run --cases $(DRFIX_CAMPAIGN_CASES) --shards 2 --serial \
	  --checkpoint-every 25 --snapshot target/campaign-smoke/ref.json \
	  > target/campaign-smoke/ref.log
	target/release/campaignctl status --snapshot target/campaign-smoke/ref.json \
	  --assert-complete --digest > target/campaign-smoke/ref.digest
	target/release/campaignctl run --cases $(DRFIX_CAMPAIGN_CASES) --shards 2 --workers 4 \
	  --checkpoint-every 25 --halt-after-checkpoints 1 \
	  --snapshot target/campaign-smoke/killed.json > target/campaign-smoke/killed.log; \
	  st=$$?; [ $$st -eq 3 ] || { echo "expected halted campaign (exit 3), got $$st"; exit 1; }
	target/release/campaignctl status --snapshot target/campaign-smoke/killed.json \
	  --assert-incomplete > /dev/null
	target/release/campaignctl resume --cases $(DRFIX_CAMPAIGN_CASES) --shards 2 --workers 4 \
	  --checkpoint-every 25 --snapshot target/campaign-smoke/killed.json \
	  > target/campaign-smoke/resumed.log
	target/release/campaignctl status --snapshot target/campaign-smoke/killed.json \
	  --assert-complete --digest > target/campaign-smoke/resumed.digest
	cmp target/campaign-smoke/ref.digest target/campaign-smoke/resumed.digest
	@echo "campaign-smoke: kill/resume digest bit-identical to the uninterrupted run"

## Campaign at deployment scale: a 10k-case streamed detect campaign
## through the pipelined orchestrator, asserting the resident
## generated-case-bytes high-water stays under 256 KiB — the corpus is
## synthesized on demand and never materializes, so memory is bounded
## by the in-flight window, not the campaign length.
campaign-scale:
	$(CARGO) build --release -q -p bench --bin campaignctl
	target/release/campaignctl run --cases 10000 --shards 8 --workers 4 \
	  --checkpoint-every 256 --assert-resident-under 262144 \
	  --report target/campaign-smoke/scale-report.json

## The CI `soak-smoke` job: the streaming-soak test at reduced scale —
## shadow GC + clock reclamation must keep a churning workload's
## detector footprint bounded (and the GC-off control unbounded) with
## every logical observable bit-identical between the two runs. The
## full ≥1M-step soak runs in the tier-1 `test` target (default scale).
soak-smoke:
	DRFIX_SOAK_GENS=120 $(CARGO) test --release -q --test streaming_soak

clean:
	$(CARGO) clean
