# Tier-1 verification for the Dr.Fix reproduction workspace.
# Single source of truth for the gates: .github/workflows/ci.yml invokes
# these targets, and the justfile mirrors them for `just` users.

CARGO ?= cargo

.PHONY: verify build test bench-compile doc bench-smoke clean

## Full tier-1 gate: release build, tests, bench compilation, docs.
verify: build test bench-compile doc
	@echo "verify: all gates green"

build:
	$(CARGO) build --release --workspace --all-targets

test:
	$(CARGO) test --workspace -q

bench-compile:
	$(CARGO) bench --no-run --workspace

doc:
	RUSTDOCFLAGS="-D warnings" $(CARGO) doc --no-deps --workspace

## Fast experiment smoke: headline ablation at reduced scale.
bench-smoke:
	DRFIX_CASES=24 DRFIX_VALIDATION_RUNS=4 $(CARGO) bench -q -p bench --bench fig3_rag_ablation

clean:
	$(CARGO) clean
