//! Umbrella crate for the Dr.Fix reproduction workspace.
//!
//! Re-exports every subsystem crate so examples and integration tests can
//! depend on a single package. See the workspace `README.md` for the
//! architecture overview and `DESIGN.md` for the per-experiment index.

pub use corpus;
pub use drfix;
pub use embed;
pub use golite;
pub use govm;
pub use racedet;
pub use skeleton;
pub use synthllm;
pub use vecdb;
