//! Umbrella crate for the Dr.Fix reproduction workspace.
//!
//! Re-exports every subsystem crate so examples and integration tests
//! can depend on a single package:
//!
//! - [`golite`] / [`govm`] / [`racedet`] — the Go-subset substrate:
//!   frontend, schedule-fuzzing VM, and FastTrack race detector;
//! - [`skeleton`] / [`embed`] / [`vecdb`] — the retrieval stack:
//!   concurrency slicing, embeddings, and the vector store;
//! - [`synthllm`] — the deterministic model substitute;
//! - [`corpus`] — the synthetic racy-Go workload generator;
//! - [`statcheck`] — the lockset/lock-order static analyzer gating
//!   candidate patches before dynamic validation;
//! - [`drfix`] — the paper's pipeline tying it all together.
//!
//! See the workspace `README.md` (repository root) for the
//! architecture overview and `DESIGN.md` for the per-experiment index
//! mapping each bench target in `crates/bench/benches/` to the paper
//! section it reproduces.

pub use corpus;
pub use drfix;
pub use embed;
pub use golite;
pub use govm;
pub use racedet;
pub use skeleton;
pub use statcheck;
pub use synthllm;
pub use vecdb;
