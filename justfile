# Tier-1 verification for the Dr.Fix reproduction workspace.
# Convenience mirror of the Makefile (which CI invokes); if the gates
# change, update both.

default: verify

# Full tier-1 gate: release build, tests, bench compilation, lints, docs.
verify: build test bench-compile clippy fmt-check doc
    @echo "verify: all gates green"

build:
    cargo build --release --workspace --all-targets

test:
    cargo test --workspace -q

bench-compile:
    cargo bench --no-run --workspace

doc:
    RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace

clippy:
    cargo clippy --workspace --all-targets -- -D warnings

# Formats the whole workspace in place.
fmt:
    cargo fmt --all

# The CI `fmt` job: fails on any unformatted file.
fmt-check:
    cargo fmt --all -- --check

# Fast experiment smoke: headline ablation at reduced scale.
bench-smoke:
    DRFIX_CASES=24 DRFIX_VALIDATION_RUNS=4 cargo bench -q -p bench --bench fig3_rag_ablation

# Parallel-path smoke: calibrate across a 4-worker fleet at small scale.
calibrate-smoke:
    DRFIX_CASES=12 DRFIX_THREADS=4 DRFIX_VALIDATION_RUNS=4 cargo run --release -q -p bench --bin calibrate

# Exposure smoke: schedules_to_expose at small scale.
exposure-smoke:
    DRFIX_STE_CASES=14 DRFIX_STE_MAX_SCHED=64 DRFIX_STE_VALIDATION_RUNS=64 cargo bench -q -p bench --bench schedules_to_expose

# Tournament smoke: the multi-candidate tournament arm's acceptance
# suite on a 2-worker fleet (superset, zero lint VM steps, determinism).
tournament-smoke:
    DRFIX_THREADS=2 cargo test --release -q --test tournament_ab

# The CI `tier-smoke` job: exposure suite + goldens replayed under
# DRFIX_TIER=reg (logical observables must hold unchanged on the
# register tier), plus the dedicated tier differential suites.
tier-smoke:
    DRFIX_TIER=reg cargo test --release -q --test exposure_suite --test hotpath_golden --test lockregime_golden --test shadowgc_golden
    cargo test --release -q -p govm --test tier_differential --test underflow
    cargo test --release -q -p bench --test tier_invariance

# Static-analyzer false-positive sweep: statcheck must stay silent on
# every correct program family while the misuse fixtures keep firing.
lint-corpus:
    cargo run --release -q -p bench --bin lintcorpus

# The CI `perf-gate` job: deterministic hot-path counter scan vs the
# checked-in BENCH_hotpath.json baseline (>10% counter drift fails).
perf-smoke:
    cargo run --release -q -p bench --bin perfscan -- --check --out target/perfscan/BENCH_hotpath.json

# Regenerates the checked-in perf baseline (always at the default
# workload scale — stray DRFIX_PERF_* overrides are cleared; timing is
# the fastest of 10 repetitions).
perf-baseline:
    env -u DRFIX_PERF_CASES -u DRFIX_PERF_RUNS -u DRFIX_PERF_HEAP_CASES -u DRFIX_PERF_CHURN_CASES \
    -u DRFIX_PERF_GATE_CASES -u DRFIX_PERF_TOURNAMENT_CASES \
    -u DRFIX_PERF_NOCACHE -u DRFIX_PERF_NOGC \
    DRFIX_PERF_REPEAT=10 cargo run --release -q -p bench --bin perfscan

# The CI `campaign-smoke` job: kill a pipelined campaign at its first
# checkpoint, resume it, and require the resumed digest to equal the
# uninterrupted serial reference bit-for-bit (see the Makefile recipe).
campaign-smoke:
    make campaign-smoke

# 10k-case streamed detect campaign with the bounded-resident-memory
# assertion (the corpus never materializes).
campaign-scale:
    make campaign-scale

# The CI `soak-smoke` job: the streaming-soak test at reduced scale —
# bounded detector footprint under goroutine churn with GC on, vs the
# unbounded GC-off control (full ≥1M-step soak runs in `test`).
soak-smoke:
    DRFIX_SOAK_GENS=120 cargo test --release -q --test streaming_soak

# Run every table/figure reproduction at reduced scale.
bench-all:
    DRFIX_CASES=60 DRFIX_VALIDATION_RUNS=8 cargo bench -p bench
